// Tracked patrol: frame-to-frame object re-identification — the task the
// paper's Normalized-X-Corr reference was designed for (person re-id
// across successive frames) — combined with per-track classification.
// Identity comes from the appearance tracker, so each physical object is
// classified by *voting over its whole track* instead of per frame,
// which smooths the paper's noisy single-frame predictions.
//
// Run: ./build/examples/track_patrol

#include <cstdio>
#include <iostream>
#include <algorithm>
#include <array>
#include <map>

#include "core/classifiers.h"
#include "core/experiment.h"
#include "core/segmentation.h"
#include "core/tracker.h"
#include "data/scene.h"
#include "util/fault.h"
#include "util/retry.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace snor;

  ExperimentConfig config;
  config.nyu_fraction = 0.01;
  ExperimentContext context(config);
  HybridClassifier classifier(context.Sns1Features(), ShapeMatchMethod::kI3,
                              HistCompareMethod::kHellinger, 0.3, 0.7,
                              HybridStrategy::kWeightedSum);

  // A camera panning over a fixed scene: the same three objects shift
  // left a little every frame.
  std::vector<ScenePlacement> world;
  {
    const ObjectClass classes[3] = {ObjectClass::kChair, ObjectClass::kSofa,
                                    ObjectClass::kLamp};
    for (int i = 0; i < 3; ++i) {
      ScenePlacement p;
      p.cls = classes[i];
      p.model_id = 6 + i;
      p.x = 20 + i * 140;
      p.y = 12;
      p.render.canvas_size = 110;
      p.render.noise_stddev = 7.0;
      world.push_back(p);
    }
  }

  TrackerOptions tracker_opts;
  tracker_opts.max_center_distance = 70.0;
  Tracker tracker(tracker_opts);
  FeatureOptions fo;
  fo.preprocess.white_background = false;

  // Per-track classification votes.
  std::map<int, std::array<int, kNumClasses>> votes;

  // Frame ingestion is retryable: a transiently unavailable frame gets a
  // bounded backoff, and an exhausted retry drops the frame (the tracker
  // simply coasts to the next one) instead of crashing the patrol.
  RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff_ms = 1.0;
  retry.deadline_ms = 250.0;
  int dropped_frames = 0;

  const int kFrames = 6;
  for (int frame_id = 0; frame_id < kFrames; ++frame_id) {
    // Pan: shift all placements and refresh sensor noise.
    std::vector<ScenePlacement> placements = world;
    for (auto& p : placements) {
      p.x -= frame_id * 12;
      p.render.nuisance_seed =
          static_cast<std::uint64_t>(frame_id) * 31 + 7;
      p.render.view_angle_deg = frame_id * 2.0;
    }
    auto ingested = RetryWithBackoff(
        retry, [&placements, frame_id]() -> Result<Scene> {
          SNOR_RETURN_NOT_OK(InjectFault(
              FaultPoint::kIoRead, "frame " + std::to_string(frame_id)));
          return ComposeScene(placements, 460, 140);
        });
    if (!ingested.ok()) {
      ++dropped_frames;
      std::printf("frame %d: dropped after retries (%s)\n", frame_id,
                  ingested.status().ToString().c_str());
      continue;
    }
    const Scene& scene = ingested.value();
    const auto regions = SegmentFrame(scene.frame);
    const auto ids = tracker.Update(regions);

    std::printf("frame %d: %zu regions -> tracks [", frame_id,
                regions.size());
    for (std::size_t r = 0; r < regions.size(); ++r) {
      std::printf("%s#%d", r ? ", " : "", ids[r]);
      Dataset probe;
      probe.items.push_back(
          LabeledImage{regions[r].crop, ObjectClass::kChair, 0, 0});
      const auto features = ComputeFeatures(probe, fo);
      if (features[0].valid) {
        const ObjectClass predicted = classifier.Classify(features[0]);
        ++votes[ids[r]][static_cast<std::size_t>(ClassIndex(predicted))];
      }
    }
    std::printf("]\n");
  }

  std::printf("\nPer-track majority vote after %d frames:\n", kFrames);
  TablePrinter table({"Track", "Votes", "Majority label", "Agreement"});
  for (const auto& [id, vote] : votes) {
    int total = 0;
    int best = 0;
    for (int c = 0; c < kNumClasses; ++c) {
      total += vote[static_cast<std::size_t>(c)];
      if (vote[static_cast<std::size_t>(c)] >
          vote[static_cast<std::size_t>(best)]) {
        best = c;
      }
    }
    table.AddRow({StrFormat("#%d", id), std::to_string(total),
                  std::string(ObjectClassName(ClassFromIndex(best))),
                  StrFormat("%.0f%%",
                            100.0 * vote[static_cast<std::size_t>(best)] /
                                std::max(1, total))});
  }
  table.Print(std::cout);
  if (dropped_frames > 0) {
    std::printf("Dropped frames: %d/%d (retries exhausted).\n",
                dropped_frames, kFrames);
  }
  std::printf(
      "Tracks created: %d (3 physical objects). Track-level voting turns\n"
      "noisy per-frame predictions into stable object labels — the\n"
      "temporal extension the paper's conclusion points toward.\n",
      tracker.total_tracks_created());
  return 0;
}
