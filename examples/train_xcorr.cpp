// Trains the Normalized-X-Corr Siamese pair classifier (paper §3.4) at a
// CPU-friendly scale, saves the weights, and evaluates on held-out
// ShapeNetSet1 pairs — reproducing the qualitative Table-4 outcome.
//
// Run: ./build/examples/train_xcorr [epochs]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/xcorr_pipeline.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace snor;

  const int max_epochs = argc > 1 ? std::atoi(argv[1]) : 6;

  XCorrPipelineConfig config;
  config.model.input_height = 24;
  config.model.input_width = 24;
  config.model.trunk_conv1_channels = 6;
  config.model.trunk_conv2_channels = 8;
  config.model.xcorr_search_y = 1;
  config.model.xcorr_search_x = 1;
  config.model.head_conv_channels = 12;
  config.model.dense_units = 32;
  config.train_pairs = 600;
  config.train.max_epochs = max_epochs;
  config.train.batch_size = 16;
  config.train.learning_rate = 1e-4;  // Paper: Adam, lr 1e-4, decay 1e-7.
  config.train.lr_decay = 1e-7;

  XCorrPipeline pipeline(config);
  std::printf("Model: %zu trainable parameters\n",
              pipeline.model().NumParameters());

  DatasetOptions data_opts;
  data_opts.canvas_size = 48;
  const Dataset sns2 = MakeShapeNetSet2(data_opts);
  std::printf("Training on %d SNS2 pairs (52%% similar), %d epochs max...\n",
              config.train_pairs, max_epochs);

  Stopwatch sw;
  const auto history = pipeline.Train(sns2);
  for (const auto& epoch : history) {
    std::printf("  epoch %2d  loss %.4f  train-acc %.3f\n", epoch.epoch,
                epoch.loss, epoch.accuracy);
  }
  std::printf("Training took %.1fs\n", sw.ElapsedSeconds());

  const std::string weights_path = "/tmp/snor_xcorr_weights.bin";
  const Status save_status = pipeline.model().Save(weights_path);
  if (save_status.ok()) {
    std::printf("Weights saved to %s\n", weights_path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not save weights: %s\n",
                 save_status.ToString().c_str());
  }

  // Held-out evaluation: all C(82,2) = 3,321 SNS1 pairs (paper test 1).
  const Dataset sns1 = MakeShapeNetSet1(data_opts);
  const auto pairs = MakeAllUnorderedPairs(sns1);
  const BinaryReport report = pipeline.EvaluatePairs(pairs, sns1, sns1);

  std::printf("\nSNS1 pair evaluation (%zu pairs):\n", pairs.size());
  std::printf("  similar    P %.3f  R %.3f  F1 %.3f  support %d\n",
              report.similar.precision, report.similar.recall,
              report.similar.f1, report.similar.support);
  std::printf("  dissimilar P %.3f  R %.3f  F1 %.3f  support %d\n",
              report.dissimilar.precision, report.dissimilar.recall,
              report.dissimilar.f1, report.dissimilar.support);
  std::printf(
      "\nExpected outcome (paper Table 4): the model overfits the balanced\n"
      "training distribution and labels almost everything 'similar', so\n"
      "similar-recall is ~1.0 while dissimilar metrics collapse.\n");
  return 0;
}
