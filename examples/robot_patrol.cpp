// Robot patrol: the semantic-mapping scenario that motivates the paper
// (health & safety monitoring, obstacle inventory). A simulated robot
// sweeps a corridor; each frame contains several segmented objects on a
// dark background. The pipeline segments every frame into object regions
// (`SegmentFrame`), classifies each region against the ShapeNet gallery,
// and accumulates a task-agnostic inventory.
//
// Fault tolerance: frame ingestion goes through bounded
// retry-with-backoff; a frame that stays unavailable is dropped and
// counted, never crashing the patrol. Arm a deterministic ingestion
// fault rate with `--fault-seed N [--fault-rate R]` to watch it degrade
// gracefully.
//
// Run: ./build/examples/robot_patrol [--fault-seed N] [--fault-rate R]

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "core/classifiers.h"
#include "core/experiment.h"
#include "core/segmentation.h"
#include "data/scene.h"
#include "util/fault.h"
#include "util/retry.h"
#include "util/table.h"

namespace snor {
namespace {

// One sensor read. On a real robot this is the camera driver; here the
// injected io-read fault stands in for a dropped or corrupt frame.
Result<Scene> IngestFrame(int frame_id) {
  SNOR_RETURN_NOT_OK(
      InjectFault(FaultPoint::kIoRead, "frame " + std::to_string(frame_id)));
  SceneOptions scene_opts;
  scene_opts.seed = 2024 + static_cast<std::uint64_t>(frame_id);
  return RandomScene(scene_opts);
}

}  // namespace
}  // namespace snor

int main(int argc, char** argv) {
  using namespace snor;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      FaultInjector::Global().Arm(FaultPoint::kIoRead, 0.3,
                                  std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--fault-rate") == 0 && i + 1 < argc) {
      // Re-arm with the explicit rate, keeping the last seed given.
      FaultInjector::Global().Arm(FaultPoint::kIoRead,
                                  std::strtod(argv[++i], nullptr), 7);
    }
  }

  // Reference gallery + classifier (hybrid, paper's best configuration).
  ExperimentConfig config;
  config.nyu_fraction = 0.01;
  ExperimentContext context(config);
  HybridClassifier classifier(context.Sns1Features(), ShapeMatchMethod::kI3,
                              HistCompareMethod::kHellinger, 0.3, 0.7,
                              HybridStrategy::kWeightedSum);

  std::map<std::string, int> inventory;
  int seen = 0;
  int correct = 0;
  int dropped_frames = 0;

  RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff_ms = 1.0;
  retry.deadline_ms = 250.0;

  const int kFrames = 6;
  for (int frame_id = 0; frame_id < kFrames; ++frame_id) {
    auto frame = RetryWithBackoff(
        retry, [frame_id] { return IngestFrame(frame_id); });
    if (!frame.ok()) {
      ++dropped_frames;
      std::printf("frame %d: dropped after retries (%s)\n", frame_id,
                  frame.status().ToString().c_str());
      continue;
    }
    const Scene& scene = frame.value();

    const auto regions = SegmentFrame(scene.frame);
    std::printf("frame %d: %zu segmented regions\n", frame_id,
                regions.size());

    for (const auto& region : regions) {
      Dataset probe;
      probe.items.push_back(
          LabeledImage{region.crop, ObjectClass::kChair, 0, 0});
      FeatureOptions fo;
      fo.preprocess.white_background = false;
      const auto features = ComputeFeatures(probe, fo);
      if (!features[0].valid) continue;

      const ObjectClass predicted = classifier.Classify(features[0]);
      ++inventory[std::string(ObjectClassName(predicted))];
      ++seen;

      const Point centre{region.bbox.x + region.bbox.width / 2,
                         region.bbox.y + region.bbox.height / 2};
      if (scene.Covers(centre) && scene.TruthAt(centre) == predicted) {
        ++correct;
      }
    }
  }

  std::printf("\nSemantic inventory after %d frames:\n", kFrames);
  TablePrinter table({"Object class", "Count"});
  for (const auto& [name, count] : inventory) {
    table.AddRow({name, std::to_string(count)});
  }
  table.Print(std::cout);
  std::printf("Recognition: %d/%d regions correct (%.1f%%)\n", correct, seen,
              seen > 0 ? 100.0 * correct / seen : 0.0);
  if (dropped_frames > 0 || classifier.degradation().total() > 0) {
    std::printf(
        "Degraded-mode summary: %d/%d frames dropped after retries; "
        "%llu classifications fell back to a single modality.\n",
        dropped_frames, kFrames,
        static_cast<unsigned long long>(classifier.degradation().shape_only +
                                        classifier.degradation().color_only));
  }
  FaultInjector::Global().DisarmAll();
  std::printf(
      "(Random assignment over 10 classes would land near 10%%;\n"
      " the paper's best NYU-scale pipeline reaches ~21%%.)\n");
  return 0;
}
