// Robot patrol: the semantic-mapping scenario that motivates the paper
// (health & safety monitoring, obstacle inventory). A simulated robot
// sweeps a corridor; each frame contains several segmented objects on a
// dark background. The pipeline segments every frame into object regions
// (`SegmentFrame`), classifies each region against the ShapeNet gallery,
// and accumulates a task-agnostic inventory.
//
// Run: ./build/examples/robot_patrol

#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "core/classifiers.h"
#include "core/experiment.h"
#include "core/segmentation.h"
#include "data/scene.h"
#include "util/table.h"

int main() {
  using namespace snor;

  // Reference gallery + classifier (hybrid, paper's best configuration).
  ExperimentConfig config;
  config.nyu_fraction = 0.01;
  ExperimentContext context(config);
  HybridClassifier classifier(context.Sns1Features(), ShapeMatchMethod::kI3,
                              HistCompareMethod::kHellinger, 0.3, 0.7,
                              HybridStrategy::kWeightedSum);

  std::map<std::string, int> inventory;
  int seen = 0;
  int correct = 0;

  const int kFrames = 6;
  for (int frame_id = 0; frame_id < kFrames; ++frame_id) {
    SceneOptions scene_opts;
    scene_opts.seed = 2024 + static_cast<std::uint64_t>(frame_id);
    const Scene scene = RandomScene(scene_opts);

    const auto regions = SegmentFrame(scene.frame);
    std::printf("frame %d: %zu segmented regions\n", frame_id,
                regions.size());

    for (const auto& region : regions) {
      Dataset probe;
      probe.items.push_back(
          LabeledImage{region.crop, ObjectClass::kChair, 0, 0});
      FeatureOptions fo;
      fo.preprocess.white_background = false;
      const auto features = ComputeFeatures(probe, fo);
      if (!features[0].valid) continue;

      const ObjectClass predicted = classifier.Classify(features[0]);
      ++inventory[std::string(ObjectClassName(predicted))];
      ++seen;

      const Point centre{region.bbox.x + region.bbox.width / 2,
                         region.bbox.y + region.bbox.height / 2};
      if (scene.Covers(centre) && scene.TruthAt(centre) == predicted) {
        ++correct;
      }
    }
  }

  std::printf("\nSemantic inventory after %d frames:\n", kFrames);
  TablePrinter table({"Object class", "Count"});
  for (const auto& [name, count] : inventory) {
    table.AddRow({name, std::to_string(count)});
  }
  table.Print(std::cout);
  std::printf("Recognition: %d/%d regions correct (%.1f%%)\n", correct, seen,
              seen > 0 ? 100.0 * correct / seen : 0.0);
  std::printf(
      "(Random assignment over 10 classes would land near 10%%;\n"
      " the paper's best NYU-scale pipeline reaches ~21%%.)\n");
  return 0;
}
