// Task-agnostic knowledge acquisition — the end-to-end story the paper
// motivates: a robot patrols, recognises objects with the ShapeNet-based
// hybrid pipeline, fuses detections into a semantic map, and then answers
// *task* queries through the WordNet-synset layer ("something to sit on",
// "openable", by lemma "couch") without any task-specific training.
//
// Run: ./build/examples/semantic_query

#include <cstdio>
#include <iostream>
#include <string>

#include "core/classifiers.h"
#include "core/experiment.h"
#include "data/renderer.h"
#include "knowledge/semantic_map.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table.h"

namespace snor {
namespace {

// Simulated world: fixed objects at known poses along a corridor.
struct WorldObject {
  ObjectClass cls;
  double x;
  double y;
};

const std::vector<WorldObject>& World() {
  // Leaked on purpose (static-destruction-order safety).
  static const std::vector<WorldObject>& kWorld =
      *new std::vector<WorldObject>{  // NOLINT(raw-new-delete)
          {ObjectClass::kSofa, 1.0, 2.0},   {ObjectClass::kChair, 3.5, 1.0},
          {ObjectClass::kDoor, 6.0, 0.0},   {ObjectClass::kWindow, 8.0, 2.5},
          {ObjectClass::kTable, 10.0, 1.5}, {ObjectClass::kLamp, 12.0, 0.5},
          {ObjectClass::kBottle, 10.2, 1.6}, {ObjectClass::kBox, 14.0, 2.0},
      };
  return kWorld;
}

}  // namespace
}  // namespace snor

int main() {
  using namespace snor;

  ExperimentConfig config;
  config.nyu_fraction = 0.01;
  ExperimentContext context(config);
  HybridClassifier classifier(context.Sns1Features(), ShapeMatchMethod::kI3,
                              HistCompareMethod::kHellinger, 0.3, 0.7,
                              HybridStrategy::kWeightedSum);

  SemanticMap map(/*merge_radius=*/0.6);
  FeatureOptions fo;
  fo.preprocess.white_background = false;
  Rng rng(99);

  // The robot passes each object three times (different views/noise) and
  // fuses the (possibly inconsistent) classifications by voting.
  std::printf("Patrolling: 3 passes over %zu world objects...\n",
              World().size());
  for (int pass = 0; pass < 3; ++pass) {
    for (const auto& obj : World()) {
      RenderOptions ro;
      ro.white_background = false;
      ro.view_angle_deg = rng.Uniform(-25, 25);
      ro.noise_stddev = 8.0;
      ro.illumination = rng.Uniform(0.7, 1.05);
      ro.nuisance_seed = rng.NextU64();
      const ImageU8 crop =
          RenderObjectView(obj.cls, 6 + static_cast<int>(rng.Index(10)), ro);

      Dataset probe;
      probe.items.push_back(LabeledImage{crop, obj.cls, 0, 0});
      const auto features = ComputeFeatures(probe, fo);
      if (!features[0].valid) continue;
      const ObjectClass predicted = classifier.Classify(features[0]);
      // Odometry noise on the observed position.
      map.AddObservation(obj.x + rng.Uniform(-0.1, 0.1),
                         obj.y + rng.Uniform(-0.1, 0.1), predicted);
    }
  }

  std::printf("\nSemantic map: %zu fused object instances\n",
              map.objects().size());
  TablePrinter table({"Id", "Label", "Conf", "Pos", "Synset", "Hypernym"});
  for (const auto& obj : map.objects()) {
    const SynsetEntry& synset = SynsetFor(obj.Label());
    table.AddRow({std::to_string(obj.id),
                  std::string(ObjectClassName(obj.Label())),
                  StrFormat("%.2f", obj.Confidence()),
                  StrFormat("(%.1f, %.1f)", obj.x, obj.y),
                  synset.synset_id, synset.hypernyms.front()});
  }
  table.Print(std::cout);

  // Task queries resolved through the knowledge layer.
  auto show = [&](const char* description, const auto& results) {
    std::printf("\nQuery: %s -> %zu hit(s)\n", description, results.size());
    for (const auto* obj : results) {
      std::printf("  #%d %s at (%.1f, %.1f)\n", obj->id,
                  std::string(ObjectClassName(obj->Label())).c_str(), obj->x,
                  obj->y);
    }
  };
  show("concept 'sit' (something to sit on)", map.FindByConcept("sit"));
  show("concept 'openable' (ventilation / egress check)",
       map.FindByConcept("openable"));
  show("concept 'recyclable' (garbage-collection use case)",
       map.FindByConcept("recyclable"));
  show("lemma 'couch' (natural-language retrieval)",
       map.FindByLemma("couch"));
  return 0;
}
