// Exports the synthetic datasets (our stand-ins for the ShapeNet views and
// NYU Depth V2 crops) as PPM images plus a CSV manifest, so they can be
// inspected or consumed by external tools.
//
// Run: ./build/examples/dataset_export [output_dir] [nyu_fraction]

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "data/dataset.h"
#include "img/io_ppm.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace {

int ExportDataset(const snor::Dataset& dataset, const std::string& dir) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  snor::CsvWriter manifest({"file", "class", "model_id", "view_id"});
  int written = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto& item = dataset.items[i];
    const std::string filename = snor::StrFormat(
        "%s_%04zu.ppm",
        snor::AsciiToLower(snor::ObjectClassName(item.label)).c_str(), i);
    const std::string path = dir + "/" + filename;
    const snor::Status write_status = snor::WritePnm(item.image, path);
    if (!write_status.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                   write_status.ToString().c_str());
      continue;
    }
    manifest.AddRow({filename,
                     std::string(snor::ObjectClassName(item.label)),
                     std::to_string(item.model_id),
                     std::to_string(item.view_id)});
    ++written;
  }
  const auto status = manifest.WriteFile(dir + "/manifest.csv");
  if (!status.ok()) {
    std::fprintf(stderr, "manifest error: %s\n",
                 status.ToString().c_str());
  }
  return written;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snor;

  const std::string out_dir =
      argc > 1 ? argv[1] : "/tmp/snor_datasets";
  const double nyu_fraction = argc > 2 ? std::atof(argv[2]) : 0.02;

  DatasetOptions opts;
  opts.canvas_size = 96;

  const Dataset sns1 = MakeShapeNetSet1(opts);
  std::printf("ShapeNetSet1: %d images -> %s/sns1\n",
              ExportDataset(sns1, out_dir + "/sns1"), out_dir.c_str());

  const Dataset sns2 = MakeShapeNetSet2(opts);
  std::printf("ShapeNetSet2: %d images -> %s/sns2\n",
              ExportDataset(sns2, out_dir + "/sns2"), out_dir.c_str());

  DatasetOptions nyu_opts = opts;
  nyu_opts.sample_fraction = nyu_fraction;
  const Dataset nyu = MakeNyuSet(nyu_opts);
  std::printf("NYUSet (fraction %.2f): %d images -> %s/nyu\n", nyu_fraction,
              ExportDataset(nyu, out_dir + "/nyu"), out_dir.c_str());

  std::printf("Done. View any .ppm with standard image tools.\n");
  return 0;
}
