// Quickstart: classify one unknown object crop against a ShapeNet-style
// gallery with the hybrid (shape + colour) pipeline.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "core/classifiers.h"
#include "core/experiment.h"
#include "data/dataset.h"
#include "data/renderer.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace snor;

  // 1. Build the reference gallery: the 82-view synthetic ShapeNetSet1.
  ExperimentConfig config;
  config.canvas_size = 96;
  config.nyu_fraction = 0.01;  // Unused here; keeps context cheap.
  ExperimentContext context(config);
  const std::vector<ImageFeatures>& gallery = context.Sns1Features();
  std::printf("Gallery ready: %zu reference views, 10 classes\n",
              gallery.size());

  // 2. Simulate an unknown object seen by the robot: a noisy, black-masked
  //    "chair" crop from a model the gallery has never seen (model id 9).
  //    (Chairs are the class the paper's pipelines recognise best; harder
  //    classes frequently confuse — exactly the imbalance Tables 5-8
  //    document. Try ObjectClass::kSofa here to see a failure case.)
  RenderOptions view;
  view.white_background = false;
  view.view_angle_deg = 12.0;
  view.noise_stddev = 8.0;
  view.illumination = 0.8;
  view.nuisance_seed = 42;
  const ImageU8 unknown = RenderObjectView(ObjectClass::kChair, 9, view);

  // 3. Extract its features with the paper's preprocessing chain
  //    (threshold -> contours -> crop -> Hu moments + RGB histogram).
  FeatureOptions feature_options;
  feature_options.preprocess.white_background = false;
  Dataset probe;
  probe.name = "probe";
  probe.items.push_back(LabeledImage{unknown, ObjectClass::kChair, 9, 0});
  const auto features = ComputeFeatures(probe, feature_options);
  if (!features[0].valid) {
    std::printf("Preprocessing failed: no foreground found\n");
    return 1;
  }

  // 4. Classify with the paper's best hybrid configuration
  //    (Hu L3 + Hellinger, alpha = 0.3, beta = 0.7, weighted sum).
  HybridClassifier classifier(gallery, ShapeMatchMethod::kI3,
                              HistCompareMethod::kHellinger, 0.3, 0.7,
                              HybridStrategy::kWeightedSum);
  const ObjectClass predicted = classifier.Classify(features[0]);
  std::printf("Ground truth: %s\nPredicted:    %s\n",
              std::string(ObjectClassName(ObjectClass::kChair)).c_str(),
              std::string(ObjectClassName(predicted)).c_str());

  // 5. Show the 5 best-scoring gallery views (smaller theta = closer).
  const auto scores = classifier.ViewScores(features[0]);
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  TablePrinter table({"Rank", "Gallery view class", "Model", "Theta"});
  for (int r = 0; r < 5; ++r) {
    const auto i = order[static_cast<std::size_t>(r)];
    table.AddRow({std::to_string(r + 1),
                  std::string(ObjectClassName(gallery[i].label)),
                  std::to_string(gallery[i].model_id),
                  StrFormat("%.4f", scores[i])});
  }
  table.Print(std::cout);
  return 0;
}
