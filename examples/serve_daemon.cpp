// Recognition service daemon: the long-running deployment shape of the
// paper's pipeline. A RecognitionService is stood up over the SNS1
// gallery; concurrent client threads submit queries with deadlines and
// the admission-controlled dispatcher coalesces them into sharded
// batches. The demo then injects a sustained NaN-score fault storm to
// trip the circuit breaker (watch replies flip to the degraded
// colour-only path), lifts the fault, and shows the breaker half-open
// probe restoring full-modality service after the cool-down.
//
// Run: ./build/examples/serve_daemon
//   --introspect-port P   serve /healthz /statusz /metricsz /tracez on
//                         127.0.0.1:P (0 = ephemeral; printed on stdout)
//   --linger-s S          keep the service (and introspection endpoints)
//                         up for S seconds after the demo phases finish

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "obs/introspect.h"
#include "obs/trace.h"
#include "serve/service.h"
#include "util/fault.h"

namespace snor::serve {
namespace {

struct PhaseOutcome {
  int ok = 0;
  int degraded = 0;
  int errors = 0;
};

/// Drives `clients` threads, each submitting `per_client` queries with
/// the service's default deadline, and tallies the replies.
PhaseOutcome RunPhase(RecognitionService& service,
                      const std::vector<ImageFeatures>& queries, int clients,
                      int per_client) {
  std::vector<std::future<PhaseOutcome>> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.push_back(std::async(std::launch::async, [&, c] {
      PhaseOutcome tally;
      for (int i = 0; i < per_client; ++i) {
        const std::size_t pick =
            (static_cast<std::size_t>(c) * 131 + static_cast<std::size_t>(i)) %
            queries.size();
        const Result<ServiceReply> reply = service.Classify(queries[pick]);
        if (reply.ok()) {
          ++tally.ok;
          if (reply.value().degraded) ++tally.degraded;
        } else {
          ++tally.errors;
        }
      }
      return tally;
    }));
  }
  PhaseOutcome total;
  for (auto& w : workers) {
    const PhaseOutcome t = w.get();
    total.ok += t.ok;
    total.degraded += t.degraded;
    total.errors += t.errors;
  }
  return total;
}

void PrintPhase(const char* name, const PhaseOutcome& outcome,
                const ServiceStats& stats) {
  std::printf("%-28s ok=%-4d degraded=%-4d errors=%-3d "
              "(breaker state=%d, trips=%llu)\n",
              name, outcome.ok, outcome.degraded, outcome.errors,
              stats.breaker_state,
              static_cast<unsigned long long>(stats.breaker_trips));
}

struct DaemonConfig {
  /// -1 disables the introspection server; 0 binds an ephemeral port.
  int introspect_port = -1;
  /// Seconds to keep serving introspection after the demo phases.
  double linger_s = 0.0;
};

int Run(const DaemonConfig& daemon) {
  // Small-scale context: 48px canvas, 1% of the NYU-scale gallery keeps
  // the demo interactive.
  ExperimentConfig config;
  config.canvas_size = 48;
  config.nyu_fraction = 0.01;
  ExperimentContext context(config);
  const std::vector<ImageFeatures> gallery = context.Sns1Features();

  ApproachSpec spec;
  spec.kind = ApproachSpec::Kind::kHybrid;
  spec.alpha = 0.3;
  spec.beta = 0.7;

  ServiceOptions options;
  options.default_deadline_ms = 2000.0;
  options.max_batch = 32;
  options.breaker.window = 64;
  options.breaker.min_samples = 16;
  options.breaker.cooldown_ms = 100.0;

  auto service = RecognitionService::Create(spec, gallery, options);
  if (!service.ok()) {
    std::fprintf(stderr, "serve_daemon: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  std::printf("service up: hybrid spec, %zu gallery features, degraded "
              "fallback %s\n\n",
              gallery.size(),
              service.value()->degraded_engine() != nullptr
                  ? "colour-only"
                  : "none");

  // Live introspection (optional): tail-keep tracing feeds /tracez, the
  // service's /statusz handler reads stats + SLO burn rates. The server
  // is declared after `service` so it stops before the service dies.
  obs::IntrospectServer introspect;
  if (daemon.introspect_port >= 0) {
    obs::RequestTraceStore::Global().Enable({});
    RegisterServiceIntrospection(introspect, *service.value());
    if (!introspect.Start(daemon.introspect_port)) {
      std::fprintf(stderr, "serve_daemon: introspect: bind failed on %d\n",
                   daemon.introspect_port);
      return 1;
    }
    std::printf("introspect: listening on 127.0.0.1:%d\n\n",
                introspect.port());
    std::fflush(stdout);
  }

  // Queries: reuse gallery features as probes (self-recognition traffic).
  const std::vector<ImageFeatures>& queries = gallery;
  const int kClients = 4;
  const int kPerClient = 32;

  // Phase 1 — healthy traffic: everything OK on the primary path.
  PhaseOutcome healthy =
      RunPhase(*service.value(), queries, kClients, kPerClient);
  PrintPhase("phase 1 (healthy):", healthy, service.value()->stats());

  // Phase 2 — fault storm: every shape score is NaN-poisoned, so hybrid
  // classification collapses to a single modality on every request. The
  // breaker window saturates, trips open, and replies switch to the
  // degraded colour-only engine (immune to shape poisoning).
  {
    ScopedFault storm(FaultPoint::kNanScore, 1.0, 99);
    PhaseOutcome stormy =
        RunPhase(*service.value(), queries, kClients, kPerClient);
    PrintPhase("phase 2 (nan-score storm):", stormy,
               service.value()->stats());
    if (stormy.degraded == 0) {
      std::fprintf(stderr,
                   "serve_daemon: breaker never degraded under storm\n");
      return 1;
    }
  }

  // Phase 3 — recovery: fault lifted; after the cool-down the breaker
  // half-opens, probes the primary path, and closes on success.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  PhaseOutcome recovered =
      RunPhase(*service.value(), queries, kClients, kPerClient);
  const ServiceStats stats = service.value()->stats();
  PrintPhase("phase 3 (recovered):", recovered, stats);
  if (stats.breaker_state != 0) {
    std::fprintf(stderr, "serve_daemon: breaker did not re-close\n");
    return 1;
  }

  // Optional linger window for operators to curl the endpoints while the
  // service is still accepting traffic.
  if (daemon.linger_s > 0.0) {
    std::printf("\nlingering %.1fs (curl the introspection endpoints)...\n",
                daemon.linger_s);
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(daemon.linger_s));
  }

  service.value()->Shutdown();
  const ServiceStats final_stats = service.value()->stats();
  std::printf("\nlifetime: submitted=%llu ok=%llu degraded=%llu "
              "timed_out=%llu failed=%llu batches=%llu trips=%llu\n",
              static_cast<unsigned long long>(final_stats.submitted),
              static_cast<unsigned long long>(final_stats.ok),
              static_cast<unsigned long long>(final_stats.degraded),
              static_cast<unsigned long long>(final_stats.timed_out),
              static_cast<unsigned long long>(final_stats.failed),
              static_cast<unsigned long long>(final_stats.batches),
              static_cast<unsigned long long>(final_stats.breaker_trips));
  if (final_stats.ok + final_stats.shed + final_stats.timed_out +
          final_stats.failed + final_stats.rejected !=
      final_stats.submitted) {
    std::fprintf(stderr, "serve_daemon: outcome accounting broken\n");
    return 1;
  }
  std::printf("every request answered exactly once; breaker tripped and "
              "recovered.\n");
  return 0;
}

}  // namespace
}  // namespace snor::serve

int main(int argc, char** argv) {
  snor::serve::DaemonConfig daemon;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--introspect-port") == 0) {
      daemon.introspect_port = static_cast<int>(
          std::strtol(next("--introspect-port"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--linger-s") == 0) {
      daemon.linger_s = std::strtod(next("--linger-s"), nullptr);
    } else {
      std::fprintf(stderr, "usage: %s [--introspect-port P] [--linger-s S]\n",
                   argv[0]);
      return 2;
    }
  }
  return snor::serve::Run(daemon);
}
