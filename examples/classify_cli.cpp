// Command-line classifier: builds (or loads) a serialized feature gallery
// and classifies PPM images from disk — the deployment shape a robot
// integration would use (no re-rendering, no re-processing the gallery).
//
// Usage:
//   classify_cli --build-gallery <gallery.bin>
//   classify_cli --gallery <gallery.bin> [--black-background] img.ppm...
//
// With no arguments it runs a self-contained demo: builds the gallery,
// saves it, exports a probe image, and classifies it.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/classifiers.h"
#include "core/experiment.h"
#include "core/gallery_io.h"
#include "data/renderer.h"
#include "img/color.h"
#include "img/io_ppm.h"
#include "util/retry.h"

namespace snor {
namespace {

int BuildGallery(const std::string& path) {
  ExperimentConfig config;
  config.nyu_fraction = 0.01;
  ExperimentContext context(config);
  const Status status = SaveFeatures(context.Sns1Features(), path);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("gallery (%zu views) written to %s\n",
              context.Sns1Features().size(), path.c_str());
  return 0;
}

int ClassifyFiles(const std::string& gallery_path,
                  const std::vector<std::string>& files,
                  bool black_background) {
  // Gallery load is the one retryable stage of this tool: a deployed
  // robot reads it from flash or network storage, so transient IO errors
  // get three attempts with backoff before giving up.
  RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff_ms = 2.0;
  auto gallery = RetryWithBackoff(
      retry, [&gallery_path] { return LoadFeatures(gallery_path); });
  if (!gallery.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 gallery.status().ToString().c_str());
    return 1;
  }
  HybridClassifier classifier(gallery.MoveValue(), ShapeMatchMethod::kI3,
                              HistCompareMethod::kHellinger, 0.3, 0.7,
                              HybridStrategy::kWeightedSum);
  FeatureOptions fo;
  fo.preprocess.white_background = !black_background;

  int failures = 0;
  for (const auto& file : files) {
    auto image = ReadPnm(file);
    if (!image.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   image.status().ToString().c_str());
      ++failures;
      continue;
    }
    ImageU8 rgb = image->channels() == 3 ? image.MoveValue()
                                         : GrayToRgb(image.value());
    Dataset probe;
    probe.items.push_back(LabeledImage{std::move(rgb),
                                       ObjectClass::kChair, 0, 0});
    const auto features = ComputeFeatures(probe, fo);
    if (!features[0].valid) {
      std::printf("%s: no object found\n", file.c_str());
      continue;
    }
    const ObjectClass label = classifier.Classify(features[0]);
    std::printf("%s: %s\n", file.c_str(),
                std::string(ObjectClassName(label)).c_str());
  }
  return failures == 0 ? 0 : 1;
}

int Demo() {
  const std::string gallery_path = "/tmp/snor_gallery.bin";
  const std::string probe_path = "/tmp/snor_probe.ppm";
  if (BuildGallery(gallery_path) != 0) return 1;

  RenderOptions ro;
  ro.white_background = false;
  ro.view_angle_deg = 10.0;
  ro.noise_stddev = 7.0;
  ro.nuisance_seed = 3;
  const ImageU8 probe = RenderObjectView(ObjectClass::kChair, 8, ro);
  if (!WritePnm(probe, probe_path).ok()) return 1;
  std::printf("probe image (ground truth: Chair) -> %s\n",
              probe_path.c_str());
  return ClassifyFiles(gallery_path, {probe_path},
                       /*black_background=*/true);
}

}  // namespace
}  // namespace snor

int main(int argc, char** argv) {
  using namespace snor;
  if (argc == 1) return Demo();

  std::string gallery_path;
  bool build = false;
  bool black_background = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--build-gallery") == 0 && i + 1 < argc) {
      build = true;
      gallery_path = argv[++i];
    } else if (std::strcmp(argv[i], "--gallery") == 0 && i + 1 < argc) {
      gallery_path = argv[++i];
    } else if (std::strcmp(argv[i], "--black-background") == 0) {
      black_background = true;
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (gallery_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --build-gallery out.bin | --gallery g.bin "
                 "[--black-background] img.ppm...\n",
                 argv[0]);
    return 2;
  }
  if (build) return BuildGallery(gallery_path);
  return ClassifyFiles(gallery_path, files, black_background);
}
