#ifndef SNOR_CORE_SEGMENTATION_H_
#define SNOR_CORE_SEGMENTATION_H_

#include <vector>

#include "geometry/contour.h"
#include "img/image.h"

namespace snor {

/// \brief One segmented object region in a camera frame.
struct SegmentedObject {
  /// RGB crop of the region's bounding box.
  ImageU8 crop;
  /// Bounding box in frame coordinates.
  Rect bbox;
  /// Outer contour in frame coordinates.
  Contour contour;
};

/// \brief Frame segmentation options.
struct SegmentationOptions {
  /// Intensity above which a pixel counts as foreground (dark-background
  /// frames, as produced by depth-mask segmentation).
  std::uint8_t threshold = 10;
  /// Components smaller than this many boundary-enclosed pixels are
  /// dropped (speckle rejection).
  int min_pixels = 60;
  /// Hard cap on returned regions (largest first); 0 = unlimited.
  int max_objects = 0;
};

/// Segments a dark-background RGB frame into object regions: global
/// threshold on the gray image, 8-connected components, Moore contours,
/// bounding-box crops. Regions are returned largest-area first.
/// This is the front end the examples' patrol loop and the robot
/// integration use before per-region classification.
std::vector<SegmentedObject> SegmentFrame(
    const ImageU8& frame, const SegmentationOptions& options = {});

}  // namespace snor

#endif  // SNOR_CORE_SEGMENTATION_H_
