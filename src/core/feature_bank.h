#ifndef SNOR_CORE_FEATURE_BANK_H_
#define SNOR_CORE_FEATURE_BANK_H_

/// \file
/// Structure-of-arrays gallery feature banks and their batch distance
/// kernels, plus the gallery-level ANN view index.
///
/// The cold classifiers walk a `std::vector<ImageFeatures>` — an
/// array-of-structs where every score computation chases a pointer into a
/// separately heap-allocated histogram. The bank packs the per-view
/// matching features (Hu moments, L1-normalized color histograms, labels,
/// validity) into flat, padded, 64-byte-stride arrays so the per-view inner
/// loops stream contiguous memory, and the descriptor banks do the same for
/// float and binarized (BRIEF/ORB) keypoint descriptors.
///
/// Kernel contract — bit identity. Every bank kernel calls the *same*
/// raw per-pair functions as the cold path (`MatchShapesRaw`,
/// `CompareHistogramsRaw`, `HybridColorDistanceRaw`, `FloatDistanceRaw`,
/// word-wise Hamming), scans views in ascending index order with the same
/// skip rules (invalid view, non-finite score) and the same strict
/// comparisons, and probes `MaybePoisonScore` at the same per-view points.
/// The batched result is therefore bit-identical to the scalar
/// `*OverRange` loops in classifiers.cc by construction; the differential
/// fuzz tests in tests/core_feature_bank_test.cc enforce it.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/classifiers.h"
#include "core/feature_cache.h"
#include "features/ann.h"
#include "features/keypoint.h"
#include "features/matcher.h"
#include "util/thread_annotations.h"

namespace snor {

/// \brief SoA bank of the per-view matching features of one gallery.
///
/// Rows are padded to a 64-byte stride (8 doubles) so consecutive views
/// never straddle the same cache line pair and the autovectorizer sees
/// constant-stride streams. Pad lanes are zero and never read.
///
/// OWNS_VIEWS: row accessors hand out borrowed pointers into the flat
/// arrays. A row pointer dies when the bank is destroyed, reassigned,
/// swapped, or repacked — take rows inside the scan that uses them
/// (never across a snapshot swap) and re-derive after any reload. The
/// snor_analyze borrow pass enforces this generation discipline.
struct SNOR_OWNS_VIEWS FeatureBank {
  /// Hu rows are 7 moments + 1 zero pad lane.
  static constexpr std::size_t kHuStride = 8;

  std::size_t num_views = 0;
  /// Histogram geometry shared by every view (validated at pack time).
  int bins_per_channel = 0;
  std::size_t hist_bins = 0;    ///< Logical bins per row.
  std::size_t hist_stride = 0;  ///< Padded row width (multiple of 8).

  std::vector<double> hu;            ///< num_views * kHuStride.
  std::vector<double> hist;          ///< num_views * hist_stride.
  std::vector<std::uint8_t> valid;   ///< 1 = usable view.
  std::vector<ObjectClass> labels;   ///< Per-view class label.
  std::vector<int> model_ids;        ///< Per-view model id.

  std::size_t size() const { return num_views; }
  bool empty() const { return num_views == 0; }

  const double* HuRow(std::size_t i) const SNOR_LIFETIME_BOUND {
    return hu.data() + i * kHuStride;
  }
  const double* HistRow(std::size_t i) const SNOR_LIFETIME_BOUND {
    return hist.data() + i * hist_stride;
  }
  bool IsValid(std::size_t i) const { return valid[i] != 0; }
};

/// Packs a gallery into an SoA bank. Bin values, Hu moments, labels and
/// validity are copied exactly (no renormalization — pack/unpack is a
/// bit-exact round trip). All views must share one histogram geometry.
[[nodiscard]] FeatureBank PackFeatureBank(
    const std::vector<ImageFeatures>& gallery);

/// Inverse of PackFeatureBank. `status` is not carried (it is not
/// serialized by the feature store either); everything the matchers read —
/// label, model id, hu, validity, histogram bins — round-trips exactly.
[[nodiscard]] std::vector<ImageFeatures> UnpackFeatureBank(
    const FeatureBank& bank);

/// Bank equivalent of ShapeArgminOverRange: shape-only partial argmin over
/// bank views [begin, end), bit-identical to the cold loop.
[[nodiscard]] PartialBest BankShapeArgminOverRange(const ImageFeatures& input,
                                                   const FeatureBank& bank,
                                                   std::size_t begin,
                                                   std::size_t end,
                                                   ShapeMatchMethod method);

/// Bank equivalent of ColorArgbestOverRange.
[[nodiscard]] PartialBest BankColorArgbestOverRange(const ImageFeatures& input,
                                                    const FeatureBank& bank,
                                                    std::size_t begin,
                                                    std::size_t end,
                                                    HistCompareMethod method);

/// Bank equivalent of ComputeHybridScoresOverRange; identical output and
/// usable counts for the same range.
void BankHybridScoresOverRange(
    const ImageFeatures& input, const FeatureBank& bank, std::size_t begin,
    std::size_t end, ShapeMatchMethod shape_method,
    HistCompareMethod color_method, bool use_shape, bool use_color,
    std::vector<double>* shape_scores, std::vector<double>* color_scores,
    std::size_t* shape_usable, std::size_t* color_usable);

/// Candidate-subset variants of the kernels above, used by the ANN
/// exact-rerank path: identical per-view arithmetic and skip rules, but
/// only the listed view indices are scored. `candidates` must be sorted
/// ascending so the first-strict-optimum tie-break visits views in the
/// same order as a full scan restricted to that subset.
[[nodiscard]] PartialBest BankShapeArgminOverCandidates(
    const ImageFeatures& input, const FeatureBank& bank,
    const std::vector<int>& candidates, ShapeMatchMethod method);
[[nodiscard]] PartialBest BankColorArgbestOverCandidates(
    const ImageFeatures& input, const FeatureBank& bank,
    const std::vector<int>& candidates, HistCompareMethod method);
void BankHybridScoresOverCandidates(
    const ImageFeatures& input, const FeatureBank& bank,
    const std::vector<int>& candidates, ShapeMatchMethod shape_method,
    HistCompareMethod color_method, bool use_shape, bool use_color,
    std::vector<double>* shape_scores, std::vector<double>* color_scores,
    std::size_t* shape_usable, std::size_t* color_usable);

/// HybridArgminLabel over bank labels/model ids (identical to the gallery
/// overload since pack preserves both).
[[nodiscard]] ObjectClass BankHybridArgminLabel(
    const std::vector<double>& theta, const FeatureBank& bank,
    HybridStrategy strategy, ObjectClass fallback);

/// \brief Flat bank of equal-length float descriptors (one row per
/// descriptor, stride padded to 16 floats / 64 bytes).
///
/// OWNS_VIEWS: Row() borrows from `data` under the same generation
/// discipline as FeatureBank.
struct SNOR_OWNS_VIEWS FloatDescriptorBank {
  std::size_t count = 0;
  std::size_t dim = 0;
  std::size_t stride = 0;
  std::vector<float> data;

  const float* Row(std::size_t i) const SNOR_LIFETIME_BOUND {
    return data.data() + i * stride;
  }
};

/// All descriptors must share one dimension.
[[nodiscard]] FloatDescriptorBank PackFloatDescriptors(
    const std::vector<FloatDescriptor>& descriptors);

/// out[i] = FloatDistance(query, descriptor i); bit-identical to the
/// per-descriptor loop (shared FloatDistanceRaw core).
void BankFloatDistances(const FloatDescriptorBank& bank,
                        const FloatDescriptor& query, FloatNorm norm,
                        float* out);

/// out[i] = squared L2 distance from query to descriptor i, accumulated in
/// float across independent lanes. Retrieval-only: the reassociated float
/// sum is NOT bit-identical to FloatDistanceRaw's serial double
/// accumulation, but squared L2 is strictly monotone in L2, so top-R sets
/// agree up to rounding ties. FloatDistanceRaw's serial dependence chain
/// caps the full-bank scan at scalar add latency; the independent lanes
/// here let it run at SIMD multiply-add throughput instead, which is what
/// makes the flat-scan retrieval in GalleryViewIndex beat the exact
/// kernels. Candidate *scores* are discarded — exact rerank re-scores with
/// the bit-identical kernels — so retrieval arithmetic never leaks into
/// results.
void BankFloatSquaredL2(const FloatDescriptorBank& bank,
                        const FloatDescriptor& query, float* out);

/// \brief Flat bank of 256-bit binary descriptors as aligned u64 words.
///
/// OWNS_VIEWS: Row() borrows from `words` under the same generation
/// discipline as FeatureBank.
struct SNOR_OWNS_VIEWS BinaryDescriptorBank {
  static constexpr std::size_t kWordsPerRow = 4;  // 256 bits.

  std::size_t count = 0;
  std::vector<std::uint64_t> words;  ///< count * kWordsPerRow.

  const std::uint64_t* Row(std::size_t i) const SNOR_LIFETIME_BOUND {
    return words.data() + i * kWordsPerRow;
  }
};

[[nodiscard]] BinaryDescriptorBank PackBinaryDescriptors(
    const std::vector<BinaryDescriptor>& descriptors);

/// out[i] = HammingDistance(query, descriptor i); integer popcount over
/// pre-packed words, trivially identical to the byte-wise loop.
void BankHammingDistances(const BinaryDescriptorBank& bank,
                          const BinaryDescriptor& query, int* out);

/// Options for the gallery-level ANN view index.
struct GalleryIndexOptions {
  /// Top-R candidates requested per modality before exact rerank.
  int candidates = 48;
  /// Shape metric used by the exact shape prefilter (the engine passes
  /// its approach's method so prefilter ranks equal rerank ranks).
  ShapeMatchMethod shape_method = ShapeMatchMethod::kI3;
  /// Passed through to the color AnnIndex.
  AnnOptions ann;
};

/// \brief Candidate retrieval over gallery views for the ANN match mode,
/// one retrieval structure per modality:
///
///  - shape: an exact top-R prefilter over precomputed log-Hu maps — a
///    full `MatchShapesFromMaps` scan amortises the transcendentals, costs
///    a fraction of one color distance, and is both cheaper and strictly
///    more faithful than any Euclidean proxy of the non-metric shape
///    distances (I1-I3 are relative or Chebyshev-like; no k-d embedding
///    ranks them reliably);
///  - color: top-R in the full sqrt-space histogram embedding
///    e_i = sqrt(bin_i). Hellinger distance is exactly (1/sqrt(2)) * L2
///    in sqrt space, so embedding ranks equal exact Hellinger ranks (up
///    to float rounding) while each embedding distance costs plain
///    multiply-adds instead of the exact kernel's per-pair sqrt. By
///    default the embeddings live in a flat SoA FloatDescriptorBank
///    scanned by the vectorized batch kernel — measured faster than any
///    k-d traversal at histogram dimensionality, where bounded-leaf-check
///    trees also collapse to near-random candidates. Setting
///    `GalleryIndexOptions::ann.max_leaf_checks > 0` opts into a k-d tree
///    (AnnIndex) with that budget instead: sub-scan retrieval at bounded
///    recall.
///
/// The index only *proposes* candidate view indices; callers rerank them
/// with the exact bank kernels, so `--match-mode=ann` accuracy degrades
/// only by bounded recall loss, never by approximate scores.
class GalleryViewIndex {
 public:
  [[nodiscard]] static GalleryViewIndex Build(
      const FeatureBank& bank, const GalleryIndexOptions& options = {});

  /// Union of per-modality top-R candidate view indices for `query`,
  /// sorted ascending (deterministic rerank order). Empty when no usable
  /// modality — callers fall back to a full exact scan.
  [[nodiscard]] std::vector<int> Candidates(const ImageFeatures& query,
                                            bool use_shape,
                                            bool use_color) const;

  int candidates_per_modality() const { return options_.candidates; }

  /// Sqrt-space color embedding (exposed for tests): one float per
  /// histogram bin, `bins_per_channel`^3 total.
  [[nodiscard]] static FloatDescriptor ColorEmbedding(const double* bins,
                                                      int bins_per_channel);

 private:
  GalleryIndexOptions options_;
  /// Exact shape prefilter rows: precomputed log-Hu maps of valid views
  /// with finite Hu moments.
  std::vector<LogHuMap> shape_maps_;
  std::vector<int> shape_ids_;
  /// Sqrt-space color embeddings: flat SoA bank scanned by the batch
  /// float kernel (default), or a k-d tree when an explicit leaf-check
  /// budget opts into bounded-recall sub-scan retrieval.
  FloatDescriptorBank color_bank_;
  std::vector<int> color_ids_;
  std::optional<AnnIndex> color_tree_;
};

}  // namespace snor

#endif  // SNOR_CORE_FEATURE_BANK_H_
