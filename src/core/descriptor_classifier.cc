#include "core/descriptor_classifier.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace snor {
namespace {

std::vector<FloatDescriptor> ExtractFloat(
    const ImageU8& image, const DescriptorClassifierOptions& options) {
  if (options.type == DescriptorType::kSift) {
    return ExtractSift(image, options.sift).descriptors;
  }
  return ExtractSurf(image, options.surf).descriptors;
}

}  // namespace

DescriptorClassifier::DescriptorClassifier(
    const Dataset& gallery, const DescriptorClassifierOptions& options)
    : options_(options) {
  SNOR_CHECK(!gallery.items.empty());
  labels_.reserve(gallery.size());
  for (const auto& item : gallery.items) {
    labels_.push_back(item.label);
    if (options_.type == DescriptorType::kOrb) {
      binary_gallery_.push_back(
          ExtractOrb(item.image, options_.orb).descriptors);
    } else {
      float_gallery_.push_back(ExtractFloat(item.image, options_));
      if (options_.use_kdtree) {
        kdtrees_.push_back(
            std::make_unique<KdTreeMatcher>(float_gallery_.back()));
      }
    }
  }
}

std::size_t DescriptorClassifier::total_gallery_keypoints() const {
  std::size_t total = 0;
  for (const auto& v : float_gallery_) total += v.size();
  for (const auto& v : binary_gallery_) total += v.size();
  return total;
}

DescriptorClassifier::ViewMatchStats DescriptorClassifier::MatchAgainstView(
    const std::vector<FloatDescriptor>& query, std::size_t view) const {
  ViewMatchStats stats;
  const auto& train = float_gallery_[view];
  if (query.empty() || train.empty()) return stats;
  std::vector<std::vector<DMatch>> knn;
  if (options_.use_kdtree) {
    knn = kdtrees_[view]->KnnMatch(query, 2);
  } else {
    knn = KnnMatchBruteForce(query, train, 2, FloatNorm::kL2);
  }
  const auto good = RatioTestFilter(knn, options_.ratio);
  stats.good_matches = static_cast<int>(good.size());
  double good_sum = 0.0;
  for (const auto& m : good) good_sum += m.distance;
  stats.mean_good_distance =
      good.empty() ? std::numeric_limits<double>::max()
                   : good_sum / static_cast<double>(good.size());
  double first_sum = 0.0;
  int first_count = 0;
  for (const auto& list : knn) {
    if (!list.empty()) {
      first_sum += list.front().distance;
      ++first_count;
    }
  }
  stats.mean_first_distance =
      first_count == 0 ? std::numeric_limits<double>::max()
                       : first_sum / first_count;
  return stats;
}

DescriptorClassifier::ViewMatchStats DescriptorClassifier::MatchAgainstView(
    const std::vector<BinaryDescriptor>& query, std::size_t view) const {
  ViewMatchStats stats;
  const auto& train = binary_gallery_[view];
  if (query.empty() || train.empty()) return stats;
  const auto knn = KnnMatchBruteForce(query, train, 2);
  const auto good = RatioTestFilter(knn, options_.ratio);
  stats.good_matches = static_cast<int>(good.size());
  double good_sum = 0.0;
  for (const auto& m : good) good_sum += m.distance;
  stats.mean_good_distance =
      good.empty() ? std::numeric_limits<double>::max()
                   : good_sum / static_cast<double>(good.size());
  double first_sum = 0.0;
  int first_count = 0;
  for (const auto& list : knn) {
    if (!list.empty()) {
      first_sum += list.front().distance;
      ++first_count;
    }
  }
  stats.mean_first_distance =
      first_count == 0 ? std::numeric_limits<double>::max()
                       : first_sum / first_count;
  return stats;
}

ObjectClass DescriptorClassifier::Classify(const ImageU8& image) const {
  std::vector<ViewMatchStats> stats(labels_.size());
  if (options_.type == DescriptorType::kOrb) {
    const auto query = ExtractOrb(image, options_.orb).descriptors;
    for (std::size_t v = 0; v < labels_.size(); ++v) {
      stats[v] = MatchAgainstView(query, v);
    }
  } else {
    const auto query = ExtractFloat(image, options_);
    for (std::size_t v = 0; v < labels_.size(); ++v) {
      stats[v] = MatchAgainstView(query, v);
    }
  }

  // Primary criterion: most ratio-test survivors; ties by mean good-match
  // distance.
  std::size_t best = 0;
  bool any_good = false;
  for (std::size_t v = 0; v < stats.size(); ++v) {
    if (stats[v].good_matches > stats[best].good_matches ||
        (stats[v].good_matches == stats[best].good_matches &&
         stats[v].mean_good_distance < stats[best].mean_good_distance)) {
      best = v;
    }
    if (stats[v].good_matches > 0) any_good = true;
  }
  if (any_good) return labels_[best];

  // Fallback: nearest mean first-neighbour distance.
  std::size_t nearest = 0;
  for (std::size_t v = 1; v < stats.size(); ++v) {
    if (stats[v].mean_first_distance < stats[nearest].mean_first_distance) {
      nearest = v;
    }
  }
  return labels_[nearest];
}

std::vector<ObjectClass> DescriptorClassifier::ClassifyAll(
    const Dataset& inputs) const {
  std::vector<ObjectClass> predictions;
  predictions.reserve(inputs.size());
  for (const auto& item : inputs.items) {
    predictions.push_back(Classify(item.image));
  }
  return predictions;
}

}  // namespace snor
