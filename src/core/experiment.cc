#include "core/experiment.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace snor {

std::string ApproachSpec::DisplayName() const {
  switch (kind) {
    case Kind::kBaseline:
      return "Baseline";
    case Kind::kShape:
      switch (shape) {
        case ShapeMatchMethod::kI1:
          return "Shape only L1";
        case ShapeMatchMethod::kI2:
          return "Shape only L2";
        case ShapeMatchMethod::kI3:
          return "Shape only L3";
      }
      break;
    case Kind::kColor:
      switch (color) {
        case HistCompareMethod::kCorrelation:
          return "Color only Correlation";
        case HistCompareMethod::kChiSquare:
          return "Color only Chi-square";
        case HistCompareMethod::kIntersection:
          return "Color only Intersection";
        case HistCompareMethod::kHellinger:
          return "Color only Hellinger";
      }
      break;
    case Kind::kHybrid:
      switch (strategy) {
        case HybridStrategy::kWeightedSum:
          return "Shape+Color (weighted sum)";
        case HybridStrategy::kMicroAverage:
          return "Shape+Color (micro-avg)";
        case HybridStrategy::kMacroAverage:
          return "Shape+Color (macro-avg)";
      }
      break;
  }
  return "Unknown";
}

std::vector<ApproachSpec> Table2Approaches(double alpha, double beta) {
  std::vector<ApproachSpec> specs;
  {
    ApproachSpec s;
    s.kind = ApproachSpec::Kind::kBaseline;
    specs.push_back(s);
  }
  for (ShapeMatchMethod m : {ShapeMatchMethod::kI1, ShapeMatchMethod::kI2,
                             ShapeMatchMethod::kI3}) {
    ApproachSpec s;
    s.kind = ApproachSpec::Kind::kShape;
    s.shape = m;
    specs.push_back(s);
  }
  for (HistCompareMethod m :
       {HistCompareMethod::kCorrelation, HistCompareMethod::kChiSquare,
        HistCompareMethod::kIntersection, HistCompareMethod::kHellinger}) {
    ApproachSpec s;
    s.kind = ApproachSpec::Kind::kColor;
    s.color = m;
    specs.push_back(s);
  }
  for (HybridStrategy strat :
       {HybridStrategy::kWeightedSum, HybridStrategy::kMicroAverage,
        HybridStrategy::kMacroAverage}) {
    ApproachSpec s;
    s.kind = ApproachSpec::Kind::kHybrid;
    s.shape = ShapeMatchMethod::kI3;       // Paper's reported best combo.
    s.color = HistCompareMethod::kHellinger;
    s.strategy = strat;
    s.alpha = alpha;
    s.beta = beta;
    specs.push_back(s);
  }
  return specs;
}

Result<std::unique_ptr<MatchingClassifier>> MakeClassifier(
    const ApproachSpec& spec, std::vector<ImageFeatures> gallery,
    std::uint64_t baseline_seed) {
  if (gallery.empty()) {
    return Status::InvalidArgument("cannot build " + spec.DisplayName() +
                                   " classifier over an empty gallery");
  }
  if (spec.kind != ApproachSpec::Kind::kBaseline) {
    const bool any_valid =
        std::any_of(gallery.begin(), gallery.end(),
                    [](const ImageFeatures& f) { return f.valid; });
    if (!any_valid) {
      return Status::Unavailable(
          "gallery has no valid view to match against (all " +
          std::to_string(gallery.size()) + " entries failed extraction)");
    }
  }
  std::unique_ptr<MatchingClassifier> classifier;
  switch (spec.kind) {
    case ApproachSpec::Kind::kBaseline:
      classifier = std::make_unique<RandomBaselineClassifier>(
          std::move(gallery), baseline_seed);
      break;
    case ApproachSpec::Kind::kShape:
      classifier = std::make_unique<ShapeOnlyClassifier>(std::move(gallery),
                                                         spec.shape);
      break;
    case ApproachSpec::Kind::kColor:
      classifier = std::make_unique<ColorOnlyClassifier>(std::move(gallery),
                                                         spec.color);
      break;
    case ApproachSpec::Kind::kHybrid:
      classifier = std::make_unique<HybridClassifier>(
          std::move(gallery), spec.shape, spec.color, spec.alpha, spec.beta,
          spec.strategy);
      break;
  }
  SNOR_CHECK_MSG(classifier != nullptr, "unknown approach kind");
  return classifier;
}

ExperimentContext::ExperimentContext(const ExperimentConfig& config)
    : config_(config) {}

FeatureOptions ExperimentContext::FeatureOptionsFor(
    bool white_background) const {
  FeatureOptions options;
  options.preprocess.white_background = white_background;
  options.hist_bins = config_.hist_bins;
  return options;
}

const Dataset& ExperimentContext::Sns1() {
  if (!sns1_) {
    DatasetOptions opts;
    opts.canvas_size = config_.canvas_size;
    opts.seed = config_.seed;
    sns1_ = MakeShapeNetSet1(opts);
  }
  return *sns1_;
}

const Dataset& ExperimentContext::Sns2() {
  if (!sns2_) {
    DatasetOptions opts;
    opts.canvas_size = config_.canvas_size;
    opts.seed = config_.seed + 1;
    sns2_ = MakeShapeNetSet2(opts);
  }
  return *sns2_;
}

const Dataset& ExperimentContext::Nyu() {
  if (!nyu_) {
    DatasetOptions opts;
    opts.canvas_size = config_.canvas_size;
    opts.seed = config_.seed + 2;
    opts.sample_fraction = config_.nyu_fraction;
    nyu_ = MakeNyuSet(opts);
  }
  return *nyu_;
}

namespace {

/// Counts reuse of the lazily built per-dataset feature caches.
void RecordCacheAccess(bool hit) {
  static obs::Counter& hits =
      obs::MetricsRegistry::Global().counter("core.feature_cache.hit");
  static obs::Counter& misses =
      obs::MetricsRegistry::Global().counter("core.feature_cache.miss");
  (hit ? hits : misses).Increment();
}

}  // namespace

const std::vector<ImageFeatures>& ExperimentContext::Sns1Features() {
  RecordCacheAccess(sns1_features_.has_value());
  if (!sns1_features_) {
    sns1_features_ = ComputeFeatures(Sns1(), FeatureOptionsFor(true));
  }
  return *sns1_features_;
}

const std::vector<ImageFeatures>& ExperimentContext::Sns2Features() {
  RecordCacheAccess(sns2_features_.has_value());
  if (!sns2_features_) {
    sns2_features_ = ComputeFeatures(Sns2(), FeatureOptionsFor(true));
  }
  return *sns2_features_;
}

const std::vector<ImageFeatures>& ExperimentContext::NyuFeatures() {
  RecordCacheAccess(nyu_features_.has_value());
  if (!nyu_features_) {
    nyu_features_ = ComputeFeatures(Nyu(), FeatureOptionsFor(false));
  }
  return *nyu_features_;
}

void ExperimentContext::ClearFeatureCaches() {
  static obs::Counter& evictions =
      obs::MetricsRegistry::Global().counter("core.feature_cache.evictions");
  if (sns1_features_) evictions.Increment();
  if (sns2_features_) evictions.Increment();
  if (nyu_features_) evictions.Increment();
  sns1_features_.reset();
  sns2_features_.reset();
  nyu_features_.reset();
}

Result<EvalReport> ExperimentContext::RunApproach(
    const ApproachSpec& spec, const std::vector<ImageFeatures>& inputs,
    const std::vector<ImageFeatures>& gallery) {
  SNOR_TRACE_SPAN("core.classify.run");
  StageTiming timing;
  Stopwatch stage_clock;
  SNOR_ASSIGN_OR_RETURN(std::unique_ptr<MatchingClassifier> classifier,
                        MakeClassifier(spec, gallery, config_.seed));
  timing.extract_s = stage_clock.ElapsedSeconds();

  std::vector<ObjectClass> truth;
  std::vector<ObjectClass> predictions;
  std::vector<ItemError> errors;
  truth.reserve(inputs.size());
  predictions.reserve(inputs.size());

  static obs::Histogram& classify_latency_us =
      obs::MetricsRegistry::Global().histogram("core.classify.latency_us");
  static obs::Counter& classified_counter =
      obs::MetricsRegistry::Global().counter("core.classify.items");
  static obs::Counter& skipped_counter =
      obs::MetricsRegistry::Global().counter("core.classify.skipped");

  stage_clock.Reset();
  {
    SNOR_TRACE_SPAN("core.classify.match");
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const ImageFeatures& f = inputs[i];
      if (!f.valid && !f.status.ok() &&
          f.status.code() != StatusCode::kNotFound) {
        // Ingest-level failure (IO fault, unavailable frame): skip the
        // item and record it; it degrades coverage, not correctness.
        errors.push_back({static_cast<int>(i), "ingest", f.status});
        skipped_counter.Increment();
        continue;
      }
      if (!f.valid) {
        // Preprocess-level failure (no foreground component): keep the
        // paper's behaviour — fallback-classified and counted — but leave
        // a ledger entry so the impairment is visible.
        errors.push_back(
            {static_cast<int>(i), "preprocess",
             f.status.ok() ? Status::NotFound("no foreground component")
                           : f.status});
      }
      truth.push_back(f.label);
      const obs::ScopedLatencyUs item_latency(classify_latency_us);
      predictions.push_back(classifier->Classify(f));
    }
  }
  timing.match_s = stage_clock.ElapsedSeconds();
  classified_counter.Increment(predictions.size());

  stage_clock.Reset();
  EvalReport report;
  {
    SNOR_TRACE_SPAN("core.classify.score");
    report = Evaluate(truth, predictions);
  }
  timing.score_s = stage_clock.ElapsedSeconds();

  report.attempted = static_cast<int>(inputs.size());
  report.errors = std::move(errors);
  report.degraded_shape_only = classifier->degradation().shape_only;
  report.degraded_color_only = classifier->degradation().color_only;
  report.timing = timing;
  return report;
}

std::vector<ObjectClass> TruthLabels(
    const std::vector<ImageFeatures>& items) {
  std::vector<ObjectClass> labels;
  labels.reserve(items.size());
  for (const auto& f : items) labels.push_back(f.label);
  return labels;
}

}  // namespace snor
