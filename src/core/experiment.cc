#include "core/experiment.h"

#include "util/check.h"

namespace snor {

std::string ApproachSpec::DisplayName() const {
  switch (kind) {
    case Kind::kBaseline:
      return "Baseline";
    case Kind::kShape:
      switch (shape) {
        case ShapeMatchMethod::kI1:
          return "Shape only L1";
        case ShapeMatchMethod::kI2:
          return "Shape only L2";
        case ShapeMatchMethod::kI3:
          return "Shape only L3";
      }
      break;
    case Kind::kColor:
      switch (color) {
        case HistCompareMethod::kCorrelation:
          return "Color only Correlation";
        case HistCompareMethod::kChiSquare:
          return "Color only Chi-square";
        case HistCompareMethod::kIntersection:
          return "Color only Intersection";
        case HistCompareMethod::kHellinger:
          return "Color only Hellinger";
      }
      break;
    case Kind::kHybrid:
      switch (strategy) {
        case HybridStrategy::kWeightedSum:
          return "Shape+Color (weighted sum)";
        case HybridStrategy::kMicroAverage:
          return "Shape+Color (micro-avg)";
        case HybridStrategy::kMacroAverage:
          return "Shape+Color (macro-avg)";
      }
      break;
  }
  return "Unknown";
}

std::vector<ApproachSpec> Table2Approaches(double alpha, double beta) {
  std::vector<ApproachSpec> specs;
  {
    ApproachSpec s;
    s.kind = ApproachSpec::Kind::kBaseline;
    specs.push_back(s);
  }
  for (ShapeMatchMethod m : {ShapeMatchMethod::kI1, ShapeMatchMethod::kI2,
                             ShapeMatchMethod::kI3}) {
    ApproachSpec s;
    s.kind = ApproachSpec::Kind::kShape;
    s.shape = m;
    specs.push_back(s);
  }
  for (HistCompareMethod m :
       {HistCompareMethod::kCorrelation, HistCompareMethod::kChiSquare,
        HistCompareMethod::kIntersection, HistCompareMethod::kHellinger}) {
    ApproachSpec s;
    s.kind = ApproachSpec::Kind::kColor;
    s.color = m;
    specs.push_back(s);
  }
  for (HybridStrategy strat :
       {HybridStrategy::kWeightedSum, HybridStrategy::kMicroAverage,
        HybridStrategy::kMacroAverage}) {
    ApproachSpec s;
    s.kind = ApproachSpec::Kind::kHybrid;
    s.shape = ShapeMatchMethod::kI3;       // Paper's reported best combo.
    s.color = HistCompareMethod::kHellinger;
    s.strategy = strat;
    s.alpha = alpha;
    s.beta = beta;
    specs.push_back(s);
  }
  return specs;
}

std::unique_ptr<MatchingClassifier> MakeClassifier(
    const ApproachSpec& spec, std::vector<ImageFeatures> gallery,
    std::uint64_t baseline_seed) {
  switch (spec.kind) {
    case ApproachSpec::Kind::kBaseline:
      return std::make_unique<RandomBaselineClassifier>(std::move(gallery),
                                                        baseline_seed);
    case ApproachSpec::Kind::kShape:
      return std::make_unique<ShapeOnlyClassifier>(std::move(gallery),
                                                   spec.shape);
    case ApproachSpec::Kind::kColor:
      return std::make_unique<ColorOnlyClassifier>(std::move(gallery),
                                                   spec.color);
    case ApproachSpec::Kind::kHybrid:
      return std::make_unique<HybridClassifier>(std::move(gallery),
                                                spec.shape, spec.color,
                                                spec.alpha, spec.beta,
                                                spec.strategy);
  }
  SNOR_CHECK_MSG(false, "unknown approach kind");
  return nullptr;
}

ExperimentContext::ExperimentContext(const ExperimentConfig& config)
    : config_(config) {}

FeatureOptions ExperimentContext::FeatureOptionsFor(
    bool white_background) const {
  FeatureOptions options;
  options.preprocess.white_background = white_background;
  options.hist_bins = config_.hist_bins;
  return options;
}

const Dataset& ExperimentContext::Sns1() {
  if (!sns1_) {
    DatasetOptions opts;
    opts.canvas_size = config_.canvas_size;
    opts.seed = config_.seed;
    sns1_ = MakeShapeNetSet1(opts);
  }
  return *sns1_;
}

const Dataset& ExperimentContext::Sns2() {
  if (!sns2_) {
    DatasetOptions opts;
    opts.canvas_size = config_.canvas_size;
    opts.seed = config_.seed + 1;
    sns2_ = MakeShapeNetSet2(opts);
  }
  return *sns2_;
}

const Dataset& ExperimentContext::Nyu() {
  if (!nyu_) {
    DatasetOptions opts;
    opts.canvas_size = config_.canvas_size;
    opts.seed = config_.seed + 2;
    opts.sample_fraction = config_.nyu_fraction;
    nyu_ = MakeNyuSet(opts);
  }
  return *nyu_;
}

const std::vector<ImageFeatures>& ExperimentContext::Sns1Features() {
  if (!sns1_features_) {
    sns1_features_ = ComputeFeatures(Sns1(), FeatureOptionsFor(true));
  }
  return *sns1_features_;
}

const std::vector<ImageFeatures>& ExperimentContext::Sns2Features() {
  if (!sns2_features_) {
    sns2_features_ = ComputeFeatures(Sns2(), FeatureOptionsFor(true));
  }
  return *sns2_features_;
}

const std::vector<ImageFeatures>& ExperimentContext::NyuFeatures() {
  if (!nyu_features_) {
    nyu_features_ = ComputeFeatures(Nyu(), FeatureOptionsFor(false));
  }
  return *nyu_features_;
}

EvalReport ExperimentContext::RunApproach(
    const ApproachSpec& spec, const std::vector<ImageFeatures>& inputs,
    const std::vector<ImageFeatures>& gallery) {
  auto classifier = MakeClassifier(spec, gallery, config_.seed);
  const std::vector<ObjectClass> predictions = classifier->ClassifyAll(inputs);
  return Evaluate(TruthLabels(inputs), predictions);
}

std::vector<ObjectClass> TruthLabels(
    const std::vector<ImageFeatures>& items) {
  std::vector<ObjectClass> labels;
  labels.reserve(items.size());
  for (const auto& f : items) labels.push_back(f.label);
  return labels;
}

}  // namespace snor
