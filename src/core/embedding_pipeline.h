#ifndef SNOR_CORE_EMBEDDING_PIPELINE_H_
#define SNOR_CORE_EMBEDDING_PIPELINE_H_

#include <memory>
#include <vector>

#include "core/evaluation.h"
#include "data/dataset.h"
#include "nn/embedding.h"

namespace snor {

/// \brief Configuration for the triplet-embedding pipeline — the paper's
/// proposed future-work modification of the similarity architecture
/// (conclusion: "modify the tested architecture ... to improve its
/// flexibility", citing triplet networks).
struct EmbeddingPipelineConfig {
  EmbeddingModelConfig model;
  int triplets_per_epoch = 256;
  int batch_size = 16;
  int max_epochs = 8;
  double margin = 0.2;
  double learning_rate = 1e-3;
  std::uint64_t seed = 99;
};

/// \brief Per-epoch triplet-training statistics.
struct TripletEpochStats {
  int epoch = 0;
  double loss = 0.0;
  /// Fraction of sampled triplets violating the margin.
  double active_fraction = 0.0;
};

/// \brief Trains an L2-normalized embedding with triplet loss and
/// classifies by nearest gallery embedding.
class EmbeddingPipeline {
 public:
  /// A stored gallery embedding.
  struct GalleryEntry {
    std::vector<float> embedding;
    ObjectClass label = ObjectClass::kChair;
  };

  explicit EmbeddingPipeline(const EmbeddingPipelineConfig& config);

  /// Fits the embedding on a labelled dataset (anchor/positive share a
  /// class; negative differs). Returns per-epoch stats.
  std::vector<TripletEpochStats> Train(const Dataset& train_set);

  /// Embeds and stores a reference gallery.
  void BuildGallery(const Dataset& gallery);

  /// Nearest-gallery-embedding prediction for one image. The gallery
  /// must have been built.
  ObjectClass Classify(const ImageU8& image);

  /// Classifies a whole dataset and evaluates it.
  EvalReport EvaluateOn(const Dataset& inputs);

  EmbeddingModel& model() { return *model_; }
  const std::vector<GalleryEntry>& gallery() const { return gallery_; }

 private:
  Tensor ToInput(const ImageU8& image) const;

  EmbeddingPipelineConfig config_;
  std::unique_ptr<EmbeddingModel> model_;
  std::vector<GalleryEntry> gallery_;
};

}  // namespace snor

#endif  // SNOR_CORE_EMBEDDING_PIPELINE_H_
