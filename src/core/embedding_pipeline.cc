#include "core/embedding_pipeline.h"

#include <algorithm>
#include <cmath>

#include "img/resize.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "util/check.h"
#include "util/rng.h"

namespace snor {

EmbeddingPipeline::EmbeddingPipeline(const EmbeddingPipelineConfig& config)
    : config_(config),
      model_(std::make_unique<EmbeddingModel>(config.model)) {}

Tensor EmbeddingPipeline::ToInput(const ImageU8& image) const {
  return ImageToTensor(Resize(image, config_.model.input_width,
                              config_.model.input_height));
}

std::vector<TripletEpochStats> EmbeddingPipeline::Train(
    const Dataset& train_set) {
  SNOR_CHECK_GE(train_set.size(), 4u);

  // Bucket item indices by class; keep classes with >= 2 examples.
  std::vector<std::vector<int>> by_class(kNumClasses);
  for (std::size_t i = 0; i < train_set.size(); ++i) {
    by_class[static_cast<std::size_t>(
                 ClassIndex(train_set.items[i].label))]
        .push_back(static_cast<int>(i));
  }
  std::vector<int> usable;
  for (int c = 0; c < kNumClasses; ++c) {
    if (by_class[static_cast<std::size_t>(c)].size() >= 2) usable.push_back(c);
  }
  SNOR_CHECK_GE(usable.size(), 2u);

  // Pre-resize all items once.
  std::vector<Tensor> inputs;
  inputs.reserve(train_set.size());
  for (const auto& item : train_set.items) {
    inputs.push_back(ToInput(item.image));
  }

  // Shared-weight branches for anchor / positive / negative.
  auto anchor_net = model_->CloneShared();
  auto positive_net = model_->CloneShared();
  auto negative_net = model_->CloneShared();
  const auto params = model_->Params();
  Adam optimizer(config_.learning_rate);
  Rng rng(config_.seed);

  std::vector<TripletEpochStats> history;
  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    double loss_sum = 0.0;
    double active_sum = 0.0;
    int batches = 0;
    for (int start = 0; start < config_.triplets_per_epoch;
         start += config_.batch_size) {
      const int n = std::min(config_.batch_size,
                             config_.triplets_per_epoch - start);
      std::vector<const Tensor*> a_items, p_items, n_items;
      for (int i = 0; i < n; ++i) {
        const int cls = usable[rng.Index(usable.size())];
        const auto& bucket = by_class[static_cast<std::size_t>(cls)];
        const int ai = bucket[rng.Index(bucket.size())];
        int pi = bucket[rng.Index(bucket.size())];
        while (pi == ai) pi = bucket[rng.Index(bucket.size())];
        int other = usable[rng.Index(usable.size())];
        while (other == cls) other = usable[rng.Index(usable.size())];
        const auto& neg_bucket = by_class[static_cast<std::size_t>(other)];
        const int ni = neg_bucket[rng.Index(neg_bucket.size())];
        a_items.push_back(&inputs[static_cast<std::size_t>(ai)]);
        p_items.push_back(&inputs[static_cast<std::size_t>(pi)]);
        n_items.push_back(&inputs[static_cast<std::size_t>(ni)]);
      }

      Optimizer::ZeroGrad(params);
      const Tensor ea = anchor_net->Embed(StackBatch(a_items), true);
      const Tensor ep = positive_net->Embed(StackBatch(p_items), true);
      const Tensor en = negative_net->Embed(StackBatch(n_items), true);
      const TripletLossResult result =
          TripletLoss(ea, ep, en, config_.margin);
      loss_sum += result.loss;
      active_sum += result.active_fraction;
      ++batches;
      anchor_net->Backward(result.grad_anchor);
      positive_net->Backward(result.grad_positive);
      negative_net->Backward(result.grad_negative);
      optimizer.Step(params);
    }
    TripletEpochStats stats;
    stats.epoch = epoch;
    stats.loss = loss_sum / batches;
    stats.active_fraction = active_sum / batches;
    history.push_back(stats);
  }
  return history;
}

void EmbeddingPipeline::BuildGallery(const Dataset& gallery) {
  gallery_.clear();
  for (const auto& item : gallery.items) {
    const Tensor input = ToInput(item.image);
    const Tensor e = model_->Embed(StackBatch({&input}), false);
    GalleryEntry entry;
    entry.embedding.assign(e.data(), e.data() + e.size());
    entry.label = item.label;
    gallery_.push_back(std::move(entry));
  }
}

ObjectClass EmbeddingPipeline::Classify(const ImageU8& image) {
  SNOR_CHECK(!gallery_.empty());
  const Tensor input = ToInput(image);
  const Tensor e = model_->Embed(StackBatch({&input}), false);
  double best = 1e300;
  ObjectClass best_label = gallery_.front().label;
  for (const auto& entry : gallery_) {
    double d = 0.0;
    for (std::size_t j = 0; j < entry.embedding.size(); ++j) {
      const double diff = static_cast<double>(e[j]) - entry.embedding[j];
      d += diff * diff;
    }
    if (d < best) {
      best = d;
      best_label = entry.label;
    }
  }
  return best_label;
}

EvalReport EmbeddingPipeline::EvaluateOn(const Dataset& inputs) {
  std::vector<ObjectClass> truth;
  std::vector<ObjectClass> predicted;
  for (const auto& item : inputs.items) {
    truth.push_back(item.label);
    predicted.push_back(Classify(item.image));
  }
  return Evaluate(truth, predicted);
}

}  // namespace snor
