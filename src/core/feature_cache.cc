#include "core/feature_cache.h"

#include "img/color.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/parallel.h"
#include "util/string_util.h"

namespace snor {

std::vector<ImageFeatures> ComputeFeatures(const Dataset& dataset,
                                           const FeatureOptions& options) {
  SNOR_TRACE_SPAN("core.feature_cache.build");
  static obs::Counter& items_counter =  // GUARDED_BY(atomic)
      obs::MetricsRegistry::Global().counter("core.feature_cache.items");
  static obs::Counter& invalid_counter =  // GUARDED_BY(atomic)
      obs::MetricsRegistry::Global().counter("core.feature_cache.invalid");
  items_counter.Increment(dataset.size());

  std::vector<ImageFeatures> features(dataset.size());  // GUARDED_BY(per_worker_slot)

  const PreprocessOptions& preprocess = options.preprocess;

  // Items are independent; parallel extraction is bit-identical to the
  // sequential order because each worker writes only its own slot.
  ParallelFor(dataset.size(), [&](std::size_t idx) {
    const LabeledImage& item = dataset.items[idx];
    ImageFeatures f;
    f.label = item.label;
    f.model_id = item.model_id;
    f.histogram = ColorHistogram(options.hist_bins);

    // Ingestion is the stage where a robot reads a frame off a sensor or
    // disk; an armed io-read fault marks the item unavailable (skipped
    // and recorded by batch evaluation) instead of killing the batch.
    const Status ingest = InjectFault(
        FaultPoint::kIoRead, StrFormat("ingest item %zu", idx));
    if (!ingest.ok()) {
      f.status = ingest;
      invalid_counter.Increment();
      features[idx] = std::move(f);
      return;
    }

    auto result = Preprocess(item.image, preprocess);
    if (!result.ok()) f.status = result.status();
    if (result.ok()) {
      SNOR_TRACE_SPAN("features.histogram.compute");
      const PreprocessResult& pre = result.value();
      f.hu = pre.hu;
      f.valid = true;

      // The histogram may be computed in HSV, but background detection
      // always happens in the original RGB crop.
      const ImageU8& rgb_crop = pre.cropped_rgb;
      const ImageU8 hist_crop =
          options.use_hsv ? RgbToHsv(rgb_crop) : rgb_crop;
      if (options.mask_histogram) {
        // Object-only histogram: exclude pixels matching the background.
        const std::uint8_t bg = preprocess.white_background ? 255 : 0;
        ImageU8 mask(rgb_crop.width(), rgb_crop.height(), 1, 0);
        for (int y = 0; y < rgb_crop.height(); ++y) {
          for (int x = 0; x < rgb_crop.width(); ++x) {
            const bool is_bg = rgb_crop.at(y, x, 0) == bg &&
                               rgb_crop.at(y, x, 1) == bg &&
                               rgb_crop.at(y, x, 2) == bg;
            if (!is_bg) mask.at(y, x) = 255;
          }
        }
        f.histogram =
            ColorHistogram::Compute(hist_crop, &mask, options.hist_bins);
      } else {
        f.histogram =
            ColorHistogram::Compute(hist_crop, nullptr, options.hist_bins);
      }
      f.histogram.NormalizeL1();
    }
    if (!f.valid) invalid_counter.Increment();
    features[idx] = std::move(f);
  });
  return features;
}

}  // namespace snor
