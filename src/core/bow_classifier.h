#ifndef SNOR_CORE_BOW_CLASSIFIER_H_
#define SNOR_CORE_BOW_CLASSIFIER_H_

#include <vector>

#include "data/dataset.h"
#include "features/kmeans.h"
#include "features/sift.h"
#include "features/surf.h"

namespace snor {

/// \brief Bag-of-visual-words options.
struct BowOptions {
  /// Vocabulary size (visual words).
  int vocabulary_size = 64;
  /// Use SURF instead of SIFT descriptors.
  bool use_surf = false;
  SiftOptions sift;
  SurfOptions surf;
  std::uint64_t seed = 2048;
};

/// \brief Bag-of-visual-words classifier: a natural aggregation extension
/// of the paper's §3.3 descriptor pipelines. A k-means vocabulary is
/// learned over all gallery keypoint descriptors; every view becomes an
/// L1-normalized word histogram; inputs are classified as the view with
/// the closest histogram (cosine similarity).
class BowClassifier {
 public:
  /// Builds the vocabulary and the per-view word histograms.
  BowClassifier(const Dataset& gallery, const BowOptions& options);

  /// Predicts the class of one image.
  ObjectClass Classify(const ImageU8& image) const;

  /// Predicts every item of a dataset.
  std::vector<ObjectClass> ClassifyAll(const Dataset& inputs) const;

  std::size_t vocabulary_size() const { return vocabulary_.size(); }
  std::size_t num_gallery_views() const { return labels_.size(); }

  /// Word histogram for an arbitrary image (exposed for tests).
  std::vector<float> WordHistogram(const ImageU8& image) const;

 private:
  std::vector<FloatDescriptor> Extract(const ImageU8& image) const;
  std::vector<float> HistogramOf(
      const std::vector<FloatDescriptor>& descriptors) const;

  BowOptions options_;
  std::vector<FloatDescriptor> vocabulary_;
  std::vector<std::vector<float>> view_histograms_;
  std::vector<ObjectClass> labels_;
};

}  // namespace snor

#endif  // SNOR_CORE_BOW_CLASSIFIER_H_
