#include "core/xcorr_pipeline.h"

namespace snor {

XCorrPipeline::XCorrPipeline(const XCorrPipelineConfig& config)
    : config_(config), model_(config.model) {}

std::vector<EpochStats> XCorrPipeline::Train(const Dataset& train_set) {
  const auto pairs =
      MakeBalancedPairSet(train_set, config_.train_pairs,
                          config_.train_positive_fraction, config_.pair_seed);
  const PairTensorDataset tensors =
      PairsToTensors(pairs, train_set, train_set, config_.model.input_width,
                     config_.model.input_height);
  XCorrTrainer trainer(&model_, config_.train);
  return trainer.Fit(tensors);
}

BinaryReport XCorrPipeline::EvaluatePairs(
    const std::vector<PairExample>& pairs, const Dataset& query,
    const Dataset& gallery) {
  const PairTensorDataset tensors =
      PairsToTensors(pairs, query, gallery, config_.model.input_width,
                     config_.model.input_height);
  const std::vector<int> predictions = PredictPairs(&model_, tensors);
  return EvaluateBinary(tensors.labels, predictions);
}

}  // namespace snor
