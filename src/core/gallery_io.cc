#include "core/gallery_io.h"

#include <cstring>
#include <fstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace snor {
namespace {

constexpr char kMagic[8] = {'S', 'N', 'O', 'R', 'G', '0', '0', '1'};

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveFeatures(const std::vector<ImageFeatures>& features,
                    const std::string& path) {
  SNOR_TRACE_SPAN("core.gallery.save");
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, static_cast<std::uint32_t>(features.size()));
  for (const auto& f : features) {
    WritePod(out, static_cast<std::int32_t>(ClassIndex(f.label)));
    WritePod(out, static_cast<std::int32_t>(f.model_id));
    WritePod(out, static_cast<std::uint8_t>(f.valid ? 1 : 0));
    for (double h : f.hu) WritePod(out, h);
    WritePod(out, static_cast<std::int32_t>(f.histogram.bins_per_channel()));
    const auto& bins = f.histogram.bins();
    out.write(reinterpret_cast<const char*>(bins.data()),
              static_cast<std::streamsize>(bins.size() * sizeof(double)));
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<ImageFeatures>> LoadFeatures(const std::string& path) {
  SNOR_TRACE_SPAN("core.gallery.load");
  static obs::Histogram& load_latency_us =
      obs::MetricsRegistry::Global().histogram("core.gallery.load_latency_us");
  const obs::ScopedLatencyUs latency(load_latency_us);
  static obs::Counter& entries_counter =
      obs::MetricsRegistry::Global().counter("core.gallery.entries_loaded");
  SNOR_RETURN_NOT_OK(
      InjectFault(FaultPoint::kIoRead, "LoadFeatures " + path));
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("bad gallery-file magic: " + path);
  }
  std::uint32_t count = 0;
  if (!ReadPod(in, &count)) return Status::IoError("truncated header");
  if (count > 10'000'000u) {
    return Status::IoError("implausible gallery size");
  }

  std::vector<ImageFeatures> features;
  features.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ImageFeatures f;
    std::int32_t label = 0;
    std::int32_t model_id = 0;
    std::uint8_t valid = 0;
    if (!ReadPod(in, &label) || !ReadPod(in, &model_id) ||
        !ReadPod(in, &valid)) {
      return Status::IoError("truncated gallery entry");
    }
    if (label < 0 || label >= kNumClasses) {
      return Status::IoError(StrFormat("bad class index %d", label));
    }
    f.label = ClassFromIndex(label);
    f.model_id = model_id;
    f.valid = valid != 0;
    for (double& h : f.hu) {
      if (!ReadPod(in, &h)) return Status::IoError("truncated Hu moments");
    }
    std::int32_t bins_per_channel = 0;
    if (!ReadPod(in, &bins_per_channel) || bins_per_channel <= 0 ||
        bins_per_channel > 256) {
      return Status::IoError("bad histogram bin count");
    }
    f.histogram = ColorHistogram(bins_per_channel);
    auto& bins = f.histogram.bins();
    in.read(reinterpret_cast<char*>(bins.data()),
            static_cast<std::streamsize>(bins.size() * sizeof(double)));
    if (!in) return Status::IoError("truncated histogram payload");
    if (FaultFires(FaultPoint::kTruncatedFile)) {
      return Status::IoError(
          StrFormat("injected truncation after entry %u: %s", i,
                    path.c_str()));
    }
    features.push_back(std::move(f));
  }
  entries_counter.Increment(features.size());
  return features;
}

}  // namespace snor
