#ifndef SNOR_CORE_XCORR_PIPELINE_H_
#define SNOR_CORE_XCORR_PIPELINE_H_

#include <vector>

#include "core/evaluation.h"
#include "data/pairs.h"
#include "nn/model.h"
#include "nn/trainer.h"

namespace snor {

/// \brief End-to-end configuration of the paper's fifth pipeline (§3.4):
/// train the Normalized-X-Corr pair classifier on SNS2-derived pairs, then
/// evaluate it as a binary similar/dissimilar classifier on held-out pair
/// sets. Defaults are CPU-scaled (see DESIGN.md substitution table); the
/// paper's exact pair counts are used by bench/table4_xcorr.
struct XCorrPipelineConfig {
  XCorrModelConfig model;
  XCorrTrainOptions train;
  /// Number of training pairs sampled from the training dataset.
  int train_pairs = 1500;
  /// Fraction of "similar" training pairs (paper: 52%).
  double train_positive_fraction = 0.52;
  std::uint64_t pair_seed = 31;
};

/// \brief Trains and evaluates the Normalized-X-Corr pair classifier.
class XCorrPipeline {
 public:
  explicit XCorrPipeline(const XCorrPipelineConfig& config);

  /// Builds the training pair set from `train_set` (the paper uses SNS2)
  /// and fits the model. Returns per-epoch stats.
  std::vector<EpochStats> Train(const Dataset& train_set);

  /// Evaluates the trained model on explicit pairs across two datasets
  /// (`gallery` may equal `query`).
  BinaryReport EvaluatePairs(const std::vector<PairExample>& pairs,
                             const Dataset& query, const Dataset& gallery);

  XCorrModel& model() { return model_; }
  const XCorrPipelineConfig& config() const { return config_; }

 private:
  XCorrPipelineConfig config_;
  XCorrModel model_;
};

}  // namespace snor

#endif  // SNOR_CORE_XCORR_PIPELINE_H_
