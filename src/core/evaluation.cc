#include "core/evaluation.h"

#include "util/check.h"

namespace snor {
namespace {

double SafeDiv(double num, double den) { return den > 0 ? num / den : 0.0; }

double F1(double precision, double recall) {
  return precision + recall > 0
             ? 2.0 * precision * recall / (precision + recall)
             : 0.0;
}

}  // namespace

EvalReport Evaluate(const std::vector<ObjectClass>& truth,
                    const std::vector<ObjectClass>& predicted) {
  SNOR_CHECK_EQ(truth.size(), predicted.size());
  EvalReport report;
  report.total = static_cast<int>(truth.size());
  report.attempted = report.total;

  int correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const int t = ClassIndex(truth[i]);
    const int p = ClassIndex(predicted[i]);
    ++report.confusion[static_cast<std::size_t>(t)]
                      [static_cast<std::size_t>(p)];
    if (t == p) ++correct;
  }
  report.cumulative_accuracy = SafeDiv(correct, report.total);

  for (int c = 0; c < kNumClasses; ++c) {
    ClassMetrics& m = report.per_class[static_cast<std::size_t>(c)];
    int support = 0;
    int predicted_count = 0;
    for (int other = 0; other < kNumClasses; ++other) {
      support += report.confusion[static_cast<std::size_t>(c)]
                                 [static_cast<std::size_t>(other)];
      predicted_count += report.confusion[static_cast<std::size_t>(other)]
                                         [static_cast<std::size_t>(c)];
    }
    m.support = support;
    m.predicted_count = predicted_count;
    m.true_positives = report.confusion[static_cast<std::size_t>(c)]
                                       [static_cast<std::size_t>(c)];
    m.recall = SafeDiv(m.true_positives, support);
    m.precision_paper = SafeDiv(m.true_positives, report.total);
    m.f1_paper = F1(m.precision_paper, m.recall);
    m.precision_std = SafeDiv(m.true_positives, predicted_count);
    m.f1_std = F1(m.precision_std, m.recall);
  }
  return report;
}

BinaryReport EvaluateBinary(const std::vector<int>& truth,
                            const std::vector<int>& predicted) {
  SNOR_CHECK_EQ(truth.size(), predicted.size());
  int tp = 0, fp = 0, tn = 0, fn = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 1) {
      if (predicted[i] == 1) {
        ++tp;
      } else {
        ++fn;
      }
    } else {
      if (predicted[i] == 1) {
        ++fp;
      } else {
        ++tn;
      }
    }
  }
  BinaryReport report;
  report.similar.support = tp + fn;
  report.similar.precision = SafeDiv(tp, tp + fp);
  report.similar.recall = SafeDiv(tp, tp + fn);
  report.similar.f1 = F1(report.similar.precision, report.similar.recall);
  report.dissimilar.support = tn + fp;
  report.dissimilar.precision = SafeDiv(tn, tn + fn);
  report.dissimilar.recall = SafeDiv(tn, tn + fp);
  report.dissimilar.f1 =
      F1(report.dissimilar.precision, report.dissimilar.recall);
  report.accuracy =
      SafeDiv(tp + tn, static_cast<double>(truth.size()));
  return report;
}

}  // namespace snor
