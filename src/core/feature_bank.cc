#include "core/feature_bank.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <iterator>
#include <map>
#include <utility>

#include "geometry/moments.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/fault.h"

namespace snor {
namespace {

constexpr double kHuge = kUnusableScore;

// Rounds a row width up to a whole number of 64-byte cache lines of the
// element type.
std::size_t PadStride(std::size_t logical, std::size_t elem_size) {
  const std::size_t lane = 64 / elem_size;
  return (logical + lane - 1) / lane * lane;
}

}  // namespace

FeatureBank PackFeatureBank(const std::vector<ImageFeatures>& gallery) {
  SNOR_TRACE_SPAN("core.bank.pack");
  FeatureBank bank;
  bank.num_views = gallery.size();
  if (gallery.empty()) return bank;

  bank.bins_per_channel = gallery.front().histogram.bins_per_channel();
  bank.hist_bins = gallery.front().histogram.num_bins();
  bank.hist_stride = PadStride(bank.hist_bins, sizeof(double));

  bank.hu.assign(bank.num_views * FeatureBank::kHuStride, 0.0);
  bank.hist.assign(bank.num_views * bank.hist_stride, 0.0);
  bank.valid.resize(bank.num_views);
  bank.labels.resize(bank.num_views);
  bank.model_ids.resize(bank.num_views);

  for (std::size_t i = 0; i < bank.num_views; ++i) {
    const ImageFeatures& view = gallery[i];
    SNOR_CHECK_EQ(view.histogram.num_bins(), bank.hist_bins);
    // memcpy, not arithmetic: bin values and moments land in the bank
    // bit-for-bit (NaNs included — poisoned views must stay poisoned).
    std::memcpy(bank.hu.data() + i * FeatureBank::kHuStride, view.hu.data(),
                7 * sizeof(double));
    std::memcpy(bank.hist.data() + i * bank.hist_stride,
                view.histogram.bins().data(), bank.hist_bins * sizeof(double));
    bank.valid[i] = view.valid ? 1 : 0;
    bank.labels[i] = view.label;
    bank.model_ids[i] = view.model_id;
  }

  static obs::Gauge& views_gauge =
      obs::MetricsRegistry::Global().gauge("core.bank.views");
  static obs::Gauge& bytes_gauge =
      obs::MetricsRegistry::Global().gauge("core.bank.bytes");
  views_gauge.Set(static_cast<double>(bank.num_views));
  bytes_gauge.Set(static_cast<double>(
      (bank.hu.size() + bank.hist.size()) * sizeof(double) +
      bank.valid.size() + bank.labels.size() * sizeof(ObjectClass) +
      bank.model_ids.size() * sizeof(int)));
  return bank;
}

std::vector<ImageFeatures> UnpackFeatureBank(const FeatureBank& bank) {
  std::vector<ImageFeatures> gallery(bank.num_views);
  for (std::size_t i = 0; i < bank.num_views; ++i) {
    ImageFeatures& view = gallery[i];
    view.label = bank.labels[i];
    view.model_id = bank.model_ids[i];
    view.valid = bank.IsValid(i);
    std::memcpy(view.hu.data(), bank.HuRow(i), 7 * sizeof(double));
    view.histogram = ColorHistogram(bank.bins_per_channel);
    std::memcpy(view.histogram.bins().data(), bank.HistRow(i),
                bank.hist_bins * sizeof(double));
  }
  return gallery;
}

PartialBest BankShapeArgminOverRange(const ImageFeatures& input,
                                     const FeatureBank& bank,
                                     std::size_t begin, std::size_t end,
                                     ShapeMatchMethod method) {
  PartialBest partial;
  partial.score = kHuge;
  for (std::size_t i = begin; i < end; ++i) {
    if (!bank.IsValid(i)) continue;
    const double d = MaybePoisonScore(
        MatchShapesRaw(input.hu.data(), bank.HuRow(i), method));
    if (!std::isfinite(d)) continue;  // Poisoned view: skip, don't crash.
    if (d < partial.score) {
      partial.score = d;
      partial.label = bank.labels[i];
      partial.found = true;
    }
  }
  return partial;
}

PartialBest BankColorArgbestOverRange(const ImageFeatures& input,
                                      const FeatureBank& bank,
                                      std::size_t begin, std::size_t end,
                                      HistCompareMethod method) {
  SNOR_CHECK_EQ(input.histogram.num_bins(), bank.hist_bins);
  const double* q = input.histogram.bins().data();
  const bool maximize = IsSimilarityMetric(method);
  PartialBest partial;
  partial.score = maximize ? -kHuge : kHuge;
  for (std::size_t i = begin; i < end; ++i) {
    if (!bank.IsValid(i)) continue;
    const double c =
        CompareHistogramsRaw(q, bank.HistRow(i), bank.hist_bins, method);
    if (!std::isfinite(c)) continue;  // Corrupt view: skip, don't crash.
    const bool better = maximize ? c > partial.score : c < partial.score;
    if (better) {
      partial.score = c;
      partial.label = bank.labels[i];
      partial.found = true;
    }
  }
  return partial;
}

void BankHybridScoresOverRange(
    const ImageFeatures& input, const FeatureBank& bank, std::size_t begin,
    std::size_t end, ShapeMatchMethod shape_method,
    HistCompareMethod color_method, bool use_shape, bool use_color,
    std::vector<double>* shape_scores, std::vector<double>* color_scores,
    std::size_t* shape_usable, std::size_t* color_usable) {
  if (use_color) SNOR_CHECK_EQ(input.histogram.num_bins(), bank.hist_bins);
  const double* q_hist = input.histogram.bins().data();
  for (std::size_t i = begin; i < end; ++i) {
    if (!bank.IsValid(i)) continue;
    if (use_shape) {
      const double s = MaybePoisonScore(
          MatchShapesRaw(input.hu.data(), bank.HuRow(i), shape_method));
      if (std::isfinite(s) && s < kHuge) {
        (*shape_scores)[i] = s;
        ++*shape_usable;
      }
    }
    if (use_color) {
      const double c = HybridColorDistanceRaw(q_hist, bank.HistRow(i),
                                              bank.hist_bins, color_method);
      if (std::isfinite(c)) {
        (*color_scores)[i] = c;
        ++*color_usable;
      }
    }
  }
}

PartialBest BankShapeArgminOverCandidates(const ImageFeatures& input,
                                          const FeatureBank& bank,
                                          const std::vector<int>& candidates,
                                          ShapeMatchMethod method) {
  PartialBest partial;
  partial.score = kHuge;
  for (const int idx : candidates) {
    const auto i = static_cast<std::size_t>(idx);
    if (!bank.IsValid(i)) continue;
    const double d = MaybePoisonScore(
        MatchShapesRaw(input.hu.data(), bank.HuRow(i), method));
    if (!std::isfinite(d)) continue;
    if (d < partial.score) {
      partial.score = d;
      partial.label = bank.labels[i];
      partial.found = true;
    }
  }
  return partial;
}

PartialBest BankColorArgbestOverCandidates(const ImageFeatures& input,
                                           const FeatureBank& bank,
                                           const std::vector<int>& candidates,
                                           HistCompareMethod method) {
  SNOR_CHECK_EQ(input.histogram.num_bins(), bank.hist_bins);
  const double* q = input.histogram.bins().data();
  const bool maximize = IsSimilarityMetric(method);
  PartialBest partial;
  partial.score = maximize ? -kHuge : kHuge;
  for (const int idx : candidates) {
    const auto i = static_cast<std::size_t>(idx);
    if (!bank.IsValid(i)) continue;
    const double c =
        CompareHistogramsRaw(q, bank.HistRow(i), bank.hist_bins, method);
    if (!std::isfinite(c)) continue;
    const bool better = maximize ? c > partial.score : c < partial.score;
    if (better) {
      partial.score = c;
      partial.label = bank.labels[i];
      partial.found = true;
    }
  }
  return partial;
}

void BankHybridScoresOverCandidates(
    const ImageFeatures& input, const FeatureBank& bank,
    const std::vector<int>& candidates, ShapeMatchMethod shape_method,
    HistCompareMethod color_method, bool use_shape, bool use_color,
    std::vector<double>* shape_scores, std::vector<double>* color_scores,
    std::size_t* shape_usable, std::size_t* color_usable) {
  if (use_color) SNOR_CHECK_EQ(input.histogram.num_bins(), bank.hist_bins);
  const double* q_hist = input.histogram.bins().data();
  for (const int idx : candidates) {
    const auto i = static_cast<std::size_t>(idx);
    if (!bank.IsValid(i)) continue;
    if (use_shape) {
      const double s = MaybePoisonScore(
          MatchShapesRaw(input.hu.data(), bank.HuRow(i), shape_method));
      if (std::isfinite(s) && s < kHuge) {
        (*shape_scores)[i] = s;
        ++*shape_usable;
      }
    }
    if (use_color) {
      const double c = HybridColorDistanceRaw(q_hist, bank.HistRow(i),
                                              bank.hist_bins, color_method);
      if (std::isfinite(c)) {
        (*color_scores)[i] = c;
        ++*color_usable;
      }
    }
  }
}

ObjectClass BankHybridArgminLabel(const std::vector<double>& theta,
                                  const FeatureBank& bank,
                                  HybridStrategy strategy,
                                  ObjectClass fallback) {
  switch (strategy) {
    case HybridStrategy::kWeightedSum: {
      double best = kHuge;
      ObjectClass best_label = fallback;
      for (std::size_t i = 0; i < theta.size(); ++i) {
        if (theta[i] < best) {
          best = theta[i];
          best_label = bank.labels[i];
        }
      }
      return best_label;
    }
    case HybridStrategy::kMicroAverage: {
      // Average theta per model (class, model_id), argmin over models.
      std::map<std::pair<int, int>, std::pair<double, int>> acc;
      for (std::size_t i = 0; i < theta.size(); ++i) {
        if (theta[i] >= kHuge) continue;
        auto& entry = acc[{ClassIndex(bank.labels[i]), bank.model_ids[i]}];
        entry.first += theta[i];
        entry.second += 1;
      }
      double best = kHuge;
      ObjectClass best_label = fallback;
      for (const auto& [key, entry] : acc) {
        const double mean = entry.first / entry.second;
        if (mean < best) {
          best = mean;
          best_label = ClassFromIndex(key.first);
        }
      }
      return best_label;
    }
    case HybridStrategy::kMacroAverage: {
      std::array<double, kNumClasses> sums{};
      std::array<int, kNumClasses> counts{};
      for (std::size_t i = 0; i < theta.size(); ++i) {
        if (theta[i] >= kHuge) continue;
        const auto c = static_cast<std::size_t>(ClassIndex(bank.labels[i]));
        sums[c] += theta[i];
        ++counts[c];
      }
      double best = kHuge;
      ObjectClass best_label = fallback;
      for (int c = 0; c < kNumClasses; ++c) {
        if (counts[static_cast<std::size_t>(c)] == 0) continue;
        const double mean = sums[static_cast<std::size_t>(c)] /
                            counts[static_cast<std::size_t>(c)];
        if (mean < best) {
          best = mean;
          best_label = ClassFromIndex(c);
        }
      }
      return best_label;
    }
  }
  return fallback;
}

FloatDescriptorBank PackFloatDescriptors(
    const std::vector<FloatDescriptor>& descriptors) {
  FloatDescriptorBank bank;
  bank.count = descriptors.size();
  if (descriptors.empty()) return bank;
  bank.dim = descriptors.front().size();
  bank.stride = PadStride(bank.dim, sizeof(float));
  bank.data.assign(bank.count * bank.stride, 0.0f);
  for (std::size_t i = 0; i < bank.count; ++i) {
    SNOR_CHECK_EQ(descriptors[i].size(), bank.dim);
    std::memcpy(bank.data.data() + i * bank.stride, descriptors[i].data(),
                bank.dim * sizeof(float));
  }
  return bank;
}

void BankFloatDistances(const FloatDescriptorBank& bank,
                        const FloatDescriptor& query, FloatNorm norm,
                        float* out) {
  SNOR_CHECK_EQ(query.size(), bank.dim);
  for (std::size_t i = 0; i < bank.count; ++i) {
    out[i] = FloatDistanceRaw(query.data(), bank.Row(i), bank.dim, norm);
  }
}

void BankFloatSquaredL2(const FloatDescriptorBank& bank,
                        const FloatDescriptor& query, float* out) {
  SNOR_CHECK_EQ(query.size(), bank.dim);
  constexpr std::size_t kLanes = 8;
  const float* q = query.data();
  const std::size_t n = bank.dim;
  for (std::size_t r = 0; r < bank.count; ++r) {
    const float* row = bank.Row(r);
    // Eight independent accumulator lanes break the serial dependence
    // chain so the reduction vectorizes without -ffast-math.
    float lanes[kLanes] = {};
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        const float d = q[i + l] - row[i + l];
        lanes[l] += d * d;
      }
    }
    float tail = 0.0f;
    for (; i < n; ++i) {
      const float d = q[i] - row[i];
      tail += d * d;
    }
    out[r] = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5])) +
             ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7])) + tail;
  }
}

BinaryDescriptorBank PackBinaryDescriptors(
    const std::vector<BinaryDescriptor>& descriptors) {
  BinaryDescriptorBank bank;
  bank.count = descriptors.size();
  bank.words.assign(bank.count * BinaryDescriptorBank::kWordsPerRow, 0);
  for (std::size_t i = 0; i < bank.count; ++i) {
    std::memcpy(bank.words.data() + i * BinaryDescriptorBank::kWordsPerRow,
                descriptors[i].data(), sizeof(BinaryDescriptor));
  }
  return bank;
}

void BankHammingDistances(const BinaryDescriptorBank& bank,
                          const BinaryDescriptor& query, int* out) {
  std::array<std::uint64_t, BinaryDescriptorBank::kWordsPerRow> q_words;
  std::memcpy(q_words.data(), query.data(), sizeof(BinaryDescriptor));
  for (std::size_t i = 0; i < bank.count; ++i) {
    out[i] = HammingDistanceWords(q_words.data(), bank.Row(i),
                                  BinaryDescriptorBank::kWordsPerRow);
  }
}

FloatDescriptor GalleryViewIndex::ColorEmbedding(const double* bins,
                                                 const int bins_per_channel) {
  const auto b = static_cast<std::size_t>(bins_per_channel);
  const std::size_t n = b * b * b;
  // Full joint histogram in sqrt space: ||sqrt(a) - sqrt(b)||_2 =
  // sqrt(2) * Hellinger(a, b), so Euclidean ranks over this embedding
  // equal exact Hellinger ranks (up to float rounding). Precomputing the
  // sqrt once per view is what makes retrieval cheap: a tree visit costs
  // multiply-adds where the exact kernel pays a sqrt per bin per pair.
  FloatDescriptor e(n);
  for (std::size_t i = 0; i < n; ++i) {
    e[i] = std::sqrt(static_cast<float>(std::max(bins[i], 0.0)));
  }
  return e;
}

GalleryViewIndex GalleryViewIndex::Build(const FeatureBank& bank,
                                         const GalleryIndexOptions& options) {
  SNOR_TRACE_SPAN("core.bank.index_build");
  GalleryViewIndex index;
  index.options_ = options;

  std::vector<FloatDescriptor> color_points;
  std::vector<int> color_ids;
  for (std::size_t i = 0; i < bank.num_views; ++i) {
    if (!bank.IsValid(i)) continue;
    const double* hu = bank.HuRow(i);
    bool hu_finite = true;
    for (int d = 0; d < 7; ++d) {
      if (!std::isfinite(hu[d])) hu_finite = false;
    }
    if (hu_finite) {
      index.shape_maps_.push_back(MakeLogHuMap(hu));
      index.shape_ids_.push_back(static_cast<int>(i));
    }
    const double* row = bank.HistRow(i);
    double mass = 0.0;
    bool hist_ok = true;
    for (std::size_t d = 0; d < bank.hist_bins; ++d) {
      if (!std::isfinite(row[d]) || row[d] < 0.0) hist_ok = false;
      mass += row[d];
    }
    if (hist_ok && mass > 0.0) {
      color_points.push_back(ColorEmbedding(row, bank.bins_per_channel));
      color_ids.push_back(static_cast<int>(i));
    }
  }

  if (!color_points.empty()) {
    if (options.ann.max_leaf_checks > 0) {
      index.color_tree_ =
          AnnIndex::Build(std::move(color_points), std::move(color_ids),
                          options.candidates, options.ann);
    } else {
      index.color_bank_ = PackFloatDescriptors(color_points);
      index.color_ids_ = std::move(color_ids);
    }
  }
  return index;
}

namespace {

/// Keeps the `r` smallest (score, id) pairs and returns their ids sorted
/// ascending; (score, id) ordering makes tie-breaks a deterministic
/// total order.
template <typename Score>
std::vector<int> TopRIds(std::vector<std::pair<Score, int>>* scored,
                         int candidates) {
  const std::size_t r =
      std::min(scored->size(),
               static_cast<std::size_t>(std::max(candidates, 0)));
  std::nth_element(scored->begin(),
                   scored->begin() + static_cast<std::ptrdiff_t>(r),
                   scored->end());
  std::vector<int> ids;
  ids.reserve(r);
  for (std::size_t i = 0; i < r; ++i) ids.push_back((*scored)[i].second);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

std::vector<int> GalleryViewIndex::Candidates(const ImageFeatures& query,
                                              bool use_shape,
                                              bool use_color) const {
  std::vector<int> shape_cands;
  if (use_shape && !shape_ids_.empty()) {
    // Exact top-R shape prefilter: score every prefilter row with the
    // approach's own metric (query mapped once, transcendentals
    // amortised) and keep the R best.
    const LogHuMap query_map = MakeLogHuMap(query.hu.data());
    std::vector<std::pair<double, int>> scored;
    scored.reserve(shape_ids_.size());
    for (std::size_t i = 0; i < shape_ids_.size(); ++i) {
      const double s =
          MatchShapesFromMaps(query_map, shape_maps_[i],
                              options_.shape_method);
      if (std::isfinite(s)) scored.emplace_back(s, shape_ids_[i]);
    }
    shape_cands = TopRIds(&scored, options_.candidates);
  }
  std::vector<int> color_cands;
  if (use_color && (color_tree_.has_value() || color_bank_.count > 0)) {
    const FloatDescriptor q_emb =
        ColorEmbedding(query.histogram.bins().data(),
                       query.histogram.bins_per_channel());
    if (color_tree_.has_value()) {
      color_cands = color_tree_->Query(q_emb, options_.candidates);
    } else if (q_emb.size() == color_bank_.dim) {
      // Squared L2 ranks identically to L2 and the lane-parallel kernel
      // runs at SIMD throughput; scores are discarded after top-R.
      std::vector<float> dists(color_bank_.count);
      BankFloatSquaredL2(color_bank_, q_emb, dists.data());
      std::vector<std::pair<float, int>> scored;
      scored.reserve(color_bank_.count);
      for (std::size_t i = 0; i < color_bank_.count; ++i) {
        if (std::isfinite(dists[i])) {
          scored.emplace_back(dists[i], color_ids_[i]);
        }
      }
      color_cands = TopRIds(&scored, options_.candidates);
    }
  }
  if (shape_cands.empty()) return color_cands;
  if (color_cands.empty()) return shape_cands;
  std::vector<int> merged;
  merged.reserve(shape_cands.size() + color_cands.size());
  std::merge(shape_cands.begin(), shape_cands.end(), color_cands.begin(),
             color_cands.end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

}  // namespace snor
