#ifndef SNOR_CORE_DESCRIPTOR_CLASSIFIER_H_
#define SNOR_CORE_DESCRIPTOR_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "features/kdtree.h"
#include "features/matcher.h"
#include "features/orb.h"
#include "features/sift.h"
#include "features/surf.h"

namespace snor {

/// \brief Which keypoint descriptor drives the pipeline (§3.3).
enum class DescriptorType { kSift, kSurf, kOrb };

/// \brief Options for the descriptor-matching pipeline.
struct DescriptorClassifierOptions {
  DescriptorType type = DescriptorType::kSift;
  /// Lowe ratio-test threshold (the paper reports 0.5 and 0.75).
  float ratio = 0.5f;
  /// Use the k-d tree (FLANN stand-in) instead of brute force for float
  /// descriptors. The paper found no accuracy gain; measured in
  /// bench/ablation_sweeps.
  bool use_kdtree = false;
  SiftOptions sift;
  SurfOptions surf;
  OrbOptions orb;
};

/// \brief The feature-descriptor pipeline: each gallery view is described
/// by its keypoint descriptors; an input is matched (kNN + ratio test)
/// against every view and classified as the view with the most surviving
/// "good" matches (ties broken by mean match distance; inputs with no
/// good matches fall back to nearest mean first-neighbour distance).
class DescriptorClassifier {
 public:
  DescriptorClassifier(const Dataset& gallery,
                       const DescriptorClassifierOptions& options);

  /// Predicts the class of one image.
  ObjectClass Classify(const ImageU8& image) const;

  /// Predicts every item of a dataset.
  std::vector<ObjectClass> ClassifyAll(const Dataset& inputs) const;

  std::size_t num_gallery_views() const { return labels_.size(); }

  /// Total keypoints extracted across the gallery (diagnostics).
  std::size_t total_gallery_keypoints() const;

 private:
  struct ViewMatchStats {
    int good_matches = 0;
    double mean_good_distance = 0.0;
    double mean_first_distance = 0.0;
  };

  ViewMatchStats MatchAgainstView(const std::vector<FloatDescriptor>& query,
                                  std::size_t view) const;
  ViewMatchStats MatchAgainstView(const std::vector<BinaryDescriptor>& query,
                                  std::size_t view) const;

  DescriptorClassifierOptions options_;
  std::vector<ObjectClass> labels_;
  // Float pipelines (SIFT/SURF).
  std::vector<std::vector<FloatDescriptor>> float_gallery_;
  std::vector<std::unique_ptr<KdTreeMatcher>> kdtrees_;
  // Binary pipeline (ORB).
  std::vector<std::vector<BinaryDescriptor>> binary_gallery_;
};

}  // namespace snor

#endif  // SNOR_CORE_DESCRIPTOR_CLASSIFIER_H_
