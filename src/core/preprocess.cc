#include "core/preprocess.h"

#include "img/color.h"
#include "img/threshold.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace snor {

Result<PreprocessResult> Preprocess(const ImageU8& rgb,
                                    const PreprocessOptions& options) {
  SNOR_TRACE_SPAN("core.preprocess");
  static obs::Histogram& latency_us =
      obs::MetricsRegistry::Global().histogram("core.preprocess.latency_us");
  const obs::ScopedLatencyUs latency(latency_us);

  if (rgb.empty()) return Status::InvalidArgument("empty input image");
  const ImageU8 gray = rgb.channels() == 3 ? RgbToGray(rgb) : rgb;

  // Global binary thresholding; inverse when the background is white so
  // that the object becomes the foreground in both cases (§3.2).
  ImageU8 binary;
  {
    SNOR_TRACE_SPAN("core.preprocess.threshold");
    const ThresholdMode mode = options.white_background
                                   ? ThresholdMode::kBinaryInv
                                   : ThresholdMode::kBinary;
    const std::uint8_t thresh =
        options.use_otsu
            ? OtsuThreshold(gray)
            : (options.white_background ? options.white_threshold
                                        : options.black_threshold);
    binary = Threshold(gray, thresh, 255, mode);
  }

  std::vector<Contour> contours;
  {
    SNOR_TRACE_SPAN("core.preprocess.contour");
    contours = FindContours(binary, options.min_component_pixels);
  }
  if (contours.empty()) {
    static obs::Counter& no_foreground =
        obs::MetricsRegistry::Global().counter("core.preprocess.no_foreground");
    no_foreground.Increment();
    return Status::NotFound("no foreground component after thresholding");
  }

  SNOR_TRACE_SPAN("core.preprocess.crop");
  PreprocessResult result;
  result.contour = contours[0];  // Largest area first.
  result.hu = ComputeHuMoments(ContourMoments(result.contour));
  const Rect bb = BoundingRect(result.contour);
  result.cropped_rgb = Crop(rgb, bb.x, bb.y, bb.width, bb.height);
  return result;
}

}  // namespace snor
