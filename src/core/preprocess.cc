#include "core/preprocess.h"

#include "img/color.h"
#include "img/threshold.h"

namespace snor {

Result<PreprocessResult> Preprocess(const ImageU8& rgb,
                                    const PreprocessOptions& options) {
  if (rgb.empty()) return Status::InvalidArgument("empty input image");
  const ImageU8 gray = rgb.channels() == 3 ? RgbToGray(rgb) : rgb;

  // Global binary thresholding; inverse when the background is white so
  // that the object becomes the foreground in both cases (§3.2).
  const ThresholdMode mode = options.white_background
                                 ? ThresholdMode::kBinaryInv
                                 : ThresholdMode::kBinary;
  const std::uint8_t thresh =
      options.use_otsu ? OtsuThreshold(gray)
                       : (options.white_background ? options.white_threshold
                                                   : options.black_threshold);
  const ImageU8 binary = Threshold(gray, thresh, 255, mode);

  const auto contours = FindContours(binary, options.min_component_pixels);
  if (contours.empty()) {
    return Status::NotFound("no foreground component after thresholding");
  }

  PreprocessResult result;
  result.contour = contours[0];  // Largest area first.
  result.hu = ComputeHuMoments(ContourMoments(result.contour));
  const Rect bb = BoundingRect(result.contour);
  result.cropped_rgb = Crop(rgb, bb.x, bb.y, bb.width, bb.height);
  return result;
}

}  // namespace snor
