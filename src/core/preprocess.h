#ifndef SNOR_CORE_PREPROCESS_H_
#define SNOR_CORE_PREPROCESS_H_

#include "geometry/contour.h"
#include "geometry/moments.h"
#include "img/image.h"
#include "util/status.h"

namespace snor {

/// \brief Options for the paper's §3.2 preprocessing chain.
struct PreprocessOptions {
  /// true when the input lies on a white background (ShapeNet 2D views,
  /// thresholded with the *inverse* binary rule); false for black-masked
  /// inputs (NYU crops).
  bool white_background = true;
  /// Global threshold for white backgrounds (object = pixels below).
  std::uint8_t white_threshold = 245;
  /// Global threshold for black backgrounds (object = pixels above).
  std::uint8_t black_threshold = 10;
  /// Derive the threshold with Otsu's method instead of the fixed values
  /// (ablation knob; the paper uses a fixed global threshold).
  bool use_otsu = false;
  /// Components smaller than this many pixels are ignored.
  int min_component_pixels = 9;
};

/// \brief Output of preprocessing: the object crop and its shape features.
struct PreprocessResult {
  /// Input cropped to the bounding rectangle of the largest contour.
  ImageU8 cropped_rgb;
  /// The largest-area outer contour (in original image coordinates).
  Contour contour;
  /// Hu moments of that contour.
  HuMoments hu{};
};

/// Runs the paper's preprocessing: grayscale conversion, global binary
/// thresholding (inverse for white backgrounds), contour detection, and
/// cropping to the contour of largest area. Fails with NotFound when no
/// foreground component survives.
[[nodiscard]] Result<PreprocessResult> Preprocess(
    const ImageU8& rgb, const PreprocessOptions& options = {});

}  // namespace snor

#endif  // SNOR_CORE_PREPROCESS_H_
