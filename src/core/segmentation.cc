#include "core/segmentation.h"

#include "img/color.h"
#include "img/threshold.h"
#include "util/check.h"

namespace snor {

std::vector<SegmentedObject> SegmentFrame(
    const ImageU8& frame, const SegmentationOptions& options) {
  SNOR_CHECK(!frame.empty());
  const ImageU8 gray = frame.channels() == 3 ? RgbToGray(frame) : frame;
  const ImageU8 binary =
      Threshold(gray, options.threshold, 255, ThresholdMode::kBinary);
  const auto contours = FindContours(binary, options.min_pixels);

  std::vector<SegmentedObject> objects;
  for (const auto& contour : contours) {
    if (options.max_objects > 0 &&
        static_cast<int>(objects.size()) >= options.max_objects) {
      break;
    }
    SegmentedObject obj;
    obj.bbox = BoundingRect(contour);
    obj.contour = contour;
    obj.crop = Crop(frame, obj.bbox.x, obj.bbox.y, obj.bbox.width,
                    obj.bbox.height);
    objects.push_back(std::move(obj));
  }
  return objects;
}

}  // namespace snor
