#ifndef SNOR_CORE_REPORT_IO_H_
#define SNOR_CORE_REPORT_IO_H_

#include <string>

#include "core/evaluation.h"
#include "util/csv.h"
#include "util/table.h"

namespace snor {

/// Renders the confusion matrix of a report as a fixed-width table
/// (rows = truth, columns = predictions).
TablePrinter ConfusionTable(const EvalReport& report);

/// Converts a report's per-class metrics to CSV (one row per class),
/// including both the paper-style and standard precision/F1.
CsvWriter ReportToCsv(const EvalReport& report);

/// Writes the per-class CSV to `path`.
[[nodiscard]] Status WriteReportCsv(const EvalReport& report,
                                    const std::string& path);

}  // namespace snor

#endif  // SNOR_CORE_REPORT_IO_H_
