#ifndef SNOR_CORE_EVALUATION_H_
#define SNOR_CORE_EVALUATION_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "data/object_class.h"
#include "util/status.h"

namespace snor {

/// \brief Per-class metrics matching the paper's reporting conventions.
///
/// The paper's appendix tables report, per class c:
///  - "Accuracy" = recall of c (correct / support);
///  - "Precision" = TP_c / N where N is the *total* number of evaluated
///    samples (verifiable from their baseline rows: 0.156 recall over
///    1000 chairs in 6,934 samples gives 0.0225 "precision" = 156/6934);
///  - "F1" = harmonic mean of that precision and recall.
/// We additionally expose the standard precision (TP / predicted-as-c)
/// and its F1.
struct ClassMetrics {
  int support = 0;
  int true_positives = 0;
  int predicted_count = 0;
  double recall = 0.0;            ///< == the paper's per-class "Accuracy".
  double precision_paper = 0.0;   ///< TP / total samples (paper style).
  double f1_paper = 0.0;
  double precision_std = 0.0;     ///< TP / predicted count (standard).
  double f1_std = 0.0;
};

/// \brief One bad input recorded by batch evaluation instead of aborting
/// the run: the item is skipped (ingest failures) or fallback-classified
/// (preprocess failures), and the reason lands here.
struct ItemError {
  /// Index into the evaluated input vector.
  int index = -1;
  /// Pipeline stage that failed: "ingest", "preprocess", "classify".
  std::string stage;
  Status status;
};

/// \brief Wall-clock seconds spent in each stage of one approach run,
/// captured by `ExperimentContext::RunApproach` and carried into the CSV
/// reports so accuracy tables come with their latency context.
struct StageTiming {
  /// Classifier construction over the gallery (indexing/setup).
  double extract_s = 0.0;
  /// The per-item matching loop.
  double match_s = 0.0;
  /// Metric computation (Evaluate).
  double score_s = 0.0;
};

/// \brief Full evaluation of a multi-class prediction run.
struct EvalReport {
  /// Cross-class cumulative accuracy (Table 2 / Table 3 metric).
  double cumulative_accuracy = 0.0;
  /// Items that entered the metric computation.
  int total = 0;
  /// Items presented to the run, including skipped ones (>= total).
  int attempted = 0;
  std::array<ClassMetrics, kNumClasses> per_class{};
  /// confusion[truth][predicted].
  std::array<std::array<int, kNumClasses>, kNumClasses> confusion{};
  /// Per-item error ledger: every skipped or impaired input, with the
  /// stage and Status that explains it. Empty on a clean run.
  std::vector<ItemError> errors;
  /// Inputs the hybrid classifier matched on a single surviving modality.
  std::uint64_t degraded_shape_only = 0;
  std::uint64_t degraded_color_only = 0;
  /// Per-stage wall-clock breakdown of the run that produced this report.
  StageTiming timing;

  /// Fraction of attempted items that were actually evaluated.
  double Coverage() const {
    return attempted > 0 ? static_cast<double>(total) / attempted : 1.0;
  }
};

/// Computes the report from parallel truth/prediction arrays.
[[nodiscard]] EvalReport Evaluate(const std::vector<ObjectClass>& truth,
                                  const std::vector<ObjectClass>& predicted);

/// \brief Binary (pair similarity) metrics per class, as in Table 4.
struct BinaryClassMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  int support = 0;
};

/// \brief Table-4-style evaluation of a similar/dissimilar pair run.
struct BinaryReport {
  BinaryClassMetrics similar;
  BinaryClassMetrics dissimilar;
  double accuracy = 0.0;
};

/// Computes binary metrics (label 1 = similar).
[[nodiscard]] BinaryReport EvaluateBinary(const std::vector<int>& truth,
                                          const std::vector<int>& predicted);

}  // namespace snor

#endif  // SNOR_CORE_EVALUATION_H_
