#ifndef SNOR_CORE_GALLERY_IO_H_
#define SNOR_CORE_GALLERY_IO_H_

#include <string>
#include <vector>

#include "core/feature_cache.h"
#include "util/status.h"

namespace snor {

/// Serializes a feature gallery (labels, model ids, Hu moments, colour
/// histograms) to a binary file, so a deployed robot can load the
/// reference gallery without re-rendering or re-processing images.
[[nodiscard]] Status SaveFeatures(const std::vector<ImageFeatures>& features,
                                  const std::string& path);

/// Restores a gallery written by SaveFeatures. Fails on bad magic,
/// version mismatch, or truncation.
[[nodiscard]] Result<std::vector<ImageFeatures>> LoadFeatures(
    const std::string& path);

}  // namespace snor

#endif  // SNOR_CORE_GALLERY_IO_H_
