#ifndef SNOR_CORE_CLASSIFIERS_H_
#define SNOR_CORE_CLASSIFIERS_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/feature_cache.h"
#include "features/histogram.h"
#include "geometry/moments.h"
#include "util/rng.h"
#include "util/status.h"

namespace snor {

/// \brief Argmin aggregation strategies for the hybrid pipeline (§3.2).
enum class HybridStrategy {
  /// argmin over every individual view score (the paper's Theta_T).
  kWeightedSum,
  /// argmin over per-model score averages (micro-average, Theta_Z).
  kMicroAverage,
  /// argmin over per-class score averages (macro-average, Theta_C).
  kMacroAverage,
};

/// \brief Counters describing how often a classifier had to shed a
/// modality to keep answering (graceful degradation, never a crash).
struct DegradationStats {
  /// Colour modality unusable for the input; matched on shape alone.
  std::uint64_t shape_only = 0;
  /// Shape modality unusable for the input; matched on colour alone.
  std::uint64_t color_only = 0;
  /// Neither modality usable; the deterministic fallback label was used.
  std::uint64_t fallback = 0;

  std::uint64_t total() const { return shape_only + color_only + fallback; }
};

/// \brief Base class for gallery-matching classifiers: the predicted label
/// comes from the reference view(s) optimising a similarity or distance
/// function against the input.
///
/// Construction tolerates an empty gallery (every prediction is then the
/// fallback label); use `MakeClassifier` for a validating factory.
class MatchingClassifier {
 public:
  explicit MatchingClassifier(std::vector<ImageFeatures> gallery);
  virtual ~MatchingClassifier() = default;

  /// Predicts the class of one input's features. Never fails: degraded
  /// inputs fall back to the surviving modality (see `degradation()`).
  virtual ObjectClass Classify(const ImageFeatures& input) = 0;

  /// Predicts every input (convenience wrapper).
  [[nodiscard]] std::vector<ObjectClass> ClassifyAll(
      const std::vector<ImageFeatures>& inputs);

  const std::vector<ImageFeatures>& gallery() const { return gallery_; }

  /// How often Classify had to degrade since construction.
  const DegradationStats& degradation() const { return degradation_; }

 protected:
  /// Deterministic fallback when no gallery view produces a usable score.
  ObjectClass FallbackLabel() const;

  DegradationStats degradation_;

 private:
  std::vector<ImageFeatures> gallery_;
};

/// True when the input carries a usable contour-shape modality (valid
/// preprocessing and finite Hu moments).
[[nodiscard]] bool ShapeModalityUsable(const ImageFeatures& input);

/// True when the input carries a usable colour modality (finite histogram
/// with positive mass).
[[nodiscard]] bool ColorModalityUsable(const ImageFeatures& input);

/// Sentinel marking a per-view score as unusable (poisoned, invalid view,
/// or collapsed modality). Argmin reductions never select it.
inline constexpr double kUnusableScore = std::numeric_limits<double>::max();

/// \brief Partial arg-optimum of one gallery range: the strictly best
/// usable view score seen while scanning the range in ascending index
/// order. Merging partials of contiguous ascending ranges with the same
/// strict comparison reproduces the sequential scan bit-for-bit, which is
/// what lets the sharded BatchEngine return cold-path-identical labels.
struct PartialBest {
  double score = 0.0;
  ObjectClass label = ObjectClass::kChair;
  /// False when no view in the range produced a usable score.
  bool found = false;
};

/// Shape-only partial argmin over gallery views [begin, end): skips
/// invalid views and non-finite (poisoned) scores, keeps the first strict
/// minimum. Exactly the loop body of ShapeOnlyClassifier::Classify.
[[nodiscard]] PartialBest ShapeArgminOverRange(
    const ImageFeatures& input, const std::vector<ImageFeatures>& gallery,
    std::size_t begin, std::size_t end, ShapeMatchMethod method);

/// Colour-only partial arg-optimum over gallery views [begin, end):
/// maximises similarity metrics, minimises distance metrics, skipping
/// invalid views and non-finite scores. Exactly the loop body of
/// ColorOnlyClassifier::Classify.
[[nodiscard]] PartialBest ColorArgbestOverRange(
    const ImageFeatures& input, const std::vector<ImageFeatures>& gallery,
    std::size_t begin, std::size_t end, HistCompareMethod method);

/// Colour comparison as a "smaller is better" score the way the paper
/// uses it in theta: distances pass through, similarities are inverted.
[[nodiscard]] double HybridColorDistance(const ColorHistogram& a,
                                         const ColorHistogram& b,
                                         HistCompareMethod method);

/// Raw-pointer core of HybridColorDistance over two bin arrays of length
/// `n`; the SoA feature-bank kernels call this on bank rows so the
/// similarity inversion lives in exactly one place.
[[nodiscard]] double HybridColorDistanceRaw(const double* a, const double* b,
                                            std::size_t n,
                                            HistCompareMethod method);

/// Fills `shape_scores`/`color_scores` (pre-sized to the gallery, filled
/// with kUnusableScore) for gallery views [begin, end) and counts the
/// usable scores of each requested modality. The per-view arithmetic is
/// the one the HybridClassifier runs, so a sharded fill produces
/// bit-identical score vectors.
void ComputeHybridScoresOverRange(
    const ImageFeatures& input, const std::vector<ImageFeatures>& gallery,
    std::size_t begin, std::size_t end, ShapeMatchMethod shape_method,
    HistCompareMethod color_method, bool use_shape, bool use_color,
    std::vector<double>* shape_scores, std::vector<double>* color_scores,
    std::size_t* shape_usable, std::size_t* color_usable);

/// Combines per-view modality scores into theta: alpha*S + beta*C when
/// both modalities are live, the surviving modality alone otherwise.
/// Entries stay kUnusableScore when a required score is unusable.
[[nodiscard]] std::vector<double> AssembleHybridTheta(
    const std::vector<double>& shape_scores,
    const std::vector<double>& color_scores, double alpha, double beta,
    bool shape_live, bool color_live);

/// The three argmin strategies of §3.2 over a per-view theta vector
/// (index-aligned with `gallery`); `fallback` wins when no view is
/// usable. Shared by HybridClassifier and the serve-side BatchEngine.
[[nodiscard]] ObjectClass HybridArgminLabel(
    const std::vector<double>& theta,
    const std::vector<ImageFeatures>& gallery, HybridStrategy strategy,
    ObjectClass fallback);

/// \brief Uniform random label assignment (the paper's reference baseline).
class RandomBaselineClassifier : public MatchingClassifier {
 public:
  RandomBaselineClassifier(std::vector<ImageFeatures> gallery,
                           std::uint64_t seed);

  ObjectClass Classify(const ImageFeatures& input) override;

 private:
  Rng rng_;
};

/// \brief Shape-only matching: Hu-moment `MatchShapes` distance, argmin
/// over all gallery views (§3.2, "Shape only L1/L2/L3").
class ShapeOnlyClassifier : public MatchingClassifier {
 public:
  ShapeOnlyClassifier(std::vector<ImageFeatures> gallery,
                      ShapeMatchMethod method);

  ObjectClass Classify(const ImageFeatures& input) override;

 private:
  ShapeMatchMethod method_;
};

/// \brief Colour-only matching: RGB-histogram comparison, arg-optimum over
/// all gallery views (§3.2, "Color only ...").
class ColorOnlyClassifier : public MatchingClassifier {
 public:
  ColorOnlyClassifier(std::vector<ImageFeatures> gallery,
                      HistCompareMethod method);

  ObjectClass Classify(const ImageFeatures& input) override;

 private:
  HistCompareMethod method_;
};

/// \brief Hybrid matching: theta = alpha * S + beta * C with the three
/// argmin strategies of §3.2. For similarity-style colour metrics
/// (Correlation, Intersection) the inverse of C enters theta, matching
/// the paper.
class HybridClassifier : public MatchingClassifier {
 public:
  HybridClassifier(std::vector<ImageFeatures> gallery,
                   ShapeMatchMethod shape_method,
                   HistCompareMethod color_method, double alpha, double beta,
                   HybridStrategy strategy);

  /// Classifies with graceful degradation: when one modality is unusable
  /// for the input (missing contour, poisoned NaN scores, empty
  /// histogram) the surviving modality alone drives the argmin and the
  /// degradation is recorded, instead of the frame failing.
  ObjectClass Classify(const ImageFeatures& input) override;

  /// The per-view theta scores for one input (exposed for tests and
  /// diagnostics); index-aligned with gallery(). Views whose score is
  /// non-finite (e.g. an injected NaN) are reported as unusable (a huge
  /// positive sentinel that argmin never selects).
  [[nodiscard]] std::vector<double> ViewScores(const ImageFeatures& input) const;

 private:
  /// Per-view theta restricted to the usable modalities. On return,
  /// `*shape_live`/`*color_live` (optional) say whether each requested
  /// modality actually contributed — a modality whose every view score
  /// is poisoned collapses and the survivor drives theta alone.
  std::vector<double> ScoresForModes(const ImageFeatures& input,
                                     bool use_shape, bool use_color,
                                     bool* shape_live = nullptr,
                                     bool* color_live = nullptr) const;

  ObjectClass ArgminLabel(const std::vector<double>& theta) const;

  ShapeMatchMethod shape_method_;
  HistCompareMethod color_method_;
  double alpha_;
  double beta_;
  HybridStrategy strategy_;
};

}  // namespace snor

#endif  // SNOR_CORE_CLASSIFIERS_H_
