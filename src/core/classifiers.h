#ifndef SNOR_CORE_CLASSIFIERS_H_
#define SNOR_CORE_CLASSIFIERS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/feature_cache.h"
#include "features/histogram.h"
#include "geometry/moments.h"
#include "util/rng.h"

namespace snor {

/// \brief Argmin aggregation strategies for the hybrid pipeline (§3.2).
enum class HybridStrategy {
  /// argmin over every individual view score (the paper's Theta_T).
  kWeightedSum,
  /// argmin over per-model score averages (micro-average, Theta_Z).
  kMicroAverage,
  /// argmin over per-class score averages (macro-average, Theta_C).
  kMacroAverage,
};

/// \brief Base class for gallery-matching classifiers: the predicted label
/// comes from the reference view(s) optimising a similarity or distance
/// function against the input.
class MatchingClassifier {
 public:
  explicit MatchingClassifier(std::vector<ImageFeatures> gallery);
  virtual ~MatchingClassifier() = default;

  /// Predicts the class of one input's features.
  virtual ObjectClass Classify(const ImageFeatures& input) = 0;

  /// Predicts every input (convenience wrapper).
  std::vector<ObjectClass> ClassifyAll(
      const std::vector<ImageFeatures>& inputs);

  const std::vector<ImageFeatures>& gallery() const { return gallery_; }

 protected:
  /// Deterministic fallback when no gallery view produces a usable score.
  ObjectClass FallbackLabel() const;

 private:
  std::vector<ImageFeatures> gallery_;
};

/// \brief Uniform random label assignment (the paper's reference baseline).
class RandomBaselineClassifier : public MatchingClassifier {
 public:
  RandomBaselineClassifier(std::vector<ImageFeatures> gallery,
                           std::uint64_t seed);

  ObjectClass Classify(const ImageFeatures& input) override;

 private:
  Rng rng_;
};

/// \brief Shape-only matching: Hu-moment `MatchShapes` distance, argmin
/// over all gallery views (§3.2, "Shape only L1/L2/L3").
class ShapeOnlyClassifier : public MatchingClassifier {
 public:
  ShapeOnlyClassifier(std::vector<ImageFeatures> gallery,
                      ShapeMatchMethod method);

  ObjectClass Classify(const ImageFeatures& input) override;

 private:
  ShapeMatchMethod method_;
};

/// \brief Colour-only matching: RGB-histogram comparison, arg-optimum over
/// all gallery views (§3.2, "Color only ...").
class ColorOnlyClassifier : public MatchingClassifier {
 public:
  ColorOnlyClassifier(std::vector<ImageFeatures> gallery,
                      HistCompareMethod method);

  ObjectClass Classify(const ImageFeatures& input) override;

 private:
  HistCompareMethod method_;
};

/// \brief Hybrid matching: theta = alpha * S + beta * C with the three
/// argmin strategies of §3.2. For similarity-style colour metrics
/// (Correlation, Intersection) the inverse of C enters theta, matching
/// the paper.
class HybridClassifier : public MatchingClassifier {
 public:
  HybridClassifier(std::vector<ImageFeatures> gallery,
                   ShapeMatchMethod shape_method,
                   HistCompareMethod color_method, double alpha, double beta,
                   HybridStrategy strategy);

  ObjectClass Classify(const ImageFeatures& input) override;

  /// The per-view theta scores for one input (exposed for tests and
  /// diagnostics); index-aligned with gallery().
  std::vector<double> ViewScores(const ImageFeatures& input) const;

 private:
  ShapeMatchMethod shape_method_;
  HistCompareMethod color_method_;
  double alpha_;
  double beta_;
  HybridStrategy strategy_;
};

}  // namespace snor

#endif  // SNOR_CORE_CLASSIFIERS_H_
