#ifndef SNOR_CORE_FEATURE_CACHE_H_
#define SNOR_CORE_FEATURE_CACHE_H_

#include <vector>

#include "core/preprocess.h"
#include "data/dataset.h"
#include "features/histogram.h"
#include "util/status.h"

namespace snor {

/// \brief Feature-extraction options shared by the matching pipelines.
struct FeatureOptions {
  PreprocessOptions preprocess;
  /// RGB histogram bins per channel.
  int hist_bins = 8;
  /// Mask the histogram to object pixels (non-background) inside the
  /// crop. The paper computes histograms over the whole crop; masking is
  /// the ablation in bench/ablation_sweeps.
  bool mask_histogram = false;
  /// Compute the histogram in HSV instead of RGB (illumination-robustness
  /// ablation; the paper uses RGB).
  bool use_hsv = false;
};

/// \brief Per-image cached features consumed by the classifiers.
///
/// Borrow contract: every member is owned by value — the struct never
/// borrows into a bank or dataset, so copies are always safe and no
/// LIFETIME-BOUND annotation applies. Callers that pass `const
/// ImageFeatures*` query pointers (BatchEngine::ClassifyBatch) retain
/// ownership; those borrows end with the call.
struct ImageFeatures {
  ObjectClass label = ObjectClass::kChair;
  int model_id = 0;
  /// Hu moments of the dominant contour; valid only when preprocessing
  /// found a component.
  HuMoments hu{};
  bool valid = false;
  /// L1-normalized RGB histogram of the cropped object.
  ColorHistogram histogram{8};
  /// Why extraction failed when `valid` is false: `NotFound` for the
  /// legacy no-foreground case, `Unavailable`/`IoError` when the item
  /// could not be ingested at all (the latter are *skipped* by batch
  /// evaluation instead of fallback-classified). Not serialized.
  Status status;
};

/// Preprocesses every item of a dataset and extracts its shape and colour
/// features. Items whose preprocessing fails are marked invalid with a
/// per-item `status` (they still occupy a slot so indices align with the
/// dataset); the batch never aborts on a bad item.
[[nodiscard]] std::vector<ImageFeatures> ComputeFeatures(
    const Dataset& dataset, const FeatureOptions& options);

}  // namespace snor

#endif  // SNOR_CORE_FEATURE_CACHE_H_
