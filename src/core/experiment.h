#ifndef SNOR_CORE_EXPERIMENT_H_
#define SNOR_CORE_EXPERIMENT_H_

#include <optional>
#include <string>
#include <vector>

#include "core/classifiers.h"
#include "core/evaluation.h"
#include "core/feature_cache.h"
#include "data/dataset.h"
#include "util/status.h"

namespace snor {

/// \brief One named matching configuration from Table 2.
struct ApproachSpec {
  enum class Kind { kBaseline, kShape, kColor, kHybrid };

  Kind kind = Kind::kBaseline;
  ShapeMatchMethod shape = ShapeMatchMethod::kI3;
  HistCompareMethod color = HistCompareMethod::kHellinger;
  HybridStrategy strategy = HybridStrategy::kWeightedSum;
  double alpha = 0.3;
  double beta = 0.7;

  /// The row label used in the paper's Table 2.
  std::string DisplayName() const;
};

/// The 11 Table-2 rows: baseline; Hu L1/L2/L3; histogram Correlation /
/// Chi-square / Intersection / Hellinger; hybrid weighted-sum /
/// micro-average / macro-average (L3 + Hellinger, the reported best combo).
std::vector<ApproachSpec> Table2Approaches(double alpha = 0.3,
                                           double beta = 0.7);

/// Builds the classifier described by `spec` over a gallery. Fails with
/// `InvalidArgument` on an empty gallery and with `Unavailable` when the
/// gallery has no valid view to match against — a truncated gallery file
/// or an all-faulted load must not take down the caller.
[[nodiscard]] Result<std::unique_ptr<MatchingClassifier>> MakeClassifier(
    const ApproachSpec& spec, std::vector<ImageFeatures> gallery,
    std::uint64_t baseline_seed = 2019);

/// \brief Experiment-wide knobs shared by the bench harnesses.
struct ExperimentConfig {
  /// Canvas size of generated images.
  int canvas_size = 96;
  /// Fraction of the 6,934-item NYU set to generate (1.0 = paper scale).
  double nyu_fraction = 1.0;
  /// RGB histogram bins per channel.
  int hist_bins = 8;
  /// Hybrid weights (paper's reported best: 0.3 / 0.7).
  double alpha = 0.3;
  double beta = 0.7;
  /// Master generation seed.
  std::uint64_t seed = 2019;
};

/// \brief Lazily builds the three datasets and their feature caches so
/// that multiple experiments share the work.
class ExperimentContext {
 public:
  explicit ExperimentContext(const ExperimentConfig& config);

  const ExperimentConfig& config() const { return config_; }

  const Dataset& Sns1();
  const Dataset& Sns2();
  const Dataset& Nyu();

  const std::vector<ImageFeatures>& Sns1Features();
  const std::vector<ImageFeatures>& Sns2Features();
  const std::vector<ImageFeatures>& NyuFeatures();

  /// Runs one approach, matching `inputs` against `gallery`. Bad inputs
  /// never abort the run: unavailable items (ingest faults) are skipped
  /// and recorded in the report's error ledger, preprocess failures are
  /// fallback-classified and recorded, and modality degradations are
  /// counted. Fails only when the whole run is impossible (no usable
  /// gallery).
  [[nodiscard]] Result<EvalReport> RunApproach(
      const ApproachSpec& spec, const std::vector<ImageFeatures>& inputs,
      const std::vector<ImageFeatures>& gallery);

  /// Drops the lazily built feature caches (datasets stay). Each dropped
  /// cache counts as a `core.feature_cache.evictions` metric event; the
  /// next feature access recomputes (and counts a miss).
  void ClearFeatureCaches();

  /// The extraction options used for each dataset's feature cache
  /// (ShapeNet sets render on white, NYU on dark); exposed so the serving
  /// layer can fingerprint feature stores against the same options.
  FeatureOptions FeatureOptionsFor(bool white_background) const;

 private:

  ExperimentConfig config_;
  std::optional<Dataset> sns1_;
  std::optional<Dataset> sns2_;
  std::optional<Dataset> nyu_;
  std::optional<std::vector<ImageFeatures>> sns1_features_;
  std::optional<std::vector<ImageFeatures>> sns2_features_;
  std::optional<std::vector<ImageFeatures>> nyu_features_;
};

/// Extracts the truth labels from a feature vector (index-aligned).
std::vector<ObjectClass> TruthLabels(const std::vector<ImageFeatures>& items);

}  // namespace snor

#endif  // SNOR_CORE_EXPERIMENT_H_
