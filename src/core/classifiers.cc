#include "core/classifiers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/check.h"

namespace snor {
namespace {

constexpr double kHuge = std::numeric_limits<double>::max();

// Converts a colour comparison into a "smaller is better" score the way
// the paper does: distances pass through, similarities are inverted.
double ColorDistance(const ColorHistogram& a, const ColorHistogram& b,
                     HistCompareMethod method) {
  const double c = CompareHistograms(a, b, method);
  if (!IsSimilarityMetric(method)) return c;
  return 1.0 / std::max(c, 1e-6);
}

}  // namespace

MatchingClassifier::MatchingClassifier(std::vector<ImageFeatures> gallery)
    : gallery_(std::move(gallery)) {
  SNOR_CHECK(!gallery_.empty());
}

std::vector<ObjectClass> MatchingClassifier::ClassifyAll(
    const std::vector<ImageFeatures>& inputs) {
  std::vector<ObjectClass> predictions;
  predictions.reserve(inputs.size());
  for (const auto& input : inputs) predictions.push_back(Classify(input));
  return predictions;
}

ObjectClass MatchingClassifier::FallbackLabel() const {
  return gallery_.front().label;
}

RandomBaselineClassifier::RandomBaselineClassifier(
    std::vector<ImageFeatures> gallery, std::uint64_t seed)
    : MatchingClassifier(std::move(gallery)), rng_(seed) {}

ObjectClass RandomBaselineClassifier::Classify(
    const ImageFeatures& /*input*/) {
  return ClassFromIndex(static_cast<int>(rng_.Index(kNumClasses)));
}

ShapeOnlyClassifier::ShapeOnlyClassifier(std::vector<ImageFeatures> gallery,
                                         ShapeMatchMethod method)
    : MatchingClassifier(std::move(gallery)), method_(method) {}

ObjectClass ShapeOnlyClassifier::Classify(const ImageFeatures& input) {
  double best = kHuge;
  ObjectClass best_label = FallbackLabel();
  if (!input.valid) return best_label;
  for (const auto& view : gallery()) {
    if (!view.valid) continue;
    const double d = MatchShapes(input.hu, view.hu, method_);
    if (d < best) {
      best = d;
      best_label = view.label;
    }
  }
  return best_label;
}

ColorOnlyClassifier::ColorOnlyClassifier(std::vector<ImageFeatures> gallery,
                                         HistCompareMethod method)
    : MatchingClassifier(std::move(gallery)), method_(method) {}

ObjectClass ColorOnlyClassifier::Classify(const ImageFeatures& input) {
  const bool maximize = IsSimilarityMetric(method_);
  double best = maximize ? -kHuge : kHuge;
  ObjectClass best_label = FallbackLabel();
  if (!input.valid) return best_label;
  for (const auto& view : gallery()) {
    if (!view.valid) continue;
    const double c =
        CompareHistograms(input.histogram, view.histogram, method_);
    const bool better = maximize ? c > best : c < best;
    if (better) {
      best = c;
      best_label = view.label;
    }
  }
  return best_label;
}

HybridClassifier::HybridClassifier(std::vector<ImageFeatures> gallery,
                                   ShapeMatchMethod shape_method,
                                   HistCompareMethod color_method,
                                   double alpha, double beta,
                                   HybridStrategy strategy)
    : MatchingClassifier(std::move(gallery)),
      shape_method_(shape_method),
      color_method_(color_method),
      alpha_(alpha),
      beta_(beta),
      strategy_(strategy) {}

std::vector<double> HybridClassifier::ViewScores(
    const ImageFeatures& input) const {
  std::vector<double> scores;
  scores.reserve(gallery().size());
  for (const auto& view : gallery()) {
    if (!input.valid || !view.valid) {
      scores.push_back(kHuge);
      continue;
    }
    double s = MatchShapes(input.hu, view.hu, shape_method_);
    if (s >= kHuge) {
      scores.push_back(kHuge);
      continue;
    }
    const double c =
        ColorDistance(input.histogram, view.histogram, color_method_);
    scores.push_back(alpha_ * s + beta_ * c);
  }
  return scores;
}

ObjectClass HybridClassifier::Classify(const ImageFeatures& input) {
  const std::vector<double> theta = ViewScores(input);

  switch (strategy_) {
    case HybridStrategy::kWeightedSum: {
      double best = kHuge;
      ObjectClass best_label = FallbackLabel();
      for (std::size_t i = 0; i < theta.size(); ++i) {
        if (theta[i] < best) {
          best = theta[i];
          best_label = gallery()[i].label;
        }
      }
      return best_label;
    }
    case HybridStrategy::kMicroAverage: {
      // Average theta per model (class, model_id), argmin over models.
      std::map<std::pair<int, int>, std::pair<double, int>> acc;
      for (std::size_t i = 0; i < theta.size(); ++i) {
        if (theta[i] >= kHuge) continue;
        auto& entry = acc[{ClassIndex(gallery()[i].label),
                           gallery()[i].model_id}];
        entry.first += theta[i];
        entry.second += 1;
      }
      double best = kHuge;
      ObjectClass best_label = FallbackLabel();
      for (const auto& [key, entry] : acc) {
        const double mean = entry.first / entry.second;
        if (mean < best) {
          best = mean;
          best_label = ClassFromIndex(key.first);
        }
      }
      return best_label;
    }
    case HybridStrategy::kMacroAverage: {
      std::array<double, kNumClasses> sums{};
      std::array<int, kNumClasses> counts{};
      for (std::size_t i = 0; i < theta.size(); ++i) {
        if (theta[i] >= kHuge) continue;
        const auto c = static_cast<std::size_t>(
            ClassIndex(gallery()[i].label));
        sums[c] += theta[i];
        ++counts[c];
      }
      double best = kHuge;
      ObjectClass best_label = FallbackLabel();
      for (int c = 0; c < kNumClasses; ++c) {
        if (counts[static_cast<std::size_t>(c)] == 0) continue;
        const double mean = sums[static_cast<std::size_t>(c)] /
                            counts[static_cast<std::size_t>(c)];
        if (mean < best) {
          best = mean;
          best_label = ClassFromIndex(c);
        }
      }
      return best_label;
    }
  }
  return FallbackLabel();
}

}  // namespace snor
