#include "core/classifiers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/check.h"
#include "util/fault.h"

namespace snor {
namespace {

constexpr double kHuge = kUnusableScore;

}  // namespace

double HybridColorDistance(const ColorHistogram& a, const ColorHistogram& b,
                           HistCompareMethod method) {
  SNOR_CHECK_EQ(a.num_bins(), b.num_bins());
  return HybridColorDistanceRaw(a.bins().data(), b.bins().data(),
                                a.num_bins(), method);
}

double HybridColorDistanceRaw(const double* a, const double* b,
                              const std::size_t n, HistCompareMethod method) {
  const double c = CompareHistogramsRaw(a, b, n, method);
  if (!IsSimilarityMetric(method)) return c;
  return 1.0 / std::max(c, 1e-6);
}

PartialBest ShapeArgminOverRange(const ImageFeatures& input,
                                 const std::vector<ImageFeatures>& gallery,
                                 std::size_t begin, std::size_t end,
                                 ShapeMatchMethod method) {
  PartialBest partial;
  partial.score = kHuge;
  for (std::size_t i = begin; i < end; ++i) {
    const ImageFeatures& view = gallery[i];
    if (!view.valid) continue;
    const double d = MaybePoisonScore(MatchShapes(input.hu, view.hu, method));
    if (!std::isfinite(d)) continue;  // Poisoned view: skip, don't crash.
    if (d < partial.score) {
      partial.score = d;
      partial.label = view.label;
      partial.found = true;
    }
  }
  return partial;
}

PartialBest ColorArgbestOverRange(const ImageFeatures& input,
                                  const std::vector<ImageFeatures>& gallery,
                                  std::size_t begin, std::size_t end,
                                  HistCompareMethod method) {
  const bool maximize = IsSimilarityMetric(method);
  PartialBest partial;
  partial.score = maximize ? -kHuge : kHuge;
  for (std::size_t i = begin; i < end; ++i) {
    const ImageFeatures& view = gallery[i];
    if (!view.valid) continue;
    const double c = CompareHistograms(input.histogram, view.histogram, method);
    if (!std::isfinite(c)) continue;  // Corrupt view: skip, don't crash.
    const bool better = maximize ? c > partial.score : c < partial.score;
    if (better) {
      partial.score = c;
      partial.label = view.label;
      partial.found = true;
    }
  }
  return partial;
}

void ComputeHybridScoresOverRange(
    const ImageFeatures& input, const std::vector<ImageFeatures>& gallery,
    std::size_t begin, std::size_t end, ShapeMatchMethod shape_method,
    HistCompareMethod color_method, bool use_shape, bool use_color,
    std::vector<double>* shape_scores, std::vector<double>* color_scores,
    std::size_t* shape_usable, std::size_t* color_usable) {
  for (std::size_t i = begin; i < end; ++i) {
    const ImageFeatures& view = gallery[i];
    if (!view.valid) continue;
    if (use_shape) {
      const double s =
          MaybePoisonScore(MatchShapes(input.hu, view.hu, shape_method));
      if (std::isfinite(s) && s < kHuge) {
        (*shape_scores)[i] = s;
        ++*shape_usable;
      }
    }
    if (use_color) {
      const double c =
          HybridColorDistance(input.histogram, view.histogram, color_method);
      if (std::isfinite(c)) {
        (*color_scores)[i] = c;
        ++*color_usable;
      }
    }
  }
}

std::vector<double> AssembleHybridTheta(
    const std::vector<double>& shape_scores,
    const std::vector<double>& color_scores, double alpha, double beta,
    bool shape_live, bool color_live) {
  const std::size_t n = shape_scores.size();
  std::vector<double> theta(n, kHuge);
  for (std::size_t i = 0; i < n; ++i) {
    if (shape_live && color_live) {
      if (shape_scores[i] < kHuge && color_scores[i] < kHuge) {
        theta[i] = alpha * shape_scores[i] + beta * color_scores[i];
      }
    } else if (shape_live) {
      theta[i] = shape_scores[i];
    } else if (color_live) {
      theta[i] = color_scores[i];
    }
  }
  return theta;
}

ObjectClass HybridArgminLabel(const std::vector<double>& theta,
                              const std::vector<ImageFeatures>& gallery,
                              HybridStrategy strategy, ObjectClass fallback) {
  switch (strategy) {
    case HybridStrategy::kWeightedSum: {
      double best = kHuge;
      ObjectClass best_label = fallback;
      for (std::size_t i = 0; i < theta.size(); ++i) {
        if (theta[i] < best) {
          best = theta[i];
          best_label = gallery[i].label;
        }
      }
      return best_label;
    }
    case HybridStrategy::kMicroAverage: {
      // Average theta per model (class, model_id), argmin over models.
      std::map<std::pair<int, int>, std::pair<double, int>> acc;
      for (std::size_t i = 0; i < theta.size(); ++i) {
        if (theta[i] >= kHuge) continue;
        auto& entry =
            acc[{ClassIndex(gallery[i].label), gallery[i].model_id}];
        entry.first += theta[i];
        entry.second += 1;
      }
      double best = kHuge;
      ObjectClass best_label = fallback;
      for (const auto& [key, entry] : acc) {
        const double mean = entry.first / entry.second;
        if (mean < best) {
          best = mean;
          best_label = ClassFromIndex(key.first);
        }
      }
      return best_label;
    }
    case HybridStrategy::kMacroAverage: {
      std::array<double, kNumClasses> sums{};
      std::array<int, kNumClasses> counts{};
      for (std::size_t i = 0; i < theta.size(); ++i) {
        if (theta[i] >= kHuge) continue;
        const auto c =
            static_cast<std::size_t>(ClassIndex(gallery[i].label));
        sums[c] += theta[i];
        ++counts[c];
      }
      double best = kHuge;
      ObjectClass best_label = fallback;
      for (int c = 0; c < kNumClasses; ++c) {
        if (counts[static_cast<std::size_t>(c)] == 0) continue;
        const double mean = sums[static_cast<std::size_t>(c)] /
                            counts[static_cast<std::size_t>(c)];
        if (mean < best) {
          best = mean;
          best_label = ClassFromIndex(c);
        }
      }
      return best_label;
    }
  }
  return fallback;
}

bool ShapeModalityUsable(const ImageFeatures& input) {
  if (!input.valid) return false;
  for (double h : input.hu) {
    if (!std::isfinite(h)) return false;
  }
  return true;
}

bool ColorModalityUsable(const ImageFeatures& input) {
  double mass = 0.0;
  for (double b : input.histogram.bins()) {
    if (!std::isfinite(b) || b < 0.0) return false;
    mass += b;
  }
  return mass > 0.0;
}

MatchingClassifier::MatchingClassifier(std::vector<ImageFeatures> gallery)
    : gallery_(std::move(gallery)) {}

std::vector<ObjectClass> MatchingClassifier::ClassifyAll(
    const std::vector<ImageFeatures>& inputs) {
  std::vector<ObjectClass> predictions;
  predictions.reserve(inputs.size());
  for (const auto& input : inputs) predictions.push_back(Classify(input));
  return predictions;
}

ObjectClass MatchingClassifier::FallbackLabel() const {
  if (gallery_.empty()) return ClassFromIndex(0);
  return gallery_.front().label;
}

RandomBaselineClassifier::RandomBaselineClassifier(
    std::vector<ImageFeatures> gallery, std::uint64_t seed)
    : MatchingClassifier(std::move(gallery)), rng_(seed) {}

ObjectClass RandomBaselineClassifier::Classify(
    const ImageFeatures& /*input*/) {
  return ClassFromIndex(static_cast<int>(rng_.Index(kNumClasses)));
}

ShapeOnlyClassifier::ShapeOnlyClassifier(std::vector<ImageFeatures> gallery,
                                         ShapeMatchMethod method)
    : MatchingClassifier(std::move(gallery)), method_(method) {}

ObjectClass ShapeOnlyClassifier::Classify(const ImageFeatures& input) {
  if (!ShapeModalityUsable(input)) {
    ++degradation_.fallback;
    return FallbackLabel();
  }
  const PartialBest best =
      ShapeArgminOverRange(input, gallery(), 0, gallery().size(), method_);
  return best.found ? best.label : FallbackLabel();
}

ColorOnlyClassifier::ColorOnlyClassifier(std::vector<ImageFeatures> gallery,
                                         HistCompareMethod method)
    : MatchingClassifier(std::move(gallery)), method_(method) {}

ObjectClass ColorOnlyClassifier::Classify(const ImageFeatures& input) {
  if (!input.valid) {
    ++degradation_.fallback;
    return FallbackLabel();
  }
  const PartialBest best =
      ColorArgbestOverRange(input, gallery(), 0, gallery().size(), method_);
  return best.found ? best.label : FallbackLabel();
}

HybridClassifier::HybridClassifier(std::vector<ImageFeatures> gallery,
                                   ShapeMatchMethod shape_method,
                                   HistCompareMethod color_method,
                                   double alpha, double beta,
                                   HybridStrategy strategy)
    : MatchingClassifier(std::move(gallery)),
      shape_method_(shape_method),
      color_method_(color_method),
      alpha_(alpha),
      beta_(beta),
      strategy_(strategy) {}

std::vector<double> HybridClassifier::ScoresForModes(
    const ImageFeatures& input, bool use_shape, bool use_color,
    bool* shape_live_out, bool* color_live_out) const {
  const std::size_t n = gallery().size();

  // Per-view raw scores of each requested modality; a non-finite score
  // (e.g. an injected NaN) marks that view's modality unusable.
  std::vector<double> shape_scores(n, kHuge);
  std::vector<double> color_scores(n, kHuge);
  std::size_t shape_usable = 0;
  std::size_t color_usable = 0;
  ComputeHybridScoresOverRange(input, gallery(), 0, n, shape_method_,
                               color_method_, use_shape, use_color,
                               &shape_scores, &color_scores, &shape_usable,
                               &color_usable);

  // A modality whose every view score is poisoned has collapsed for this
  // input; the surviving modality alone drives theta.
  const bool shape_live = use_shape && shape_usable > 0;
  const bool color_live = use_color && color_usable > 0;
  if (shape_live_out != nullptr) *shape_live_out = shape_live;
  if (color_live_out != nullptr) *color_live_out = color_live;

  return AssembleHybridTheta(shape_scores, color_scores, alpha_, beta_,
                             shape_live, color_live);
}

std::vector<double> HybridClassifier::ViewScores(
    const ImageFeatures& input) const {
  const bool usable = ShapeModalityUsable(input) && ColorModalityUsable(input);
  return ScoresForModes(input, usable, usable);
}

ObjectClass HybridClassifier::ArgminLabel(
    const std::vector<double>& theta) const {
  return HybridArgminLabel(theta, gallery(), strategy_, FallbackLabel());
}

ObjectClass HybridClassifier::Classify(const ImageFeatures& input) {
  const bool use_shape = ShapeModalityUsable(input);
  const bool use_color = ColorModalityUsable(input);

  // Graceful degradation: a frame with one poisoned modality is matched
  // on the surviving one and recorded, instead of failing outright.
  if (!use_shape && !use_color) {
    ++degradation_.fallback;
    return FallbackLabel();
  }
  bool shape_live = false;
  bool color_live = false;
  const std::vector<double> theta =
      ScoresForModes(input, use_shape, use_color, &shape_live, &color_live);
  if (!shape_live && !color_live) {
    ++degradation_.fallback;
    return FallbackLabel();
  }
  if (shape_live != color_live) {
    if (shape_live) {
      ++degradation_.shape_only;
    } else {
      ++degradation_.color_only;
    }
  }
  return ArgminLabel(theta);
}

}  // namespace snor
