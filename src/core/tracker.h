#ifndef SNOR_CORE_TRACKER_H_
#define SNOR_CORE_TRACKER_H_

#include <vector>

#include "core/segmentation.h"
#include "features/histogram.h"

namespace snor {

/// \brief One tracked object hypothesis maintained across frames.
struct Track {
  int id = 0;
  /// Last known bounding box (frame coordinates).
  Rect bbox;
  /// Appearance model: L1-normalized RGB histogram of the last crop.
  ColorHistogram appearance{8};
  /// Frames since the track was last matched.
  int missed_frames = 0;
  /// Total frames the track was observed in.
  int hits = 0;
};

/// \brief Tracker options.
struct TrackerOptions {
  /// Maximum centre distance (pixels) for a spatial match.
  double max_center_distance = 60.0;
  /// Minimum histogram intersection for an appearance match.
  double min_appearance_similarity = 0.4;
  /// Tracks unmatched for more than this many frames are dropped.
  int max_missed_frames = 2;
  /// Histogram bins per channel for the appearance model.
  int hist_bins = 8;
};

/// \brief Frame-to-frame object re-identification, the task the paper's
/// Normalized-X-Corr reference architecture was built for (Subramaniam et
/// al.: person re-id "across successive frames"). Segmented regions are
/// associated to existing tracks greedily by appearance similarity
/// (histogram intersection) gated by spatial proximity; unmatched regions
/// open new tracks, stale tracks expire.
class Tracker {
 public:
  explicit Tracker(const TrackerOptions& options = {});

  /// Consumes one frame's segmented regions; returns the track id
  /// assigned to each region (index-aligned with `regions`).
  std::vector<int> Update(const std::vector<SegmentedObject>& regions);

  /// Currently alive tracks.
  const std::vector<Track>& tracks() const { return tracks_; }

  /// Total number of distinct track ids ever created.
  int total_tracks_created() const { return next_id_ - 1; }

 private:
  TrackerOptions options_;
  std::vector<Track> tracks_;
  int next_id_ = 1;
};

}  // namespace snor

#endif  // SNOR_CORE_TRACKER_H_
