#include "core/tracker.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace snor {
namespace {

double CenterDistance(const Rect& a, const Rect& b) {
  const double ax = a.x + a.width / 2.0;
  const double ay = a.y + a.height / 2.0;
  const double bx = b.x + b.width / 2.0;
  const double by = b.y + b.height / 2.0;
  return std::hypot(ax - bx, ay - by);
}

}  // namespace

Tracker::Tracker(const TrackerOptions& options) : options_(options) {
  SNOR_CHECK_GT(options.max_center_distance, 0.0);
  SNOR_CHECK_GE(options.max_missed_frames, 0);
}

std::vector<int> Tracker::Update(
    const std::vector<SegmentedObject>& regions) {
  // Appearance of each incoming region. Background (black-mask) pixels
  // are excluded so the model describes the object, not the mask.
  std::vector<ColorHistogram> appearances;
  appearances.reserve(regions.size());
  for (const auto& region : regions) {
    const ImageU8& crop = region.crop;
    ImageU8 mask(crop.width(), crop.height(), 1, 0);
    for (int y = 0; y < crop.height(); ++y) {
      for (int x = 0; x < crop.width(); ++x) {
        if (crop.at(y, x, 0) || crop.at(y, x, 1) || crop.at(y, x, 2)) {
          mask.at(y, x) = 255;
        }
      }
    }
    ColorHistogram h =
        ColorHistogram::Compute(crop, &mask, options_.hist_bins);
    h.NormalizeL1();
    appearances.push_back(std::move(h));
  }

  // Greedy best-first association: repeatedly take the highest-similarity
  // (track, region) pair within the spatial gate.
  std::vector<int> assigned(regions.size(), -1);
  std::vector<bool> track_used(tracks_.size(), false);
  for (;;) {
    double best_sim = options_.min_appearance_similarity;
    int best_track = -1;
    int best_region = -1;
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
      if (track_used[t]) continue;
      for (std::size_t r = 0; r < regions.size(); ++r) {
        if (assigned[r] != -1) continue;
        if (CenterDistance(tracks_[t].bbox, regions[r].bbox) >
            options_.max_center_distance) {
          continue;
        }
        const double sim =
            CompareHistograms(tracks_[t].appearance, appearances[r],
                              HistCompareMethod::kIntersection);
        if (sim >= best_sim) {
          best_sim = sim;
          best_track = static_cast<int>(t);
          best_region = static_cast<int>(r);
        }
      }
    }
    if (best_track < 0) break;
    Track& track = tracks_[static_cast<std::size_t>(best_track)];
    track.bbox = regions[static_cast<std::size_t>(best_region)].bbox;
    track.appearance = appearances[static_cast<std::size_t>(best_region)];
    track.missed_frames = 0;
    ++track.hits;
    track_used[static_cast<std::size_t>(best_track)] = true;
    assigned[static_cast<std::size_t>(best_region)] = track.id;
  }

  // Unmatched regions spawn tracks.
  for (std::size_t r = 0; r < regions.size(); ++r) {
    if (assigned[r] != -1) continue;
    Track track;
    track.id = next_id_++;
    track.bbox = regions[r].bbox;
    track.appearance = appearances[r];
    track.hits = 1;
    assigned[r] = track.id;
    tracks_.push_back(std::move(track));
  }

  // Age out unmatched tracks.
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    if (t < track_used.size() && track_used[t]) continue;
    // Newly created tracks (beyond track_used size) were just matched.
    if (t >= track_used.size()) continue;
    ++tracks_[t].missed_frames;
  }
  tracks_.erase(
      std::remove_if(tracks_.begin(), tracks_.end(),
                     [&](const Track& track) {
                       return track.missed_frames >
                              options_.max_missed_frames;
                     }),
      tracks_.end());

  return assigned;
}

}  // namespace snor
