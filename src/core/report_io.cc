#include "core/report_io.h"

#include "util/string_util.h"

namespace snor {

TablePrinter ConfusionTable(const EvalReport& report) {
  std::vector<std::string> header = {"Truth \\ Pred"};
  for (ObjectClass cls : AllClasses()) {
    header.emplace_back(ObjectClassName(cls));
  }
  TablePrinter table(std::move(header));
  for (int t = 0; t < kNumClasses; ++t) {
    std::vector<std::string> row = {
        std::string(ObjectClassName(ClassFromIndex(t)))};
    for (int p = 0; p < kNumClasses; ++p) {
      row.push_back(StrFormat(
          "%d", report.confusion[static_cast<std::size_t>(t)]
                                [static_cast<std::size_t>(p)]));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

CsvWriter ReportToCsv(const EvalReport& report) {
  // Timing columns sit at the end so older consumers that read by prefix
  // keep working; the run-level stage seconds repeat on every class row.
  CsvWriter csv({"class", "support", "true_positives", "recall",
                 "precision_paper", "f1_paper", "precision_std", "f1_std",
                 "extract_s", "match_s", "score_s"});
  for (int c = 0; c < kNumClasses; ++c) {
    const ClassMetrics& m = report.per_class[static_cast<std::size_t>(c)];
    csv.AddRow({std::string(ObjectClassName(ClassFromIndex(c))),
                StrFormat("%d", m.support), StrFormat("%d", m.true_positives),
                StrFormat("%.6f", m.recall),
                StrFormat("%.6f", m.precision_paper),
                StrFormat("%.6f", m.f1_paper),
                StrFormat("%.6f", m.precision_std),
                StrFormat("%.6f", m.f1_std),
                StrFormat("%.6f", report.timing.extract_s),
                StrFormat("%.6f", report.timing.match_s),
                StrFormat("%.6f", report.timing.score_s)});
  }
  return csv;
}

Status WriteReportCsv(const EvalReport& report, const std::string& path) {
  return ReportToCsv(report).WriteFile(path);
}

}  // namespace snor
