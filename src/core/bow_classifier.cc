#include "core/bow_classifier.h"

#include <cmath>

#include "util/check.h"

namespace snor {

BowClassifier::BowClassifier(const Dataset& gallery,
                             const BowOptions& options)
    : options_(options) {
  SNOR_CHECK(!gallery.items.empty());

  // Pool all gallery descriptors and remember per-view boundaries.
  std::vector<FloatDescriptor> pool;
  std::vector<std::vector<FloatDescriptor>> per_view;
  for (const auto& item : gallery.items) {
    per_view.push_back(Extract(item.image));
    labels_.push_back(item.label);
    for (const auto& d : per_view.back()) pool.push_back(d);
  }
  SNOR_CHECK(!pool.empty());

  KMeansOptions kmeans;
  kmeans.k = options_.vocabulary_size;
  kmeans.seed = options_.seed;
  vocabulary_ = KMeansCluster(pool, kmeans).centroids;

  view_histograms_.reserve(per_view.size());
  for (const auto& descriptors : per_view) {
    view_histograms_.push_back(HistogramOf(descriptors));
  }
}

std::vector<FloatDescriptor> BowClassifier::Extract(
    const ImageU8& image) const {
  if (options_.use_surf) return ExtractSurf(image, options_.surf).descriptors;
  return ExtractSift(image, options_.sift).descriptors;
}

std::vector<float> BowClassifier::HistogramOf(
    const std::vector<FloatDescriptor>& descriptors) const {
  std::vector<float> hist(vocabulary_.size(), 0.0f);
  for (const auto& d : descriptors) {
    const int word = NearestCentroid(vocabulary_, d);
    if (word >= 0) hist[static_cast<std::size_t>(word)] += 1.0f;
  }
  float total = 0.0f;
  for (float v : hist) total += v;
  if (total > 0.0f) {
    for (float& v : hist) v /= total;
  }
  return hist;
}

std::vector<float> BowClassifier::WordHistogram(const ImageU8& image) const {
  return HistogramOf(Extract(image));
}

namespace {

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace

ObjectClass BowClassifier::Classify(const ImageU8& image) const {
  const std::vector<float> hist = WordHistogram(image);
  double best = -2.0;
  ObjectClass best_label = labels_.front();
  for (std::size_t v = 0; v < view_histograms_.size(); ++v) {
    const double sim = Cosine(hist, view_histograms_[v]);
    if (sim > best) {
      best = sim;
      best_label = labels_[v];
    }
  }
  return best_label;
}

std::vector<ObjectClass> BowClassifier::ClassifyAll(
    const Dataset& inputs) const {
  std::vector<ObjectClass> predictions;
  predictions.reserve(inputs.size());
  for (const auto& item : inputs.items) {
    predictions.push_back(Classify(item.image));
  }
  return predictions;
}

}  // namespace snor
