#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"
#include "util/string_util.h"

namespace snor {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  SNOR_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SNOR_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  SNOR_CHECK_EQ(values.size() + 1, header_.size());
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) {
    cells.push_back(StrFormat("%.*f", precision, v));
  }
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_rule = [&] {
    os << '+';
    for (std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  print_rule();
  print_cells(header_);
  print_rule();
  for (const auto& row : rows_) print_cells(row);
  print_rule();
}

std::string TablePrinter::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace snor
