#ifndef SNOR_UTIL_FAULT_H_
#define SNOR_UTIL_FAULT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace snor {

/// \brief Named fault-injection points.
///
/// Each point models one failure class a deployed robot actually sees;
/// tests and benches arm them at runtime to exercise the degraded paths
/// deterministically (same seed, same rate => same fire pattern).
enum class FaultPoint {
  /// An IO read (file open / frame ingestion) fails outright.
  kIoRead = 0,
  /// A file payload ends early even though the header was fine.
  kTruncatedFile,
  /// Pixel bytes are silently corrupted after a successful read.
  kCorruptPixel,
  /// A shape-match score comes back NaN (poisoned shape modality).
  kNanScore,
  /// A parallel worker stalls for a few milliseconds.
  kSlowWorker,
  kNumFaultPoints,
};

/// Short stable name for a fault point ("io-read", "nan-score", ...).
std::string_view FaultPointName(FaultPoint point);

/// \brief Global registry of armed fault points.
///
/// Disarmed points cost one relaxed atomic load per probe, so injection
/// sites stay in production code. The fire decision hashes
/// (seed, point, probe index), making a run reproducible for a fixed
/// probe sequence regardless of wall clock.
class FaultInjector {
 public:
  /// The process-wide injector used by all `SNOR_FAULT` sites.
  static FaultInjector& Global();

  /// Arms `point`: each probe fires with `probability`, derived from
  /// `seed`. Resets the point's probe/fire counters.
  void Arm(FaultPoint point, double probability, std::uint64_t seed);

  /// Disarms one point (probes return "no fault" again).
  void Disarm(FaultPoint point);

  /// Disarms every point and clears all counters.
  void DisarmAll();

  bool armed(FaultPoint point) const;

  /// Decides whether this probe of `point` fires. Counts the probe.
  bool ShouldFire(FaultPoint point);

  /// Number of probes evaluated since the point was armed.
  std::uint64_t probe_count(FaultPoint point) const;

  /// Number of probes that fired since the point was armed.
  std::uint64_t fire_count(FaultPoint point) const;

 private:
  FaultInjector() = default;

  struct PointState {
    std::atomic<bool> armed{false};
    std::atomic<std::uint64_t> probes{0};
    std::atomic<std::uint64_t> fires{0};
    double probability = 0.0;
    std::uint64_t seed = 0;
  };

  PointState points_[static_cast<std::size_t>(FaultPoint::kNumFaultPoints)];
};

/// True when `point` is armed and this probe fires.
bool FaultFires(FaultPoint point);

/// Probes an IO-shaped fault point: returns `Unavailable` (retryable)
/// when the fault fires, OK otherwise. `detail` names the operation.
[[nodiscard]] Status InjectFault(FaultPoint point, const std::string& detail);

/// Returns NaN instead of `value` when `kNanScore` fires.
double MaybePoisonScore(double value);

/// Sleeps ~2ms when `kSlowWorker` fires (models a stalled worker).
void MaybeInjectDelay();

/// Deterministically flips bytes of `data` when `kCorruptPixel` fires
/// (silent payload corruption: the read still "succeeds").
void MaybeCorruptBytes(std::uint8_t* data, std::size_t size);

/// \brief RAII arm/disarm for tests: arms `point` on construction and
/// disarms it (clearing counters) on destruction.
class ScopedFault {
 public:
  ScopedFault(FaultPoint point, double probability, std::uint64_t seed);
  ~ScopedFault();

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  FaultPoint point_;
};

}  // namespace snor

#endif  // SNOR_UTIL_FAULT_H_
