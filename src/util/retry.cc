#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace snor {
namespace internal {

void SleepForMillis(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

double NextBackoffMillis(double current_ms, const RetryOptions& options) {
  const double next = current_ms * std::max(1.0, options.backoff_multiplier);
  return std::min(next, options.max_backoff_ms);
}

double ApplyJitter(double backoff_ms, double jitter, Rng& rng) {
  if (jitter <= 0.0) return backoff_ms;
  const double fraction = std::min(jitter, 1.0);
  return backoff_ms * (1.0 - fraction * rng.UniformDouble());
}

void RecordRetryAttempt() {
  static obs::Counter& attempts =
      obs::MetricsRegistry::Global().counter("util.retry.attempts");
  attempts.Increment();
}

void RecordRetryBackoff(double ms) {
  static obs::Counter& backoffs =
      obs::MetricsRegistry::Global().counter("util.retry.backoffs");
  static obs::Histogram& backoff_ms =
      obs::MetricsRegistry::Global().histogram("util.retry.backoff_ms");
  backoffs.Increment();
  backoff_ms.Record(ms);
}

Status DeadlineError(const RetryOptions& options, int attempts,
                     double elapsed_ms, const Status& last) {
  static obs::Counter& deadlines =
      obs::MetricsRegistry::Global().counter("util.retry.deadline_exceeded");
  deadlines.Increment();
  return Status::DeadlineExceeded(StrFormat(
      "deadline of %.1fms exhausted after %d attempt(s) in %.1fms; last: %s",
      options.deadline_ms, attempts, elapsed_ms, last.ToString().c_str()));
}

}  // namespace internal
}  // namespace snor
