#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/string_util.h"

namespace snor {
namespace internal {

void SleepForMillis(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

double NextBackoffMillis(double current_ms, const RetryOptions& options) {
  const double next = current_ms * std::max(1.0, options.backoff_multiplier);
  return std::min(next, options.max_backoff_ms);
}

Status DeadlineError(const RetryOptions& options, int attempts,
                     const Status& last) {
  return Status::DeadlineExceeded(
      StrFormat("deadline of %.1fms exhausted after %d attempt(s); last: %s",
                options.deadline_ms, attempts, last.ToString().c_str()));
}

}  // namespace internal
}  // namespace snor
