#ifndef SNOR_UTIL_CSV_H_
#define SNOR_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace snor {

/// \brief Minimal CSV writer for exporting experiment results.
///
/// Fields containing commas, quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }

  /// Serializes header + rows to CSV text.
  std::string ToString() const;

  /// Writes the CSV to `path`.
  [[nodiscard]] Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace snor

#endif  // SNOR_UTIL_CSV_H_
