#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/trace.h"

namespace snor {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

/// Monotonic seconds since the first log record of the process.
double SecondsSinceStart() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool ParseLogLevelEnvOnce() {
  const char* env = std::getenv("SNOR_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return false;
  LogLevel level = LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) {
    level = LogLevel::kDebug;
  } else if (std::strcmp(env, "info") == 0) {
    level = LogLevel::kInfo;
  } else if (std::strcmp(env, "warning") == 0 ||
             std::strcmp(env, "warn") == 0) {
    level = LogLevel::kWarning;
  } else if (std::strcmp(env, "error") == 0) {
    level = LogLevel::kError;
  } else {
    std::fprintf(stderr,
                 "[WARN  logging] ignoring unknown SNOR_LOG_LEVEL=%s "
                 "(want debug|info|warning|error)\n",
                 env);
    return false;
  }
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

/// Applies SNOR_LOG_LEVEL exactly once, before the first threshold read.
/// A later SetLogLevel still wins (tests rely on that).
void InitLogLevelFromEnv() {
  static const bool applied = ParseLogLevelEnvOnce();
  (void)applied;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  InitLogLevelFromEnv();  // Mark the env as consumed so it can't override.
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  InitLogLevelFromEnv();
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               static_cast<int>(GetLogLevel())),
      level_(level) {
  if (enabled_) {
    char prefix[96];
    std::snprintf(prefix, sizeof(prefix), "[%9.3fs t%02d %s %s:%d] ",
                  SecondsSinceStart(), obs::CurrentThreadId(),
                  LevelTag(level_), Basename(file), line);
    stream_ << prefix;
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace snor
