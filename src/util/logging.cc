#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace snor {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelTag(level_) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace snor
