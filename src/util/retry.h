#ifndef SNOR_UTIL_RETRY_H_
#define SNOR_UTIL_RETRY_H_

#include <string>
#include <type_traits>
#include <utility>

#include "util/status.h"
#include "util/stopwatch.h"

namespace snor {

/// \brief Bounded retry-with-backoff policy for retryable stages
/// (gallery load, frame ingestion). Non-retryable errors (bad data,
/// invalid arguments) are returned immediately; see `IsRetryable`.
struct RetryOptions {
  /// Total attempts, including the first (1 = no retries).
  int max_attempts = 3;
  /// Sleep before the first retry.
  double initial_backoff_ms = 1.0;
  /// Backoff multiplier between consecutive retries.
  double backoff_multiplier = 2.0;
  /// Upper bound for a single backoff sleep.
  double max_backoff_ms = 50.0;
  /// Overall wall-clock budget; 0 disables the deadline. When exceeded,
  /// the loop stops and returns `DeadlineExceeded`.
  double deadline_ms = 0.0;
};

namespace internal {

/// Sleeps for `ms` milliseconds (extracted so the template stays small).
void SleepForMillis(double ms);

/// Clamp-and-advance helper for the exponential backoff schedule.
double NextBackoffMillis(double current_ms, const RetryOptions& options);

[[nodiscard]] Status DeadlineError(const RetryOptions& options, int attempts,
                                   const Status& last);

/// Metrics hooks (defined in retry.cc so the template does not pull in
/// the obs headers): attempts, backoff sleeps, and total backoff time.
void RecordRetryAttempt();
void RecordRetryBackoff(double ms);

template <typename R>
[[nodiscard]] Status StatusOf(const R& result) {
  if constexpr (std::is_same_v<R, Status>) {
    return result;
  } else {
    return result.status();
  }
}

}  // namespace internal

/// Runs `fn` (returning `Status` or `Result<T>`) until it succeeds, the
/// error is non-retryable, attempts are exhausted, or the deadline
/// passes. Returns the final outcome (or `DeadlineExceeded`).
template <typename Fn>
[[nodiscard]] auto RetryWithBackoff(const RetryOptions& options, Fn&& fn)
    -> std::decay_t<decltype(fn())> {
  Stopwatch clock;
  double backoff_ms = options.initial_backoff_ms;
  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  for (int attempt = 1;; ++attempt) {
    internal::RecordRetryAttempt();
    auto outcome = fn();
    const Status status = internal::StatusOf(outcome);
    if (status.ok() || !IsRetryable(status) || attempt >= attempts) {
      return outcome;
    }
    if (options.deadline_ms > 0.0 &&
        clock.ElapsedMillis() + backoff_ms > options.deadline_ms) {
      return internal::DeadlineError(options, attempt, status);
    }
    internal::RecordRetryBackoff(backoff_ms);
    internal::SleepForMillis(backoff_ms);
    backoff_ms = internal::NextBackoffMillis(backoff_ms, options);
  }
}

}  // namespace snor

#endif  // SNOR_UTIL_RETRY_H_
