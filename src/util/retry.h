#ifndef SNOR_UTIL_RETRY_H_
#define SNOR_UTIL_RETRY_H_

#include <string>
#include <type_traits>
#include <utility>

#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace snor {

/// \brief Bounded retry-with-backoff policy for retryable stages
/// (gallery load, frame ingestion). Non-retryable errors (bad data,
/// invalid arguments) are returned immediately; see `IsRetryable`.
struct RetryOptions {
  /// Total attempts, including the first (1 = no retries).
  int max_attempts = 3;
  /// Sleep before the first retry.
  double initial_backoff_ms = 1.0;
  /// Backoff multiplier between consecutive retries.
  double backoff_multiplier = 2.0;
  /// Upper bound for a single backoff sleep.
  double max_backoff_ms = 50.0;
  /// Overall wall-clock budget; 0 disables the deadline. Checked after
  /// every attempt returns and before every backoff sleep: a retryable
  /// failure past the budget yields `DeadlineExceeded` (a success is
  /// returned even when it finished over budget — the work is done).
  double deadline_ms = 0.0;
  /// Fraction of each backoff sleep randomized away: a sleep is drawn
  /// uniformly from [backoff * (1 - jitter), backoff], so 1.0 is
  /// AWS-style full jitter. Decorrelates the retry storms of many queued
  /// requests (thundering herds); 0 keeps the deterministic schedule.
  double jitter = 0.0;
  /// Seed for the jitter stream (util/rng): equal seeds replay identical
  /// sleep sequences, keeping tests deterministic.
  std::uint64_t jitter_seed = 2019;
};

namespace internal {

/// Sleeps for `ms` milliseconds (extracted so the template stays small).
void SleepForMillis(double ms);

/// Clamp-and-advance helper for the exponential backoff schedule.
double NextBackoffMillis(double current_ms, const RetryOptions& options);

/// One jittered sleep duration: uniform in [backoff * (1 - jitter),
/// backoff]. Draws from `rng` only when jitter > 0, so jitter-free
/// schedules stay bit-identical to the legacy behaviour.
double ApplyJitter(double backoff_ms, double jitter, Rng& rng);

[[nodiscard]] Status DeadlineError(const RetryOptions& options, int attempts,
                                   double elapsed_ms, const Status& last);

/// Metrics hooks (defined in retry.cc so the template does not pull in
/// the obs headers): attempts, backoff sleeps, and total backoff time.
void RecordRetryAttempt();
void RecordRetryBackoff(double ms);

template <typename R>
[[nodiscard]] Status StatusOf(const R& result) {
  if constexpr (std::is_same_v<R, Status>) {
    return result;
  } else {
    return result.status();
  }
}

}  // namespace internal

/// Runs `fn` (returning `Status` or `Result<T>`) until it succeeds, the
/// error is non-retryable, attempts are exhausted, or the deadline
/// passes. Returns the final outcome (or `DeadlineExceeded`).
template <typename Fn>
[[nodiscard]] auto RetryWithBackoff(const RetryOptions& options, Fn&& fn)
    -> std::decay_t<decltype(fn())> {
  Stopwatch clock;
  Rng jitter_rng(options.jitter_seed);
  double backoff_ms = options.initial_backoff_ms;
  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  for (int attempt = 1;; ++attempt) {
    internal::RecordRetryAttempt();
    auto outcome = fn();
    const Status status = internal::StatusOf(outcome);
    if (status.ok() || !IsRetryable(status)) {
      return outcome;
    }
    // A slow attempt can itself exhaust the budget: check right after it
    // returns (not only before the next sleep), so a final attempt that
    // overran the deadline reports DeadlineExceeded, never a quiet
    // overrun.
    if (options.deadline_ms > 0.0 &&
        clock.ElapsedMillis() >= options.deadline_ms) {
      return internal::DeadlineError(options, attempt, clock.ElapsedMillis(),
                                     status);
    }
    if (attempt >= attempts) {
      return outcome;
    }
    const double sleep_ms =
        internal::ApplyJitter(backoff_ms, options.jitter, jitter_rng);
    if (options.deadline_ms > 0.0 &&
        clock.ElapsedMillis() + sleep_ms > options.deadline_ms) {
      return internal::DeadlineError(options, attempt, clock.ElapsedMillis(),
                                     status);
    }
    internal::RecordRetryBackoff(sleep_ms);
    internal::SleepForMillis(sleep_ms);
    backoff_ms = internal::NextBackoffMillis(backoff_ms, options);
  }
}

}  // namespace snor

#endif  // SNOR_UTIL_RETRY_H_
