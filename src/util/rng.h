#ifndef SNOR_UTIL_RNG_H_
#define SNOR_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace snor {

/// \brief Deterministic pseudo-random generator (xoshiro256++ seeded via
/// SplitMix64).
///
/// Every stochastic component in the library (dataset synthesis, weight
/// init, shuffling, the random baseline) draws from an explicitly seeded
/// `Rng`, so all experiments are reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit draw.
  std::uint64_t NextU64();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal draw (Box-Muller, cached pair).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw: true with probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element index for a container of size n > 0.
  std::size_t Index(std::size_t n) {
    SNOR_CHECK_GT(n, 0u);
    return static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Derives an independent child generator (for parallel/per-item streams).
  Rng Fork();

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace snor

#endif  // SNOR_UTIL_RNG_H_
