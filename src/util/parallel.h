#ifndef SNOR_UTIL_PARALLEL_H_
#define SNOR_UTIL_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace snor {

/// Number of worker threads to use by default (hardware concurrency,
/// at least 1).
int DefaultThreadCount();

/// Runs `fn(i)` for every i in [0, n) across `n_threads` workers using
/// dynamic (atomic-counter) scheduling. `fn` must be safe to call
/// concurrently for distinct indices; results must be written to
/// per-index slots. Runs inline when n_threads <= 1 or n is small, so
/// output is bit-identical regardless of thread count.
///
/// Fault tolerance: if a worker throws, no new indices are handed out,
/// the pool joins, and the *first* captured exception is rethrown on the
/// calling thread (the process is never terminated). Indices already
/// claimed by other workers may still complete.
void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 int n_threads = 0);

}  // namespace snor

#endif  // SNOR_UTIL_PARALLEL_H_
