#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace snor {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  SNOR_CHECK_LE(lo, hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<std::int64_t>(NextU64());
  }
  // Unbiased rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (-span) % span;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
  }
}

double Rng::UniformDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace snor
