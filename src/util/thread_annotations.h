#ifndef SNOR_UTIL_THREAD_ANNOTATIONS_H_
#define SNOR_UTIL_THREAD_ANNOTATIONS_H_

/// Locking-discipline annotations understood by tools/analyze
/// (snor_analyze) and, where noted, by clang's -Wthread-safety.
///
/// The project uses *comment* annotations so that the conventions work
/// with any compiler and never change codegen:
///
///   // GUARDED_BY(m)    on a member/local declaration line: the value
///                       is protected by mutex `m`. Special guards:
///                       `caller` (serialized by the caller, never
///                       touched from worker lambdas), `atomic` (the
///                       field is std::atomic), `per_worker_slot`
///                       (workers may write only their own subscript).
///   // LOCK_RANK(n)     on a std::mutex declaration line: assigns the
///                       mutex a global acquisition rank. Lower rank =
///                       acquired first (outer lock); every nested
///                       acquisition must be of a strictly higher rank.
///                       snor_analyze builds the whole-program
///                       acquisition graph and reports rank inversions
///                       and cycles as `lock-order-cycle`.
///
/// Current rank table (keep sorted; pick a free gap for a new mutex):
///
///   10  RequestQueue::mutex_        (src/serve/request_queue.h)
///   15  IntrospectServer::mutex_    (src/obs/introspect.h) — guards the
///       handler map only; handlers are copied out and invoked unlocked,
///       so whatever a handler itself locks (trace store, metrics) ranks
///       higher.
///   20  TraceRecorder::registry_mutex_ (src/obs/trace.h)
///   25  RequestTraceStore::mutex_   (src/obs/trace.h) — taken by Offer
///       while a span records; may take MetricsRegistry (40) but never
///       a buffer or queue lock.
///   30  TraceRecorder::ThreadBuffer::mutex (src/obs/trace.cc) —
///       acquired under registry_mutex_ during Export/Reset.
///   35  SloMonitor::mutex_          (src/obs/slo.h) — leaf ring update;
///       callers (RecognitionService) hold no lock when recording.
///   40  MetricsRegistry::mutex_     (src/obs/metrics.h)
///   50  ParallelFor error_mutex     (src/util/parallel.cc) — leaf.
///
/// How to annotate a new mutex:
///   1. Decide where it sits in the nesting order relative to the table
///      above (what can be held when it is taken, and what it may take
///      while held). Unrelated mutexes still get distinct ranks — the
///      rank order only binds pairs that actually nest.
///   2. Append `// LOCK_RANK(n)` to its declaration line, update the
///      table here, and re-run `tools/run_checks.sh` (the
///      snor_analyze_tree ctest fails on any inversion or cycle).
///
/// Borrowed-view lifetime annotations (read by the snor_analyze borrow
/// pass — see tools/analyze/borrow_checks.h; DESIGN.md §16):
///
///   SNOR_LIFETIME_BOUND  on (or the line above) a function returning a
///                       view — raw pointer, std::span, string_view or
///                       iterator into owned storage. Declares the
///                       contract "the return value borrows from this
///                       object and dies with it / at the next
///                       generation boundary". Without it, view-shaped
///                       returns are reported as `view-return`
///                       (span/string_view anywhere; pointer/iterator
///                       on OWNS_VIEWS classes).
///   SNOR_OWNS_VIEWS      two roles: on a class-head line it marks the
///                       class as an owner that legitimately hands out
///                       views of its storage (so its pointer/iterator
///                       accessors are held to the LIFETIME_BOUND
///                       contract); on a member declaration line it
///                       sanctions that member as generation-managed
///                       view storage, so stores into it are not
///                       `view-escape` findings. Sanctioned members
///                       carry the burden of generation discipline:
///                       they must be re-derived, not retained, across
///                       any swap/reset/Load* of the data they view.
///
/// Both also work in comment form (`// SNOR_LIFETIME_BOUND`) for
/// declarations where a macro cannot appear (e.g. inside a doc block).
/// The analyzer's kill set — what ends a view's validity — is:
/// swap()/reset()/Load*() on the owner, owner reassignment, std::swap
/// of the owner, any helper in the cross-TU kills-closure, and mutating
/// container methods (push_back/resize/clear/…) for `view-invalidation`.
///
/// The macros below additionally light up clang's static thread-safety
/// analysis (`run_checks.sh --thread-safety`) when the attribute is
/// available; elsewhere they compile away. They are optional — the
/// comment form is what snor_analyze reads.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SNOR_GUARDED_BY(x) __attribute__((guarded_by(x)))
#else
#define SNOR_GUARDED_BY(x)
#endif
#if __has_attribute(acquired_after)
#define SNOR_ACQUIRED_AFTER(...) __attribute__((acquired_after(__VA_ARGS__)))
#else
#define SNOR_ACQUIRED_AFTER(...)
#endif
#else
#define SNOR_GUARDED_BY(x)
#define SNOR_ACQUIRED_AFTER(...)
#endif

// Borrowed-view vocabulary. SNOR_LIFETIME_BOUND maps to clang's
// [[clang::lifetimebound]] where available so the compiler's own
// dangling-reference diagnostics see the same contract snor_analyze
// enforces; SNOR_OWNS_VIEWS is a pure marker (the analyzer reads the
// token, codegen never changes).
#if defined(__clang__) && defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::lifetimebound)
#define SNOR_LIFETIME_BOUND [[clang::lifetimebound]]
#else
#define SNOR_LIFETIME_BOUND
#endif
#else
#define SNOR_LIFETIME_BOUND
#endif
#define SNOR_OWNS_VIEWS

#endif  // SNOR_UTIL_THREAD_ANNOTATIONS_H_
