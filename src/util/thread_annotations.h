#ifndef SNOR_UTIL_THREAD_ANNOTATIONS_H_
#define SNOR_UTIL_THREAD_ANNOTATIONS_H_

/// Locking-discipline annotations understood by tools/analyze
/// (snor_analyze) and, where noted, by clang's -Wthread-safety.
///
/// The project uses *comment* annotations so that the conventions work
/// with any compiler and never change codegen:
///
///   // GUARDED_BY(m)    on a member/local declaration line: the value
///                       is protected by mutex `m`. Special guards:
///                       `caller` (serialized by the caller, never
///                       touched from worker lambdas), `atomic` (the
///                       field is std::atomic), `per_worker_slot`
///                       (workers may write only their own subscript).
///   // LOCK_RANK(n)     on a std::mutex declaration line: assigns the
///                       mutex a global acquisition rank. Lower rank =
///                       acquired first (outer lock); every nested
///                       acquisition must be of a strictly higher rank.
///                       snor_analyze builds the whole-program
///                       acquisition graph and reports rank inversions
///                       and cycles as `lock-order-cycle`.
///
/// Current rank table (keep sorted; pick a free gap for a new mutex):
///
///   10  RequestQueue::mutex_        (src/serve/request_queue.h)
///   15  IntrospectServer::mutex_    (src/obs/introspect.h) — guards the
///       handler map only; handlers are copied out and invoked unlocked,
///       so whatever a handler itself locks (trace store, metrics) ranks
///       higher.
///   20  TraceRecorder::registry_mutex_ (src/obs/trace.h)
///   25  RequestTraceStore::mutex_   (src/obs/trace.h) — taken by Offer
///       while a span records; may take MetricsRegistry (40) but never
///       a buffer or queue lock.
///   30  TraceRecorder::ThreadBuffer::mutex (src/obs/trace.cc) —
///       acquired under registry_mutex_ during Export/Reset.
///   35  SloMonitor::mutex_          (src/obs/slo.h) — leaf ring update;
///       callers (RecognitionService) hold no lock when recording.
///   40  MetricsRegistry::mutex_     (src/obs/metrics.h)
///   50  ParallelFor error_mutex     (src/util/parallel.cc) — leaf.
///
/// How to annotate a new mutex:
///   1. Decide where it sits in the nesting order relative to the table
///      above (what can be held when it is taken, and what it may take
///      while held). Unrelated mutexes still get distinct ranks — the
///      rank order only binds pairs that actually nest.
///   2. Append `// LOCK_RANK(n)` to its declaration line, update the
///      table here, and re-run `tools/run_checks.sh` (the
///      snor_analyze_tree ctest fails on any inversion or cycle).
///
/// The macros below additionally light up clang's static thread-safety
/// analysis (`run_checks.sh --thread-safety`) when the attribute is
/// available; elsewhere they compile away. They are optional — the
/// comment form is what snor_analyze reads.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SNOR_GUARDED_BY(x) __attribute__((guarded_by(x)))
#else
#define SNOR_GUARDED_BY(x)
#endif
#if __has_attribute(acquired_after)
#define SNOR_ACQUIRED_AFTER(...) __attribute__((acquired_after(__VA_ARGS__)))
#else
#define SNOR_ACQUIRED_AFTER(...)
#endif
#else
#define SNOR_GUARDED_BY(x)
#define SNOR_ACQUIRED_AFTER(...)
#endif

#endif  // SNOR_UTIL_THREAD_ANNOTATIONS_H_
