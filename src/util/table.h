#ifndef SNOR_UTIL_TABLE_H_
#define SNOR_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace snor {

/// \brief Fixed-width plain-text table, used by the bench harnesses to print
/// paper-style result tables.
///
/// Usage:
/// \code
///   TablePrinter t({"Approach", "Accuracy"});
///   t.AddRow({"Baseline", "0.10"});
///   t.Print(std::cout);
/// \endcode
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Optional caption printed above the table.
  void SetTitle(std::string title) { title_ = std::move(title); }

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 5);

  /// Renders the table with column-aligned cells and rules.
  void Print(std::ostream& os) const;

  /// Renders to a string (used in tests).
  std::string ToString() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace snor

#endif  // SNOR_UTIL_TABLE_H_
