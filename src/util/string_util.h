#ifndef SNOR_UTIL_STRING_UTIL_H_
#define SNOR_UTIL_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace snor {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `text` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string StrTrim(std::string_view text);

/// True when `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII letters.
std::string AsciiToLower(std::string_view text);

}  // namespace snor

#endif  // SNOR_UTIL_STRING_UTIL_H_
