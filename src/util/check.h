#ifndef SNOR_UTIL_CHECK_H_
#define SNOR_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Invariant-checking macros. `SNOR_CHECK` fires in all build modes and is
/// reserved for programming errors (broken invariants), never for
/// recoverable conditions — those return `snor::Status` instead.

#define SNOR_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FATAL %s:%d: check failed: %s\n", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define SNOR_CHECK_MSG(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FATAL %s:%d: check failed: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, (msg));                     \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define SNOR_CHECK_EQ(a, b) SNOR_CHECK((a) == (b))
#define SNOR_CHECK_NE(a, b) SNOR_CHECK((a) != (b))
#define SNOR_CHECK_LT(a, b) SNOR_CHECK((a) < (b))
#define SNOR_CHECK_LE(a, b) SNOR_CHECK((a) <= (b))
#define SNOR_CHECK_GT(a, b) SNOR_CHECK((a) > (b))
#define SNOR_CHECK_GE(a, b) SNOR_CHECK((a) >= (b))

#ifdef NDEBUG
#define SNOR_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define SNOR_DCHECK(cond) SNOR_CHECK(cond)
#endif

#endif  // SNOR_UTIL_CHECK_H_
