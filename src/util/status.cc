#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace snor {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kIoError;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

[[noreturn]] void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: accessed value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

[[noreturn]] void DieOkStatusInResult() {
  std::fprintf(stderr, "FATAL: constructed Result<T> from an OK Status\n");
  std::abort();
}

}  // namespace internal
}  // namespace snor
