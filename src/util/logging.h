#ifndef SNOR_UTIL_LOGGING_H_
#define SNOR_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace snor {

/// \brief Severity of a log record; records below the global threshold are
/// discarded.
enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

/// Sets the global logging threshold (default: kInfo).
void SetLogLevel(LogLevel level);

/// Returns the current global logging threshold.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log record; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace snor

#define SNOR_LOG(level)                                              \
  ::snor::internal::LogMessage(::snor::LogLevel::k##level, __FILE__, \
                               __LINE__)

#endif  // SNOR_UTIL_LOGGING_H_
