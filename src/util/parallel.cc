#include "util/parallel.h"

#include <algorithm>

namespace snor {

int DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 int n_threads) {
  if (n == 0) return;
  if (n_threads <= 0) n_threads = DefaultThreadCount();
  n_threads = std::min<int>(n_threads, static_cast<int>(n));

  // Small batches or single-threaded: run inline (identical semantics).
  if (n_threads <= 1 || n < 16) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(n_threads));
  for (int t = 0; t < n_threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& w : workers) w.join();
}

}  // namespace snor
