#include "util/parallel.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"

namespace snor {

int DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 int n_threads) {
  if (n == 0) return;
  SNOR_TRACE_SPAN("util.parallel.for");
  static obs::Counter& items_counter =
      obs::MetricsRegistry::Global().counter("util.parallel.items");
  items_counter.Increment(n);
  if (n_threads <= 0) n_threads = DefaultThreadCount();
  n_threads = std::min<int>(n_threads, static_cast<int>(n));

  // Small batches or single-threaded: run inline (identical semantics;
  // exceptions propagate to the caller directly).
  if (n_threads <= 1 || n < 16) {
    for (std::size_t i = 0; i < n; ++i) {
      MaybeInjectDelay();
      fn(i);
    }
    return;
  }

  obs::MetricsRegistry::Global()
      .gauge("util.parallel.workers")
      .Set(static_cast<double>(n_threads));
  static obs::Histogram& queue_wait_us =
      obs::MetricsRegistry::Global().histogram("util.parallel.queue_wait_us");
  const auto pool_start = std::chrono::steady_clock::now();

  // A throwing worker must not terminate the process (std::thread would
  // call std::terminate on an escaped exception). Capture the first
  // exception, stop handing out new indices, and rethrow on join.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;  // LOCK_RANK(50): leaf, never nests another lock.

  // Workers inherit the caller's request scope so spans they record stay
  // on the request's causal chain across the thread hop (per-index work
  // may still install a more specific context of its own).
  const obs::TraceContext parent_context = obs::CurrentTraceContext();

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(n_threads));
  for (int t = 0; t < n_threads; ++t) {
    workers.emplace_back([&] {
      // Time from pool launch to this worker picking up its first item —
      // the thread-spawn/scheduling latency of the pool.
      queue_wait_us.Record(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - pool_start)
                               .count());
      obs::ScopedTraceContext worker_context(parent_context);
      SNOR_TRACE_SPAN("util.parallel.worker");
      for (;;) {
        if (failed.load(std::memory_order_acquire)) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          MaybeInjectDelay();
          fn(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          failed.store(true, std::memory_order_release);
          // Drain the remaining indices so peers exit promptly.
          next.store(n, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace snor
