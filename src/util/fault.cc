#include "util/fault.h"

#include <chrono>
#include <limits>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace snor {
namespace {

constexpr auto kNumPoints =
    static_cast<std::size_t>(FaultPoint::kNumFaultPoints);

std::size_t PointIndex(FaultPoint point) {
  const auto idx = static_cast<std::size_t>(point);
  return idx < kNumPoints ? idx : 0;
}

// SplitMix64 finalizer: a single well-mixed draw per (seed, point, probe)
// triple, so fire decisions are independent of wall clock and of each
// other.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double UnitDraw(std::uint64_t seed, std::size_t point, std::uint64_t probe) {
  const std::uint64_t h =
      Mix64(seed ^ Mix64(static_cast<std::uint64_t>(point) * 0x632BE59BD9B4E019ULL + probe));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Per-point fire counters and trace-event names, built once ("io-read"
/// becomes counter `util.fault.io-read.fired` and trace instant
/// `util.fault.io-read`).
struct FireInstruments {
  obs::Counter* counters[kNumPoints];
  std::string trace_names[kNumPoints];
};

const FireInstruments& Instruments() {
  static const FireInstruments instruments = [] {
    FireInstruments built;
    for (std::size_t i = 0; i < kNumPoints; ++i) {
      const std::string base =
          "util.fault." +
          std::string(FaultPointName(static_cast<FaultPoint>(i)));
      built.counters[i] =
          &obs::MetricsRegistry::Global().counter(base + ".fired");
      built.trace_names[i] = base;
    }
    return built;
  }();
  return instruments;
}

void RecordFaultFire(std::size_t point_index) {
  const FireInstruments& instruments = Instruments();
  instruments.counters[point_index]->Increment();
  obs::TraceInstant(instruments.trace_names[point_index].c_str());
}

}  // namespace

std::string_view FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kIoRead:
      return "io-read";
    case FaultPoint::kTruncatedFile:
      return "truncated-file";
    case FaultPoint::kCorruptPixel:
      return "corrupt-pixel";
    case FaultPoint::kNanScore:
      return "nan-score";
    case FaultPoint::kSlowWorker:
      return "slow-worker";
    case FaultPoint::kNumFaultPoints:
      break;
  }
  return "unknown";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Arm(FaultPoint point, double probability,
                        std::uint64_t seed) {
  PointState& state = points_[PointIndex(point)];
  state.probability = probability;
  state.seed = seed;
  state.probes.store(0, std::memory_order_relaxed);
  state.fires.store(0, std::memory_order_relaxed);
  state.armed.store(true, std::memory_order_release);
}

void FaultInjector::Disarm(FaultPoint point) {
  PointState& state = points_[PointIndex(point)];
  state.armed.store(false, std::memory_order_release);
  state.probes.store(0, std::memory_order_relaxed);
  state.fires.store(0, std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  for (std::size_t i = 0; i < kNumPoints; ++i) {
    Disarm(static_cast<FaultPoint>(i));
  }
}

bool FaultInjector::armed(FaultPoint point) const {
  return points_[PointIndex(point)].armed.load(std::memory_order_acquire);
}

bool FaultInjector::ShouldFire(FaultPoint point) {
  PointState& state = points_[PointIndex(point)];
  if (!state.armed.load(std::memory_order_acquire)) return false;
  const std::uint64_t probe =
      state.probes.fetch_add(1, std::memory_order_relaxed);
  const bool fire =
      UnitDraw(state.seed, PointIndex(point), probe) < state.probability;
  if (fire) {
    state.fires.fetch_add(1, std::memory_order_relaxed);
    RecordFaultFire(PointIndex(point));
  }
  return fire;
}

std::uint64_t FaultInjector::probe_count(FaultPoint point) const {
  return points_[PointIndex(point)].probes.load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fire_count(FaultPoint point) const {
  return points_[PointIndex(point)].fires.load(std::memory_order_relaxed);
}

bool FaultFires(FaultPoint point) {
  return FaultInjector::Global().ShouldFire(point);
}

Status InjectFault(FaultPoint point, const std::string& detail) {
  if (!FaultFires(point)) return Status::OK();
  return Status::Unavailable("injected " +
                             std::string(FaultPointName(point)) + " fault: " +
                             detail);
}

double MaybePoisonScore(double value) {
  if (FaultFires(FaultPoint::kNanScore)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return value;
}

void MaybeInjectDelay() {
  if (FaultFires(FaultPoint::kSlowWorker)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void MaybeCorruptBytes(std::uint8_t* data, std::size_t size) {
  if (size == 0 || !FaultFires(FaultPoint::kCorruptPixel)) return;
  // Deterministic pattern: flip every 7th byte starting from a hashed
  // offset, so the corruption is reproducible yet spread over the payload.
  const std::size_t start = static_cast<std::size_t>(Mix64(size)) % 7;
  for (std::size_t i = start; i < size; i += 7) data[i] ^= 0xA5;
}

ScopedFault::ScopedFault(FaultPoint point, double probability,
                         std::uint64_t seed)
    : point_(point) {
  FaultInjector::Global().Arm(point, probability, seed);
}

ScopedFault::~ScopedFault() { FaultInjector::Global().Disarm(point_); }

}  // namespace snor
