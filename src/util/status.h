#ifndef SNOR_UTIL_STATUS_H_
#define SNOR_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace snor {

/// \brief Machine-readable error categories, modelled on Arrow/Abseil codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kNotImplemented,
  kInternal,
  /// Transient failure (flaky sensor, injected fault); safe to retry.
  kUnavailable,
  /// A retry loop or staged operation ran out of time budget.
  kDeadlineExceeded,
};

/// \brief Returns a short human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that can fail without a payload.
///
/// Library code does not throw; fallible operations return `Status` (or
/// `Result<T>` when they also produce a value). An OK status carries no
/// allocation.
///
/// The class itself is `[[nodiscard]]`: any call site that ignores a
/// returned `Status` is a compile-time warning (an error under the
/// `check` preset) and a `snor_lint` violation. Intentional discards
/// must be written as `(void)Fallible();` with a justifying comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per non-OK code.
  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "<CODE>: <message>" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// True for transient failures worth retrying (`kUnavailable`, `kIoError`).
/// Everything else is either permanent (bad data, missing feature) or a
/// programming error.
bool IsRetryable(const Status& status);

/// \brief Either a value of type `T` or a non-OK `Status`.
///
/// Mirrors `arrow::Result`: inspect with `ok()`, read the payload with
/// `value()`/`operator*` only when OK. Accessing the value of a failed
/// result aborts (programming error, checked in all build modes).
///
/// Like `Status`, the class template is `[[nodiscard]]`: dropping a
/// returned `Result` silently drops both the payload and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or an error status keeps call
  /// sites terse (`return 42;` / `return Status::IoError(...)`).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                            // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    AbortIfOkStatus();
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error status; OK when the result holds a value.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    AbortIfNotOk();
    return std::get<T>(payload_);
  }
  T& value() & {
    AbortIfNotOk();
    return std::get<T>(payload_);
  }
  T&& value() && {
    AbortIfNotOk();
    return std::get<T>(std::move(payload_));
  }

  /// Moves the value out of the result.
  T MoveValue() {
    AbortIfNotOk();
    return std::get<T>(std::move(payload_));
  }

  /// Returns the value or `fallback` when the result is an error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(payload_);
    return fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfNotOk() const;
  void AbortIfOkStatus() const;

  std::variant<T, Status> payload_;
};

namespace internal {
[[noreturn]] void DieBadResultAccess(const Status& status);
[[noreturn]] void DieOkStatusInResult();
}  // namespace internal

template <typename T>
void Result<T>::AbortIfNotOk() const {
  if (!ok()) internal::DieBadResultAccess(std::get<Status>(payload_));
}

template <typename T>
void Result<T>::AbortIfOkStatus() const {
  if (std::holds_alternative<Status>(payload_) &&
      std::get<Status>(payload_).ok()) {
    internal::DieOkStatusInResult();
  }
}

/// Propagates a non-OK status out of the current function.
#define SNOR_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::snor::Status _snor_status = (expr);        \
    if (!_snor_status.ok()) return _snor_status; \
  } while (false)

/// Evaluates a Result-returning expression, propagating errors and binding
/// the unwrapped value to `lhs` on success.
#define SNOR_ASSIGN_OR_RETURN(lhs, expr)                \
  SNOR_ASSIGN_OR_RETURN_IMPL_(                          \
      SNOR_STATUS_CONCAT_(_snor_result, __LINE__), lhs, \
      expr)
#define SNOR_STATUS_CONCAT_INNER_(a, b) a##b
#define SNOR_STATUS_CONCAT_(a, b) SNOR_STATUS_CONCAT_INNER_(a, b)
#define SNOR_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).MoveValue()

}  // namespace snor

#endif  // SNOR_UTIL_STATUS_H_
