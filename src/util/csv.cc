#include "util/csv.h"

#include <fstream>

#include "util/check.h"

namespace snor {
namespace {

std::string EscapeField(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void AppendRow(const std::vector<std::string>& cells, std::string& out) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out += ',';
    out += EscapeField(cells[i]);
  }
  out += '\n';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  SNOR_CHECK(!header_.empty());
}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  SNOR_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::ToString() const {
  std::string out;
  AppendRow(header_, out);
  for (const auto& row : rows_) AppendRow(row, out);
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  const std::string text = ToString();
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace snor
