#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace snor {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out += parts[i];
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

std::string StrTrim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace snor
