#ifndef SNOR_SERVE_REQUEST_QUEUE_H_
#define SNOR_SERVE_REQUEST_QUEUE_H_

/// \file
/// Bounded, admission-controlled request queue for the recognition
/// service (many producer threads, one dispatcher).
///
/// Admission control is the first line of defence under overload: the
/// queue has a hard capacity cap, and a lower shed watermark past which
/// deadline-carrying requests are rejected immediately (reject-newest) —
/// a request that would sit behind a deep backlog is going to blow its
/// deadline anyway, and shedding it at the door costs nothing while
/// serving it late costs a full gallery scan. Every rejection is counted
/// in the `serve.queue.shed` metric so load-shedding is observable, never
/// silent.
///
/// Shutdown uses drain semantics: `Close()` stops new admissions but
/// leaves everything already queued poppable, so the dispatcher can keep
/// answering until the queue is empty and no accepted request is ever
/// dropped.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "core/feature_cache.h"
#include "obs/trace.h"
#include "util/status.h"

namespace snor::serve {

/// \brief One answered recognition request.
struct ServiceReply {
  ObjectClass label = ObjectClass::kChair;
  /// True when the circuit breaker answered via the degraded
  /// single-modality engine instead of the primary approach.
  bool degraded = false;
  /// Milliseconds the request waited in the queue before dispatch.
  double queue_wait_ms = 0.0;
};

/// \brief A queued recognition request: the query (owned by the caller
/// and alive until the reply future is fulfilled), an optional absolute
/// deadline, and the promise the dispatcher fulfils exactly once.
struct QueuedRequest {
  const ImageFeatures* query = nullptr;
  std::uint64_t id = 0;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  std::chrono::steady_clock::time_point enqueue_time{};
  /// Causal trace scope minted at Submit (inactive when tracing is off);
  /// re-installed on every thread that works on this request so its
  /// spans form one chain across producer, dispatcher, and workers.
  obs::TraceContext trace;
  std::promise<Result<ServiceReply>> reply;
};

/// \brief Admission-control knobs.
struct RequestQueueOptions {
  /// Hard cap: `Enqueue` sheds every request once this depth is reached.
  std::size_t capacity = 256;
  /// Depth at which deadline-carrying requests are shed (reject-newest);
  /// 0 defaults to 3/4 of `capacity`. Deadline-free requests are only
  /// bounded by the hard cap.
  std::size_t shed_watermark = 0;
};

/// \brief Counters since construction (monotonic, mutex-consistent).
struct RequestQueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t shed = 0;
  std::uint64_t dequeued = 0;
};

/// \brief Bounded multi-producer / single-dispatcher FIFO with admission
/// control. All methods are thread-safe.
class RequestQueue {
 public:
  explicit RequestQueue(const RequestQueueOptions& options);

  /// Admits or sheds `request`. On OK the request has been moved into
  /// the queue; on failure (`Unavailable`: shed by admission control, or
  /// closed for draining) the request is untouched and the caller still
  /// owns its promise.
  [[nodiscard]] Status Enqueue(QueuedRequest& request);

  /// Pops up to `max_batch` requests in FIFO order, blocking while the
  /// queue is open and empty. Returns an empty batch only when the queue
  /// is closed and fully drained — the dispatcher's exit signal.
  [[nodiscard]] std::vector<QueuedRequest> PopBatch(std::size_t max_batch);

  /// Closes admission (further `Enqueue` calls fail) but keeps queued
  /// requests poppable so the dispatcher can drain them.
  void Close();

  std::size_t depth() const;
  bool closed() const;
  RequestQueueStats stats() const;

  const RequestQueueOptions& options() const { return options_; }

 private:
  RequestQueueOptions options_;
  mutable std::mutex mutex_;  // LOCK_RANK(10)
  std::condition_variable cv_;
  std::deque<QueuedRequest> queue_;  // GUARDED_BY(mutex_)
  bool closed_ = false;  // GUARDED_BY(mutex_)
  RequestQueueStats stats_;  // GUARDED_BY(mutex_)
};

}  // namespace snor::serve

#endif  // SNOR_SERVE_REQUEST_QUEUE_H_
