#ifndef SNOR_SERVE_BATCH_ENGINE_H_
#define SNOR_SERVE_BATCH_ENGINE_H_

/// \file
/// Batched, sharded gallery-matching engine.
///
/// The cold path (`ExperimentContext::RunApproach`) matches one query at a
/// time against the whole gallery on one thread. The BatchEngine shards
/// the gallery into contiguous index ranges, fans (query, shard) scoring
/// tasks of a whole query *batch* out over `ParallelFor` workers, and
/// merges the per-shard partial arg-optima sequentially in ascending shard
/// order. Because every per-view score is computed by the same code the
/// classifiers run, and the strict-< partial merge reproduces the
/// sequential first-minimum scan exactly, predictions are bit-identical
/// to the cold path for every approach and any shard/thread count.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/classifiers.h"
#include "core/evaluation.h"
#include "core/experiment.h"
#include "core/feature_bank.h"
#include "obs/trace.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace snor::serve {

/// \brief Gallery matching mode.
enum class MatchMode {
  /// Full scan over the SoA feature bank. Bit-identical to the cold
  /// classifiers for every approach and any shard/thread count.
  kExact,
  /// ANN candidate retrieval (GalleryViewIndex) followed by an exact
  /// rerank of the top-R candidate views: sub-linear in gallery size,
  /// trading bounded recall for speed. Scores are never approximated —
  /// only the candidate set is.
  kAnn,
};

/// Parses "exact" / "ann" (as accepted by --match-mode flags).
[[nodiscard]] Result<MatchMode> ParseMatchMode(const std::string& text);
[[nodiscard]] const char* MatchModeName(MatchMode mode);

/// \brief Sharding/batching knobs for the warm matching path.
struct BatchEngineOptions {
  /// Number of contiguous gallery shards; <= 0 uses DefaultThreadCount().
  int num_shards = 0;
  /// Queries per engine batch in `RunApproachBatched`.
  int batch_size = 64;
  /// Worker threads for the (query, shard) task grid; 0 = default.
  int n_threads = 0;
  /// Exact full-bank scan vs. ANN candidates + exact rerank.
  MatchMode match_mode = MatchMode::kExact;
  /// ANN index knobs (kAnn only): top-R per modality, leaf-check budget.
  GalleryIndexOptions ann;
};

/// \brief Matches query batches against a sharded in-memory gallery.
///
/// Owns the gallery's SoA banks (OWNS_VIEWS): shard workers borrow bank
/// rows only inside their ClassifyBatch scan, so a future live gallery
/// snapshot-swap (ROADMAP item 1) can replace `bank_`/`gallery_` between
/// batches without ever racing a borrowed row. The snor_analyze borrow
/// pass flags any row view that crosses a dispatch or generation
/// boundary.
class SNOR_OWNS_VIEWS BatchEngine {
 public:
  /// Validating factory, mirroring `MakeClassifier`: fails with
  /// `InvalidArgument` on an empty gallery and `Unavailable` when no
  /// gallery view is valid (non-baseline approaches).
  [[nodiscard]] static Result<std::unique_ptr<BatchEngine>> Create(
      const ApproachSpec& spec, std::vector<ImageFeatures> gallery,
      const BatchEngineOptions& options = {},
      std::uint64_t baseline_seed = 2019);

  /// Classifies one batch of queries (pointers stay owned by the caller).
  /// Predictions are index-aligned with `queries` and bit-identical to
  /// calling the cold classifier sequentially in the same order.
  [[nodiscard]] std::vector<ObjectClass> ClassifyBatch(
      const std::vector<const ImageFeatures*>& queries);

  /// Same, with per-query trace contexts (index-aligned with `queries`):
  /// each (query, shard) scan span is recorded on its query's request
  /// chain, across whatever worker thread picks the task up. Contexts
  /// carry no data into scoring, so predictions stay bit-identical.
  [[nodiscard]] std::vector<ObjectClass> ClassifyBatch(
      const std::vector<const ImageFeatures*>& queries,
      const std::vector<obs::TraceContext>& contexts);

  /// How often the engine had to degrade since construction (same
  /// semantics as `MatchingClassifier::degradation`).
  const DegradationStats& degradation() const { return degradation_; }

  std::size_t num_shards() const { return shards_.size(); }
  const std::vector<ImageFeatures>& gallery() const { return gallery_; }
  MatchMode match_mode() const { return options_.match_mode; }
  /// Number of ANN-mode queries that fell back to a full exact scan
  /// because no modality produced candidates.
  std::uint64_t ann_full_scans() const { return ann_full_scans_; }

 private:
  /// Contiguous gallery index range [begin, end).
  struct Shard {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  BatchEngine(const ApproachSpec& spec, std::vector<ImageFeatures> gallery,
              const BatchEngineOptions& options, std::uint64_t baseline_seed);

  ObjectClass FallbackLabel() const;

  /// `contexts` is nullptr or an array index-aligned with `queries`.
  std::vector<ObjectClass> ClassifyPartialArgmin(
      const std::vector<const ImageFeatures*>& queries,
      const obs::TraceContext* contexts);
  std::vector<ObjectClass> ClassifyHybrid(
      const std::vector<const ImageFeatures*>& queries,
      const obs::TraceContext* contexts);
  /// ANN mode: candidate retrieval + exact rerank, one task per query.
  std::vector<ObjectClass> ClassifyPartialArgminAnn(
      const std::vector<const ImageFeatures*>& queries,
      const obs::TraceContext* contexts);
  std::vector<ObjectClass> ClassifyHybridAnn(
      const std::vector<const ImageFeatures*>& queries,
      const obs::TraceContext* contexts);

  ApproachSpec spec_;
  std::vector<ImageFeatures> gallery_;  // GUARDED_BY(caller)
  /// SoA pack of gallery_; all non-baseline scoring reads bank rows.
  FeatureBank bank_;  // GUARDED_BY(caller)
  /// ANN candidate index (kAnn mode, non-baseline approaches only).
  std::optional<GalleryViewIndex> index_;  // GUARDED_BY(caller)
  BatchEngineOptions options_;
  std::vector<Shard> shards_;  // GUARDED_BY(caller)
  DegradationStats degradation_;  // GUARDED_BY(caller)
  std::uint64_t ann_full_scans_ = 0;  // GUARDED_BY(caller)
  /// The baseline consumes one RNG draw per classified query; delegating
  /// to the real classifier keeps the draw sequence cold-path-identical.
  std::unique_ptr<MatchingClassifier> baseline_;
};

/// \brief Knobs for the store-backed warm run.
struct WarmRunOptions {
  BatchEngineOptions engine;
  /// Seed for the random baseline (cold path uses ExperimentConfig.seed).
  std::uint64_t baseline_seed = 2019;
};

/// The warm counterpart of `ExperimentContext::RunApproach`: identical
/// skip/ledger semantics and bit-identical predictions, but the matching
/// loop runs in batches on the sharded engine. `inputs` and `gallery`
/// would typically come from a FeatureStore rather than fresh extraction.
[[nodiscard]] Result<EvalReport> RunApproachBatched(
    const ApproachSpec& spec, const std::vector<ImageFeatures>& inputs,
    const std::vector<ImageFeatures>& gallery,
    const WarmRunOptions& options = {});

}  // namespace snor::serve

#endif  // SNOR_SERVE_BATCH_ENGINE_H_
