#ifndef SNOR_SERVE_FEATURE_STORE_H_
#define SNOR_SERVE_FEATURE_STORE_H_

/// \file
/// Persistent, versioned binary feature store.
///
/// The paper's pipelines re-extract Hu moments, histograms, and keypoint
/// descriptors for every gallery view on every run. The store persists
/// them once so later runs memory-load the feature bank (the "warm path")
/// instead of re-rendering and re-processing images.
///
/// On-disk format (all integers little-endian, native layout):
///
///   magic "SNORFST1" (8 bytes)
///   u32   format version (kFeatureStoreVersion)
///   u64   options fingerprint (OptionsFingerprint of the extraction
///         options that produced the records; loads with a different
///         fingerprint are rejected so stale stores can never silently
///         feed a run computed under other options)
///   u32   record count
///   per record:
///     u32   payload size in bytes
///     bytes payload (label, model id, valid flag, Hu moments, colour
///           histogram, per-view float + binary keypoint descriptors)
///     u64   FNV-1a checksum of the payload (bit-rot detection)
///
/// All load/save paths propagate `Status` (never abort on bad files) and
/// probe the existing fault-injection hooks: `io-read` on open and
/// `truncated-file` per record, so the corrupt/truncated behaviour is
/// deterministically testable.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/feature_bank.h"
#include "core/feature_cache.h"
#include "data/dataset.h"
#include "features/keypoint.h"
#include "util/status.h"

namespace snor::serve {

/// Bump when the record layout changes; old files are rejected with
/// `IoError` instead of being misparsed.
inline constexpr std::uint32_t kFeatureStoreVersion = 1;

/// \brief One persisted view: the matching features consumed by the
/// classifiers plus the view's keypoint descriptors (either family may be
/// empty when the producing pipeline does not use it).
struct StoredView {
  ImageFeatures features;
  std::vector<FloatDescriptor> float_descriptors;
  std::vector<BinaryDescriptor> binary_descriptors;
};

/// \brief SoA pack of a loaded gallery: the matching-feature bank plus
/// flat per-approach descriptor banks, with per-view row ranges so a
/// view's descriptors stay addressable after flattening.
///
/// This is the warm-path in-memory layout: load (or compute) StoredViews
/// once, pack them, and hand the banks to the batch kernels. Packing
/// copies values bit-for-bit — no renormalization, no re-extraction — so
/// a warm run scores exactly what the cold run scored.
///
/// Generation discipline: rows borrowed from these banks (see the
/// OWNS_VIEWS contracts in core/feature_bank.h) die when the aggregate
/// is reloaded or repacked — LoadOrComputeFeatures round-trips replace
/// the whole generation, so borrowed rows must never be held across one.
struct StoredViewBanks {  // SNOR_OWNS_VIEWS
  FeatureBank features;
  FloatDescriptorBank float_bank;
  BinaryDescriptorBank binary_bank;
  /// Per-view [begin, end) row ranges into float_bank / binary_bank.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> float_ranges;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> binary_ranges;
};

/// Packs stored views into SoA banks (counts `serve.store.packed_views`).
/// Views with float descriptors must agree on descriptor dimension.
[[nodiscard]] StoredViewBanks PackStoredViews(
    const std::vector<StoredView>& views);

/// Stable fingerprint of every extraction option that changes record
/// content. Loading a store written under different options fails instead
/// of silently mixing feature spaces.
[[nodiscard]] std::uint64_t OptionsFingerprint(const FeatureOptions& options);

/// Serializes `views` to `path`. Fails with `IoError` when the file
/// cannot be opened or written.
[[nodiscard]] Status SaveFeatureStore(const std::string& path,
                                      std::uint64_t options_fingerprint,
                                      const std::vector<StoredView>& views);

/// Restores a store written by SaveFeatureStore. Fails with `IoError` on
/// bad magic, version mismatch, truncation, or a per-record checksum
/// mismatch, and with `InvalidArgument` when the file's options
/// fingerprint differs from `expected_fingerprint`.
[[nodiscard]] Result<std::vector<StoredView>> LoadFeatureStore(
    const std::string& path, std::uint64_t expected_fingerprint);

/// Convenience wrappers for descriptor-less feature banks (the Table-2
/// matching pipelines): plain `ImageFeatures` in, plain out.
[[nodiscard]] Status SaveFeatureBank(const std::string& path,
                                     std::uint64_t options_fingerprint,
                                     const std::vector<ImageFeatures>& bank);
[[nodiscard]] Result<std::vector<ImageFeatures>> LoadFeatureBank(
    const std::string& path, std::uint64_t expected_fingerprint);

/// Lazily yields the dataset to extract from on a store miss. Keeping the
/// dataset behind a callback lets a store hit skip dataset construction
/// (rendering every view) entirely — that, not extraction, dominates the
/// cold cost of the table benches.
using DatasetProvider = std::function<const Dataset&()>;

/// The warm path: loads `path` when it holds a compatible bank (counts
/// `serve.store.hit`), otherwise materialises the dataset, computes its
/// features with `options`, persists them to `path` for the next run, and
/// returns them (counts `serve.store.miss`). A failed save is logged and
/// non-fatal — the computed features are still returned.
[[nodiscard]] Result<std::vector<ImageFeatures>> LoadOrComputeFeatures(
    const std::string& path, const DatasetProvider& dataset,
    const FeatureOptions& options);

/// Eager-dataset convenience overload of the above.
[[nodiscard]] Result<std::vector<ImageFeatures>> LoadOrComputeFeatures(
    const std::string& path, const Dataset& dataset,
    const FeatureOptions& options);

}  // namespace snor::serve

#endif  // SNOR_SERVE_FEATURE_STORE_H_
