#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace snor::serve {
namespace {

double MillisBetween(const std::chrono::steady_clock::time_point& from,
                     const std::chrono::steady_clock::time_point& to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// A spec with no degraded engine cannot trip: pin the breaker closed so
/// the open state (which would route to a null engine) is unreachable.
CircuitBreakerOptions EffectiveBreakerOptions(
    const CircuitBreakerOptions& options, bool has_degraded_engine) {
  CircuitBreakerOptions adjusted = options;
  if (!has_degraded_engine) adjusted.enabled = false;
  return adjusted;
}

}  // namespace

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options)
    : options_(options),
      window_(static_cast<std::size_t>(std::max(1, options.window)), 0) {}

CircuitBreaker::State CircuitBreaker::Evaluate() {
  if (!options_.enabled) return State::kClosed;
  if (state_ == State::kOpen &&
      since_open_.ElapsedMillis() >= options_.cooldown_ms) {
    state_ = State::kHalfOpen;
  }
  return state_;
}

void CircuitBreaker::Record(bool failure) {
  if (samples_ < window_.size()) {
    ++samples_;
  } else if (window_[next_] != 0) {
    --failures_;
  }
  window_[next_] = failure ? 1 : 0;
  if (failure) ++failures_;
  next_ = (next_ + 1) % window_.size();
}

void CircuitBreaker::Open() {
  state_ = State::kOpen;
  ++trips_;
  since_open_.Reset();
}

void CircuitBreaker::RecordPrimary(std::uint64_t successes,
                                   std::uint64_t failures) {
  if (!options_.enabled) return;
  if (state_ == State::kHalfOpen) {
    // The batch was the probe: any failure re-opens for another
    // cool-down, an all-success probe closes and forgets the history.
    if (failures > 0) {
      Open();
    } else if (successes > 0) {
      state_ = State::kClosed;
      std::fill(window_.begin(), window_.end(), 0);
      samples_ = 0;
      failures_ = 0;
      next_ = 0;
    }
    return;
  }
  if (state_ == State::kOpen) return;
  // Successes first so a failure burst larger than the window still
  // leaves the window failure-saturated.
  for (std::uint64_t i = 0; i < successes; ++i) Record(false);
  for (std::uint64_t i = 0; i < failures; ++i) Record(true);
  const auto min_samples =
      static_cast<std::size_t>(std::max(1, options_.min_samples));
  if (samples_ >= min_samples &&
      static_cast<double>(failures_) >=
          options_.failure_ratio * static_cast<double>(samples_)) {
    Open();
  }
}

Result<std::unique_ptr<RecognitionService>> RecognitionService::Create(
    const ApproachSpec& spec, std::vector<ImageFeatures> gallery,
    const ServiceOptions& options) {
  std::unique_ptr<BatchEngine> degraded;
  if (options.breaker.enabled &&
      (spec.kind == ApproachSpec::Kind::kHybrid ||
       spec.kind == ApproachSpec::Kind::kShape)) {
    ApproachSpec degraded_spec;
    degraded_spec.kind = ApproachSpec::Kind::kColor;
    degraded_spec.color = spec.color;
    auto single = BatchEngine::Create(degraded_spec, gallery, options.engine,
                                      options.baseline_seed);
    // A gallery without a usable colour bank simply has no degradation
    // path; the breaker is then pinned closed in the constructor.
    if (single.ok()) degraded = std::move(single).MoveValue();
  }
  SNOR_ASSIGN_OR_RETURN(
      std::unique_ptr<BatchEngine> primary,
      BatchEngine::Create(spec, std::move(gallery), options.engine,
                          options.baseline_seed));
  // NOLINTNEXTLINE(raw-new-delete): private ctor, immediately owned.
  return std::unique_ptr<RecognitionService>(new RecognitionService(
      spec, std::move(primary), std::move(degraded), options));
}

RecognitionService::RecognitionService(const ApproachSpec& spec,
                                       std::unique_ptr<BatchEngine> primary,
                                       std::unique_ptr<BatchEngine> degraded,
                                       const ServiceOptions& options)
    : spec_(spec),
      options_(options),
      primary_(std::move(primary)),
      degraded_(std::move(degraded)),
      queue_(options.queue),
      breaker_(EffectiveBreakerOptions(options.breaker,
                                       degraded_ != nullptr)),
      slo_(options.slo) {
  dispatcher_ = std::thread(&RecognitionService::DispatcherLoop, this);
}

RecognitionService::~RecognitionService() { Shutdown(); }

void RecognitionService::Shutdown() {
  std::call_once(shutdown_once_, [&] {
    stopping_.store(true, std::memory_order_relaxed);
    queue_.Close();
    if (dispatcher_.joinable()) dispatcher_.join();
  });
}

std::future<Result<ServiceReply>> RecognitionService::Submit(
    const ImageFeatures* query) {
  return Submit(query, options_.default_deadline_ms);
}

std::future<Result<ServiceReply>> RecognitionService::Submit(
    const ImageFeatures* query, double deadline_ms) {
  static obs::Counter& requests =
      obs::MetricsRegistry::Global().counter("serve.service.requests");
  static obs::Counter& rejected_counter =
      obs::MetricsRegistry::Global().counter("serve.service.rejected");
  requests.Increment();
  submitted_.fetch_add(1, std::memory_order_relaxed);

  // Mint the request's causal scope and record its root span on this
  // producer thread. The span is closed (and so offered to the tail-keep
  // store) *before* the request becomes poppable: otherwise a fast
  // dispatcher could finish the request before its root span lands.
  obs::TraceContext root;
  if (obs::TraceEnabled()) root.request_id = obs::NextTraceRequestId();

  QueuedRequest request;
  {
    SNOR_TRACE_SPAN_CTX("serve.request.submit", root);
    request.query = query;
    request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    // Dispatcher/worker spans chain under the submit span.
    request.trace = obs::CurrentTraceContext();
    request.enqueue_time = std::chrono::steady_clock::now();
    if (deadline_ms > 0.0) {
      request.has_deadline = true;
      request.deadline =
          request.enqueue_time +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(deadline_ms));
    }
  }
  std::future<Result<ServiceReply>> future = request.reply.get_future();
  const Status admitted = queue_.Enqueue(request);
  if (!admitted.ok()) {
    // Rejected requests are answered right here, exactly once: the
    // promise was not consumed by the queue.
    if (stopping_.load(std::memory_order_relaxed)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      rejected_counter.Increment();
    } else {
      shed_.fetch_add(1, std::memory_order_relaxed);
    }
    request.reply.set_value(Result<ServiceReply>(admitted));
    // A shed/rejected request is an unavailability event for the SLO and
    // an errored request for tail-keep.
    slo_.Record(false, 0.0);
    if (root.request_id != 0) {
      obs::RequestTraceStore::Global().Finish(root.request_id,
                                              /*error=*/true,
                                              /*deadline_exceeded=*/false,
                                              /*latency_us=*/0.0);
    }
  }
  return future;
}

Result<ServiceReply> RecognitionService::Classify(
    const ImageFeatures& query) {
  return Submit(&query).get();
}

ServiceStats RecognitionService::stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.ok = ok_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.timed_out = timed_out_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.degraded = degraded_answers_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  stats.breaker_state = breaker_state_.load(std::memory_order_relaxed);
  return stats;
}

void RecognitionService::DispatcherLoop() {
  const std::size_t max_batch =
      static_cast<std::size_t>(std::max(1, options_.max_batch));
  while (true) {
    std::vector<QueuedRequest> batch = queue_.PopBatch(max_batch);
    if (batch.empty()) break;  // Closed and fully drained.
    DispatchBatch(std::move(batch));
  }
}

void RecognitionService::Answer(QueuedRequest& request,
                                Result<ServiceReply> result) {
  static obs::Counter& ok_counter =
      obs::MetricsRegistry::Global().counter("serve.service.ok");
  static obs::Counter& timeout_counter =
      obs::MetricsRegistry::Global().counter("serve.service.timeouts");
  static obs::Counter& error_counter =
      obs::MetricsRegistry::Global().counter("serve.service.errors");
  static obs::Counter& degraded_counter =
      obs::MetricsRegistry::Global().counter("serve.service.degraded");
  static obs::Histogram& latency_us =
      obs::MetricsRegistry::Global().histogram("serve.service.latency_us");
  const double elapsed_us =
      MillisBetween(request.enqueue_time, std::chrono::steady_clock::now()) *
      1e3;
  latency_us.Record(elapsed_us);
  const bool is_ok = result.ok();
  const bool is_deadline =
      !is_ok && result.status().code() == StatusCode::kDeadlineExceeded;
  if (is_ok) {
    ok_.fetch_add(1, std::memory_order_relaxed);
    ok_counter.Increment();
    if (result.value().degraded) {
      degraded_answers_.fetch_add(1, std::memory_order_relaxed);
      degraded_counter.Increment();
    }
  } else if (is_deadline) {
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    timeout_counter.Increment();
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
    error_counter.Increment();
  }
  {
    // The reply is fulfilled inside the request's final span so the
    // causal chain visibly ends on the dispatcher thread.
    SNOR_TRACE_SPAN_CTX("serve.request.answer", request.trace);
    request.reply.set_value(std::move(result));
  }
  slo_.Record(is_ok, elapsed_us);
  if (request.trace.active()) {
    // All of the request's spans have been recorded by now (worker spans
    // complete before ClassifyBatch returns), so the tail-keep decision
    // sees the full tree.
    obs::RequestTraceStore::Global().Finish(request.trace.request_id,
                                            !is_ok && !is_deadline,
                                            is_deadline, elapsed_us);
  }
}

void RecognitionService::DispatchBatch(std::vector<QueuedRequest> batch) {
  SNOR_TRACE_SPAN("serve.service.dispatch");
  static obs::Histogram& wait_us =
      obs::MetricsRegistry::Global().histogram("serve.queue.wait_us");
  static obs::Histogram& batch_size =
      obs::MetricsRegistry::Global().histogram("serve.service.batch_size");
  static obs::Gauge& breaker_gauge =
      obs::MetricsRegistry::Global().gauge("serve.service.breaker_state");
  static obs::Counter& trip_counter =
      obs::MetricsRegistry::Global().counter("serve.service.breaker_trips");

  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_size.Record(static_cast<double>(batch.size()));

  // Stage 1: expire requests whose deadline passed while queued.
  const auto arrival = std::chrono::steady_clock::now();
  std::vector<QueuedRequest*> live;
  live.reserve(batch.size());
  for (QueuedRequest& request : batch) {
    // A zero-length marker span on the dispatcher thread: the causal
    // chain's "picked up from the queue" hop.
    { SNOR_TRACE_SPAN_CTX("serve.request.dequeue", request.trace); }
    const double waited_ms = MillisBetween(request.enqueue_time, arrival);
    wait_us.Record(waited_ms * 1e3);
    if (request.has_deadline && arrival >= request.deadline) {
      Answer(request, Result<ServiceReply>(Status::DeadlineExceeded(
                          StrFormat("request %llu expired in queue after "
                                    "%.2fms",
                                    static_cast<unsigned long long>(request.id),
                                    waited_ms))));
      continue;
    }
    live.push_back(&request);
  }

  // Stage 2: transient per-request ingest faults, retried with jittered
  // backoff inside the remaining deadline budget. Exhaustion answers the
  // one request instead of poisoning the batch.
  std::vector<QueuedRequest*> ready;
  ready.reserve(live.size());
  std::uint64_t ingest_failures = 0;
  for (QueuedRequest* request : live) {
    RetryOptions retry = options_.retry;
    retry.jitter_seed = options_.retry.jitter_seed ^ request->id;
    if (request->has_deadline) {
      const double remaining_ms =
          MillisBetween(std::chrono::steady_clock::now(), request->deadline);
      if (remaining_ms <= 0.0) {
        Answer(*request,
               Result<ServiceReply>(Status::DeadlineExceeded(StrFormat(
                   "request %llu expired before ingest",
                   static_cast<unsigned long long>(request->id)))));
        continue;
      }
      retry.deadline_ms = retry.deadline_ms > 0.0
                              ? std::min(retry.deadline_ms, remaining_ms)
                              : remaining_ms;
    }
    Status ingest = Status::OK();
    {
      // Closed before any Answer so the span precedes the tail-keep
      // decision for this request.
      SNOR_TRACE_SPAN_CTX("serve.request.ingest", request->trace);
      ingest = RetryWithBackoff(retry, [] {
        return InjectFault(FaultPoint::kIoRead, "service request ingest");
      });
    }
    if (!ingest.ok()) {
      if (ingest.code() != StatusCode::kDeadlineExceeded) ++ingest_failures;
      Answer(*request, Result<ServiceReply>(ingest));
      continue;
    }
    ready.push_back(request);
  }

  // Stage 3: classify the survivors on the engine the breaker selects.
  const CircuitBreaker::State state = breaker_.Evaluate();
  const bool degraded_mode =
      state == CircuitBreaker::State::kOpen && degraded_ != nullptr;
  BatchEngine* engine = degraded_mode ? degraded_.get() : primary_.get();

  std::vector<ObjectClass> labels;
  Status batch_status = Status::OK();
  const std::uint64_t degradation_before = engine->degradation().total();
  if (!ready.empty()) {
    SNOR_TRACE_SPAN("serve.service.batch");
    std::vector<const ImageFeatures*> queries;
    std::vector<obs::TraceContext> contexts;
    queries.reserve(ready.size());
    contexts.reserve(ready.size());
    for (const QueuedRequest* request : ready) {
      queries.push_back(request->query);
      contexts.push_back(request->trace);
    }
    try {
      labels = engine->ClassifyBatch(queries, contexts);
    } catch (const std::exception& e) {
      batch_status = Status::Internal(
          std::string("batch classification failed: ") + e.what());
    } catch (...) {
      batch_status = Status::Internal("batch classification failed");
    }
  }
  const std::uint64_t modality_failures =
      engine->degradation().total() - degradation_before;

  // Stage 4: answer. A computed label whose deadline has meanwhile
  // passed is withheld — the service never serves a stale result.
  const auto done = std::chrono::steady_clock::now();
  std::uint64_t classified = 0;
  for (std::size_t i = 0; i < ready.size(); ++i) {
    QueuedRequest& request = *ready[i];
    if (!batch_status.ok()) {
      Answer(request, Result<ServiceReply>(batch_status));
      continue;
    }
    if (request.has_deadline && done >= request.deadline) {
      Answer(request,
             Result<ServiceReply>(Status::DeadlineExceeded(StrFormat(
                 "request %llu went stale during classification",
                 static_cast<unsigned long long>(request.id)))));
      continue;
    }
    ServiceReply reply;
    reply.label = labels[i];
    reply.degraded = degraded_mode;
    reply.queue_wait_ms = MillisBetween(request.enqueue_time, arrival);
    Answer(request, Result<ServiceReply>(reply));
    ++classified;
  }

  // Stage 5: breaker bookkeeping (primary path only — the degraded
  // engine's outcomes must not close the breaker early; only the
  // half-open probe on the primary can do that).
  if (!degraded_mode) {
    std::uint64_t failures = ingest_failures + modality_failures;
    std::uint64_t successes = 0;
    if (!batch_status.ok()) {
      failures += ready.size();
    } else if (classified >= modality_failures) {
      successes = classified - modality_failures;
    }
    breaker_.RecordPrimary(successes, failures);
  }
  const CircuitBreaker::State after = breaker_.Evaluate();
  breaker_state_.store(static_cast<int>(after), std::memory_order_relaxed);
  breaker_gauge.Set(static_cast<double>(static_cast<int>(after)));
  const std::uint64_t trips = breaker_.trips();
  const std::uint64_t seen =
      breaker_trips_.exchange(trips, std::memory_order_relaxed);
  if (trips > seen) trip_counter.Increment(trips - seen);

  // Stage 6: surface the SLO state (one ring scan per batch, dispatcher
  // thread only).
  static obs::Gauge& slo_availability =
      obs::MetricsRegistry::Global().gauge("serve.slo.availability");
  static obs::Gauge& slo_latency_compliance =
      obs::MetricsRegistry::Global().gauge("serve.slo.latency_compliance");
  static obs::Gauge& slo_availability_burn =
      obs::MetricsRegistry::Global().gauge("serve.slo.availability_burn");
  static obs::Gauge& slo_latency_burn =
      obs::MetricsRegistry::Global().gauge("serve.slo.latency_burn");
  const obs::SloMonitor::Snapshot slo = slo_.snapshot();
  slo_availability.Set(slo.availability);
  slo_latency_compliance.Set(slo.latency_compliance);
  slo_availability_burn.Set(slo.worst_availability_burn);
  slo_latency_burn.Set(slo.worst_latency_burn);
}

namespace {

const char* BreakerStateName(int state) {
  switch (static_cast<CircuitBreaker::State>(state)) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

}  // namespace

std::string RecognitionService::StatusJson() const {
  const ServiceStats service_stats = stats();
  const RequestQueueStats q_stats = queue_stats();
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("status");
  json.String(stopping_.load(std::memory_order_relaxed) ? "stopping"
                                                        : "serving");
  json.Key("uptime_s");
  json.Number(uptime_s());
  json.Key("build");
  json.BeginObject();
  json.Key("compiler");
  json.String(__VERSION__);
  json.Key("compiled");
  json.String(__DATE__ " " __TIME__);
  json.EndObject();
  json.Key("approach");
  json.String(spec_.DisplayName());
  json.Key("match_mode");
  json.String(MatchModeName(options_.engine.match_mode));
  json.Key("stats");
  json.BeginObject();
  json.Key("submitted");
  json.Int(static_cast<std::int64_t>(service_stats.submitted));
  json.Key("ok");
  json.Int(static_cast<std::int64_t>(service_stats.ok));
  json.Key("shed");
  json.Int(static_cast<std::int64_t>(service_stats.shed));
  json.Key("timed_out");
  json.Int(static_cast<std::int64_t>(service_stats.timed_out));
  json.Key("failed");
  json.Int(static_cast<std::int64_t>(service_stats.failed));
  json.Key("rejected");
  json.Int(static_cast<std::int64_t>(service_stats.rejected));
  json.Key("degraded");
  json.Int(static_cast<std::int64_t>(service_stats.degraded));
  json.Key("batches");
  json.Int(static_cast<std::int64_t>(service_stats.batches));
  json.EndObject();
  json.Key("breaker");
  json.BeginObject();
  json.Key("state");
  json.String(BreakerStateName(service_stats.breaker_state));
  json.Key("trips");
  json.Int(static_cast<std::int64_t>(service_stats.breaker_trips));
  json.EndObject();
  json.Key("queue");
  json.BeginObject();
  json.Key("depth");
  json.Int(static_cast<std::int64_t>(queue_depth()));
  json.Key("capacity");
  json.Int(static_cast<std::int64_t>(options_.queue.capacity));
  json.Key("enqueued");
  json.Int(static_cast<std::int64_t>(q_stats.enqueued));
  json.Key("shed");
  json.Int(static_cast<std::int64_t>(q_stats.shed));
  json.Key("dequeued");
  json.Int(static_cast<std::int64_t>(q_stats.dequeued));
  json.EndObject();
  json.Key("slo");
  json.Raw(obs::SloSnapshotJson(slo_snapshot()));
  json.EndObject();
  return json.str();
}

void RegisterServiceIntrospection(obs::IntrospectServer& server,
                                  const RecognitionService& service) {
  server.Register("/statusz", [&service] {
    obs::IntrospectResponse response;
    response.body = service.StatusJson();
    return response;
  });
}

}  // namespace snor::serve
