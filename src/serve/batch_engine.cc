#include "serve/batch_engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace snor::serve {

Result<MatchMode> ParseMatchMode(const std::string& text) {
  if (text == "exact") return MatchMode::kExact;
  if (text == "ann") return MatchMode::kAnn;
  return Status::InvalidArgument("unknown match mode '" + text +
                                 "' (expected 'exact' or 'ann')");
}

const char* MatchModeName(MatchMode mode) {
  return mode == MatchMode::kAnn ? "ann" : "exact";
}

Result<std::unique_ptr<BatchEngine>> BatchEngine::Create(
    const ApproachSpec& spec, std::vector<ImageFeatures> gallery,
    const BatchEngineOptions& options, std::uint64_t baseline_seed) {
  if (gallery.empty()) {
    return Status::InvalidArgument("cannot shard " + spec.DisplayName() +
                                   " over an empty gallery");
  }
  if (spec.kind != ApproachSpec::Kind::kBaseline) {
    const bool any_valid =
        std::any_of(gallery.begin(), gallery.end(),
                    [](const ImageFeatures& f) { return f.valid; });
    if (!any_valid) {
      return Status::Unavailable(
          "gallery has no valid view to match against (all " +
          std::to_string(gallery.size()) + " entries failed extraction)");
    }
  }
  // NOLINTNEXTLINE(raw-new-delete): private ctor, immediately owned.
  return std::unique_ptr<BatchEngine>(new BatchEngine(
      spec, std::move(gallery), options, baseline_seed));
}

BatchEngine::BatchEngine(const ApproachSpec& spec,
                         std::vector<ImageFeatures> gallery,
                         const BatchEngineOptions& options,
                         std::uint64_t baseline_seed)
    : spec_(spec), gallery_(std::move(gallery)), options_(options) {
  int shards = options.num_shards > 0 ? options.num_shards
                                      : DefaultThreadCount();
  shards = std::max(1, std::min<int>(shards,
                                     static_cast<int>(gallery_.size())));
  const std::size_t n = gallery_.size();
  const std::size_t per_shard = n / static_cast<std::size_t>(shards);
  const std::size_t remainder = n % static_cast<std::size_t>(shards);
  std::size_t begin = 0;
  for (int s = 0; s < shards; ++s) {
    const std::size_t size =
        per_shard + (static_cast<std::size_t>(s) < remainder ? 1 : 0);
    shards_.push_back({begin, begin + size});
    begin += size;
  }
  SNOR_CHECK_EQ(begin, n);
  obs::MetricsRegistry::Global()
      .gauge("serve.engine.shards")
      .Set(static_cast<double>(shards_.size()));
  obs::MetricsRegistry::Global()
      .gauge("serve.engine.match_mode")
      .Set(options_.match_mode == MatchMode::kAnn ? 1.0 : 0.0);
  if (spec_.kind == ApproachSpec::Kind::kBaseline) {
    baseline_ = std::make_unique<RandomBaselineClassifier>(gallery_,
                                                           baseline_seed);
    return;  // The baseline never scores views; no bank or index needed.
  }
  bank_ = PackFeatureBank(gallery_);
  if (options_.match_mode == MatchMode::kAnn) {
    // The prefilter must rank with the approach's own shape metric so
    // its top-R equals the exact scan's top-R.
    GalleryIndexOptions index_options = options_.ann;
    index_options.shape_method = spec_.shape;
    index_ = GalleryViewIndex::Build(bank_, index_options);
  }
}

ObjectClass BatchEngine::FallbackLabel() const {
  // Mirrors MatchingClassifier::FallbackLabel (gallery is never empty
  // here; Create rejects that).
  return gallery_.front().label;
}

std::vector<ObjectClass> BatchEngine::ClassifyBatch(
    const std::vector<const ImageFeatures*>& queries) {
  return ClassifyBatch(queries, {});
}

std::vector<ObjectClass> BatchEngine::ClassifyBatch(
    const std::vector<const ImageFeatures*>& queries,
    const std::vector<obs::TraceContext>& contexts) {
  SNOR_TRACE_SPAN("serve.engine.batch");
  const obs::TraceContext* context_array =
      contexts.size() == queries.size() && !contexts.empty() ? contexts.data()
                                                             : nullptr;
  static obs::Counter& batches =
      obs::MetricsRegistry::Global().counter("serve.engine.batches");
  static obs::Counter& query_count =
      obs::MetricsRegistry::Global().counter("serve.engine.queries");
  static obs::Histogram& batch_latency_us =
      obs::MetricsRegistry::Global().histogram(
          "serve.engine.batch_latency_us");
  const obs::ScopedLatencyUs latency(batch_latency_us);
  batches.Increment();
  query_count.Increment(queries.size());
  if (queries.empty()) return {};

  if (baseline_ != nullptr) {
    // One RNG draw per query, in query order: the draw sequence (and so
    // every prediction) matches the cold classifier exactly.
    std::vector<ObjectClass> predictions;
    predictions.reserve(queries.size());
    for (const ImageFeatures* q : queries) {
      predictions.push_back(baseline_->Classify(*q));
    }
    degradation_ = baseline_->degradation();
    return predictions;
  }
  if (options_.match_mode == MatchMode::kAnn && index_.has_value()) {
    if (spec_.kind == ApproachSpec::Kind::kHybrid) {
      return ClassifyHybridAnn(queries, context_array);
    }
    return ClassifyPartialArgminAnn(queries, context_array);
  }
  if (spec_.kind == ApproachSpec::Kind::kHybrid) {
    return ClassifyHybrid(queries, context_array);
  }
  return ClassifyPartialArgmin(queries, context_array);
}

std::vector<ObjectClass> BatchEngine::ClassifyPartialArgmin(
    const std::vector<const ImageFeatures*>& queries,
    const obs::TraceContext* contexts) {
  const std::size_t nq = queries.size();
  const std::size_t ns = shards_.size();
  const bool shape = spec_.kind == ApproachSpec::Kind::kShape;
  const bool maximize = !shape && IsSimilarityMetric(spec_.color);

  std::vector<char> usable(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    usable[q] = shape ? ShapeModalityUsable(*queries[q])
                      : queries[q]->valid;
  }

  // One partial arg-optimum per (query, shard) cell, filled by the
  // parallel task grid; every worker writes only its own cell.
  std::vector<PartialBest> partials(nq * ns);  // GUARDED_BY(per_worker_slot)
  ParallelFor(
      nq * ns,
      [&](std::size_t task) {
        const std::size_t q = task / ns;
        if (!usable[q]) return;
        // Scope the scan span to the query's request chain (no-op when
        // the batch carries no contexts).
        std::optional<obs::ScopedTraceContext> scope;
        if (contexts != nullptr) scope.emplace(contexts[q]);
        SNOR_TRACE_SPAN("serve.engine.shard_scan");
        const Shard& shard = shards_[task % ns];
        // Bank kernels: same per-pair functions and skip rules as the
        // cold *OverRange loops, streaming the SoA rows instead of
        // chasing AoS pointers.
        partials[task] =
            shape ? BankShapeArgminOverRange(*queries[q], bank_, shard.begin,
                                             shard.end, spec_.shape)
                  : BankColorArgbestOverRange(*queries[q], bank_, shard.begin,
                                              shard.end, spec_.color);
      },
      options_.n_threads);

  // Sequential merge in ascending shard order: strict comparison keeps
  // the lowest-index optimum, exactly like the cold sequential scan.
  std::vector<ObjectClass> predictions(nq, FallbackLabel());
  for (std::size_t q = 0; q < nq; ++q) {
    if (!usable[q]) {
      ++degradation_.fallback;
      continue;
    }
    double best = maximize ? -kUnusableScore : kUnusableScore;
    ObjectClass best_label = FallbackLabel();
    for (std::size_t s = 0; s < ns; ++s) {
      const PartialBest& p = partials[q * ns + s];
      if (!p.found) continue;
      const bool better = maximize ? p.score > best : p.score < best;
      if (better) {
        best = p.score;
        best_label = p.label;
      }
    }
    predictions[q] = best_label;
  }
  return predictions;
}

std::vector<ObjectClass> BatchEngine::ClassifyHybrid(
    const std::vector<const ImageFeatures*>& queries,
    const obs::TraceContext* contexts) {
  const std::size_t nq = queries.size();
  const std::size_t ns = shards_.size();
  const std::size_t n = gallery_.size();

  std::vector<char> use_shape(nq);
  std::vector<char> use_color(nq);
  std::vector<std::vector<double>> shape_rows(nq);  // GUARDED_BY(per_worker_slot)
  std::vector<std::vector<double>> color_rows(nq);  // GUARDED_BY(per_worker_slot)
  for (std::size_t q = 0; q < nq; ++q) {
    use_shape[q] = ShapeModalityUsable(*queries[q]);
    use_color[q] = ColorModalityUsable(*queries[q]);
    if (use_shape[q] || use_color[q]) {
      shape_rows[q].assign(n, kUnusableScore);
      color_rows[q].assign(n, kUnusableScore);
    }
  }

  // Per-(query, shard) usable-score counts; summed per query after the
  // barrier to decide modality collapse exactly like ScoresForModes.
  std::vector<std::pair<std::size_t, std::size_t>> counts(nq * ns,  // GUARDED_BY(per_worker_slot)
                                                          {0, 0});
  ParallelFor(
      nq * ns,
      [&](std::size_t task) {
        const std::size_t q = task / ns;
        if (!use_shape[q] && !use_color[q]) return;
        std::optional<obs::ScopedTraceContext> scope;
        if (contexts != nullptr) scope.emplace(contexts[q]);
        SNOR_TRACE_SPAN("serve.engine.shard_scan");
        const Shard& shard = shards_[task % ns];
        BankHybridScoresOverRange(
            *queries[q], bank_, shard.begin, shard.end, spec_.shape,
            spec_.color, use_shape[q] != 0, use_color[q] != 0,
            &shape_rows[q], &color_rows[q], &counts[task].first,
            &counts[task].second);
      },
      options_.n_threads);

  std::vector<ObjectClass> predictions(nq, FallbackLabel());
  for (std::size_t q = 0; q < nq; ++q) {
    if (!use_shape[q] && !use_color[q]) {
      ++degradation_.fallback;
      continue;
    }
    std::size_t shape_usable = 0;
    std::size_t color_usable = 0;
    for (std::size_t s = 0; s < ns; ++s) {
      shape_usable += counts[q * ns + s].first;
      color_usable += counts[q * ns + s].second;
    }
    const bool shape_live = use_shape[q] != 0 && shape_usable > 0;
    const bool color_live = use_color[q] != 0 && color_usable > 0;
    if (!shape_live && !color_live) {
      ++degradation_.fallback;
      continue;
    }
    if (shape_live != color_live) {
      if (shape_live) {
        ++degradation_.shape_only;
      } else {
        ++degradation_.color_only;
      }
    }
    const std::vector<double> theta =
        AssembleHybridTheta(shape_rows[q], color_rows[q], spec_.alpha,
                            spec_.beta, shape_live, color_live);
    predictions[q] =
        BankHybridArgminLabel(theta, bank_, spec_.strategy, FallbackLabel());
  }
  return predictions;
}

std::vector<ObjectClass> BatchEngine::ClassifyPartialArgminAnn(
    const std::vector<const ImageFeatures*>& queries,
    const obs::TraceContext* contexts) {
  const std::size_t nq = queries.size();
  const bool shape = spec_.kind == ApproachSpec::Kind::kShape;

  std::vector<char> usable(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    usable[q] = shape ? ShapeModalityUsable(*queries[q])
                      : queries[q]->valid;
  }

  // One task per query: candidate retrieval is sub-linear, so sharding
  // the tiny rerank scan would cost more than it saves.
  std::vector<PartialBest> bests(nq);  // GUARDED_BY(per_worker_slot)
  std::vector<char> full_scan(nq, 0);  // GUARDED_BY(per_worker_slot)
  ParallelFor(
      nq,
      [&](std::size_t q) {
        if (!usable[q]) return;
        std::optional<obs::ScopedTraceContext> scope;
        if (contexts != nullptr) scope.emplace(contexts[q]);
        SNOR_TRACE_SPAN("serve.engine.ann_rerank");
        const std::vector<int> cands =
            index_->Candidates(*queries[q], shape, !shape);
        if (cands.empty()) {
          // No usable modality embedding: degrade to a full exact scan
          // rather than answering from nothing.
          full_scan[q] = 1;
          bests[q] = shape
                         ? BankShapeArgminOverRange(*queries[q], bank_, 0,
                                                    bank_.size(), spec_.shape)
                         : BankColorArgbestOverRange(*queries[q], bank_, 0,
                                                     bank_.size(), spec_.color);
          return;
        }
        bests[q] = shape ? BankShapeArgminOverCandidates(*queries[q], bank_,
                                                         cands, spec_.shape)
                         : BankColorArgbestOverCandidates(*queries[q], bank_,
                                                          cands, spec_.color);
      },
      options_.n_threads);

  static obs::Counter& full_scan_counter =
      obs::MetricsRegistry::Global().counter("serve.engine.ann_full_scans");
  std::vector<ObjectClass> predictions(nq, FallbackLabel());
  for (std::size_t q = 0; q < nq; ++q) {
    if (!usable[q]) {
      ++degradation_.fallback;
      continue;
    }
    if (full_scan[q] != 0) {
      ++ann_full_scans_;
      full_scan_counter.Increment();
    }
    const PartialBest& p = bests[q];
    if (p.found) predictions[q] = p.label;
  }
  return predictions;
}

std::vector<ObjectClass> BatchEngine::ClassifyHybridAnn(
    const std::vector<const ImageFeatures*>& queries,
    const obs::TraceContext* contexts) {
  const std::size_t nq = queries.size();
  const std::size_t n = bank_.size();

  std::vector<char> use_shape(nq);
  std::vector<char> use_color(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    use_shape[q] = ShapeModalityUsable(*queries[q]);
    use_color[q] = ColorModalityUsable(*queries[q]);
  }

  std::vector<ObjectClass> labels(nq, FallbackLabel());  // GUARDED_BY(per_worker_slot)
  // Per-query degradation verdict resolved inside the task, applied to
  // the shared counters sequentially after the barrier.
  enum : char { kNone, kFallback, kShapeOnly, kColorOnly };
  std::vector<char> verdicts(nq, kNone);  // GUARDED_BY(per_worker_slot)
  std::vector<char> full_scan(nq, 0);     // GUARDED_BY(per_worker_slot)
  ParallelFor(
      nq,
      [&](std::size_t q) {
        if (!use_shape[q] && !use_color[q]) {
          verdicts[q] = kFallback;
          return;
        }
        std::optional<obs::ScopedTraceContext> scope;
        if (contexts != nullptr) scope.emplace(contexts[q]);
        SNOR_TRACE_SPAN("serve.engine.ann_rerank");
        const std::vector<int> cands = index_->Candidates(
            *queries[q], use_shape[q] != 0, use_color[q] != 0);
        std::vector<double> shape_row(n, kUnusableScore);
        std::vector<double> color_row(n, kUnusableScore);
        std::size_t shape_usable = 0;
        std::size_t color_usable = 0;
        if (cands.empty()) {
          full_scan[q] = 1;
          BankHybridScoresOverRange(*queries[q], bank_, 0, n, spec_.shape,
                                    spec_.color, use_shape[q] != 0,
                                    use_color[q] != 0, &shape_row, &color_row,
                                    &shape_usable, &color_usable);
        } else {
          BankHybridScoresOverCandidates(
              *queries[q], bank_, cands, spec_.shape, spec_.color,
              use_shape[q] != 0, use_color[q] != 0, &shape_row, &color_row,
              &shape_usable, &color_usable);
        }
        const bool shape_live = use_shape[q] != 0 && shape_usable > 0;
        const bool color_live = use_color[q] != 0 && color_usable > 0;
        if (!shape_live && !color_live) {
          verdicts[q] = kFallback;
          return;
        }
        if (shape_live != color_live) {
          verdicts[q] = shape_live ? kShapeOnly : kColorOnly;
        }
        const std::vector<double> theta =
            AssembleHybridTheta(shape_row, color_row, spec_.alpha, spec_.beta,
                                shape_live, color_live);
        labels[q] =
            BankHybridArgminLabel(theta, bank_, spec_.strategy,
                                  FallbackLabel());
      },
      options_.n_threads);

  static obs::Counter& full_scan_counter =
      obs::MetricsRegistry::Global().counter("serve.engine.ann_full_scans");
  for (std::size_t q = 0; q < nq; ++q) {
    if (full_scan[q] != 0) {
      ++ann_full_scans_;
      full_scan_counter.Increment();
    }
    switch (verdicts[q]) {
      case kFallback: ++degradation_.fallback; break;
      case kShapeOnly: ++degradation_.shape_only; break;
      case kColorOnly: ++degradation_.color_only; break;
      default: break;
    }
  }
  return labels;
}

Result<EvalReport> RunApproachBatched(const ApproachSpec& spec,
                                      const std::vector<ImageFeatures>& inputs,
                                      const std::vector<ImageFeatures>& gallery,
                                      const WarmRunOptions& options) {
  SNOR_TRACE_SPAN("serve.engine.run");
  StageTiming timing;
  Stopwatch stage_clock;
  SNOR_ASSIGN_OR_RETURN(
      std::unique_ptr<BatchEngine> engine,
      BatchEngine::Create(spec, gallery, options.engine,
                          options.baseline_seed));
  timing.extract_s = stage_clock.ElapsedSeconds();

  static obs::Counter& classified_counter =
      obs::MetricsRegistry::Global().counter("serve.engine.items");
  static obs::Counter& skipped_counter =
      obs::MetricsRegistry::Global().counter("serve.engine.skipped");

  // Identical skip/ledger semantics to the cold RunApproach: ingest
  // failures are skipped and recorded, preprocess failures are
  // fallback-classified and recorded.
  std::vector<ObjectClass> truth;
  std::vector<const ImageFeatures*> eligible;
  std::vector<ItemError> errors;
  truth.reserve(inputs.size());
  eligible.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const ImageFeatures& f = inputs[i];
    if (!f.valid && !f.status.ok() &&
        f.status.code() != StatusCode::kNotFound) {
      errors.push_back({static_cast<int>(i), "ingest", f.status});
      skipped_counter.Increment();
      continue;
    }
    if (!f.valid) {
      errors.push_back(
          {static_cast<int>(i), "preprocess",
           f.status.ok() ? Status::NotFound("no foreground component")
                         : f.status});
    }
    truth.push_back(f.label);
    eligible.push_back(&f);
  }

  stage_clock.Reset();
  std::vector<ObjectClass> predictions;
  predictions.reserve(eligible.size());
  {
    SNOR_TRACE_SPAN("serve.engine.match");
    const std::size_t batch =
        static_cast<std::size_t>(std::max(1, options.engine.batch_size));
    std::vector<const ImageFeatures*> chunk;
    for (std::size_t begin = 0; begin < eligible.size(); begin += batch) {
      const std::size_t end = std::min(eligible.size(), begin + batch);
      chunk.assign(eligible.begin() + static_cast<long>(begin),
                   eligible.begin() + static_cast<long>(end));
      const std::vector<ObjectClass> labels = engine->ClassifyBatch(chunk);
      predictions.insert(predictions.end(), labels.begin(), labels.end());
    }
  }
  timing.match_s = stage_clock.ElapsedSeconds();
  classified_counter.Increment(predictions.size());

  stage_clock.Reset();
  EvalReport report = Evaluate(truth, predictions);
  timing.score_s = stage_clock.ElapsedSeconds();

  report.attempted = static_cast<int>(inputs.size());
  report.errors = std::move(errors);
  report.degraded_shape_only = engine->degradation().shape_only;
  report.degraded_color_only = engine->degradation().color_only;
  report.timing = timing;
  return report;
}

}  // namespace snor::serve
