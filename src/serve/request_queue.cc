#include "serve/request_queue.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace snor::serve {

RequestQueue::RequestQueue(const RequestQueueOptions& options)
    : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.shed_watermark == 0 ||
      options_.shed_watermark > options_.capacity) {
    options_.shed_watermark = std::max<std::size_t>(
        1, options_.capacity - options_.capacity / 4);
  }
}

Status RequestQueue::Enqueue(QueuedRequest& request) {
  static obs::Counter& shed_counter =
      obs::MetricsRegistry::Global().counter("serve.queue.shed");
  static obs::Counter& enqueued_counter =
      obs::MetricsRegistry::Global().counter("serve.queue.enqueued");
  static obs::Gauge& depth_gauge =
      obs::MetricsRegistry::Global().gauge("serve.queue.depth");
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) {
    return Status::Unavailable(
        "request queue is draining (closed to new admissions)");
  }
  const std::size_t depth = queue_.size();
  if (depth >= options_.capacity ||
      (request.has_deadline && depth >= options_.shed_watermark)) {
    ++stats_.shed;
    shed_counter.Increment();
    return Status::Unavailable(
        StrFormat("request shed by admission control (queue depth %zu, "
                  "watermark %zu, capacity %zu)",
                  depth, options_.shed_watermark, options_.capacity));
  }
  queue_.push_back(std::move(request));
  ++stats_.enqueued;
  enqueued_counter.Increment();
  depth_gauge.Set(static_cast<double>(queue_.size()));
  cv_.notify_one();
  return Status::OK();
}

std::vector<QueuedRequest> RequestQueue::PopBatch(std::size_t max_batch) {
  static obs::Gauge& depth_gauge =
      obs::MetricsRegistry::Global().gauge("serve.queue.depth");
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  const std::size_t n =
      std::min(max_batch == 0 ? std::size_t{1} : max_batch, queue_.size());
  std::vector<QueuedRequest> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  stats_.dequeued += n;
  depth_gauge.Set(static_cast<double>(queue_.size()));
  return batch;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

RequestQueueStats RequestQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace snor::serve
