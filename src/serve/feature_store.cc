#include "serve/feature_store.h"

#include <cstring>
#include <fstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace snor::serve {

StoredViewBanks PackStoredViews(const std::vector<StoredView>& views) {
  SNOR_TRACE_SPAN("serve.store.pack");
  StoredViewBanks banks;

  std::vector<ImageFeatures> features;
  features.reserve(views.size());
  std::vector<FloatDescriptor> floats;
  std::vector<BinaryDescriptor> binaries;
  banks.float_ranges.reserve(views.size());
  banks.binary_ranges.reserve(views.size());
  for (const StoredView& view : views) {
    features.push_back(view.features);
    const auto fb = static_cast<std::uint32_t>(floats.size());
    floats.insert(floats.end(), view.float_descriptors.begin(),
                  view.float_descriptors.end());
    banks.float_ranges.emplace_back(fb,
                                    static_cast<std::uint32_t>(floats.size()));
    const auto bb = static_cast<std::uint32_t>(binaries.size());
    binaries.insert(binaries.end(), view.binary_descriptors.begin(),
                    view.binary_descriptors.end());
    banks.binary_ranges.emplace_back(
        bb, static_cast<std::uint32_t>(binaries.size()));
  }

  banks.features = PackFeatureBank(features);
  banks.float_bank = PackFloatDescriptors(floats);
  banks.binary_bank = PackBinaryDescriptors(binaries);

  static obs::Counter& packed =
      obs::MetricsRegistry::Global().counter("serve.store.packed_views");
  packed.Increment(views.size());
  return banks;
}

namespace {

constexpr char kMagic[8] = {'S', 'N', 'O', 'R', 'F', 'S', 'T', '1'};

/// Records larger than this are rejected as corrupt before allocating.
constexpr std::uint32_t kMaxRecordBytes = 256u * 1024u * 1024u;
constexpr std::uint32_t kMaxRecords = 10'000'000u;

// --------------------------------------------------------------- hashing --

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t Fnv1a(const void* data, std::size_t size,
                    std::uint64_t seed = kFnvOffset) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

template <typename T>
std::uint64_t HashPod(std::uint64_t seed, const T& value) {
  return Fnv1a(&value, sizeof(T), seed);
}

// ----------------------------------------------------- buffer (de)coding --

/// Append-only byte buffer the record payload is serialized into, so the
/// checksum covers exactly the bytes on disk.
class Encoder {
 public:
  template <typename T>
  void Pod(const T& value) {
    const auto* p = reinterpret_cast<const char*>(&value);
    buffer_.append(p, sizeof(T));
  }

  void Bytes(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

/// Cursor over a record payload; every read is bounds-checked so a
/// corrupt length can never over-read.
class Decoder {
 public:
  explicit Decoder(const std::string& buffer) : buffer_(buffer) {}

  template <typename T>
  [[nodiscard]] bool Pod(T* value) {
    if (pos_ + sizeof(T) > buffer_.size()) return false;
    std::memcpy(value, buffer_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  [[nodiscard]] bool Bytes(void* out, std::size_t size) {
    if (pos_ + size > buffer_.size()) return false;
    std::memcpy(out, buffer_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  bool exhausted() const { return pos_ == buffer_.size(); }

 private:
  const std::string& buffer_;
  std::size_t pos_ = 0;
};

void EncodeView(const StoredView& view, Encoder* enc) {
  const ImageFeatures& f = view.features;
  enc->Pod(static_cast<std::int32_t>(ClassIndex(f.label)));
  enc->Pod(static_cast<std::int32_t>(f.model_id));
  enc->Pod(static_cast<std::uint8_t>(f.valid ? 1 : 0));
  for (double h : f.hu) enc->Pod(h);
  enc->Pod(static_cast<std::int32_t>(f.histogram.bins_per_channel()));
  const auto& bins = f.histogram.bins();
  enc->Bytes(bins.data(), bins.size() * sizeof(double));

  enc->Pod(static_cast<std::uint32_t>(view.float_descriptors.size()));
  enc->Pod(static_cast<std::uint32_t>(
      view.float_descriptors.empty() ? 0
                                     : view.float_descriptors.front().size()));
  for (const FloatDescriptor& d : view.float_descriptors) {
    enc->Bytes(d.data(), d.size() * sizeof(float));
  }
  enc->Pod(static_cast<std::uint32_t>(view.binary_descriptors.size()));
  for (const BinaryDescriptor& d : view.binary_descriptors) {
    enc->Bytes(d.data(), d.size());
  }
}

Status DecodeView(const std::string& payload, StoredView* view) {
  Decoder dec(payload);
  ImageFeatures& f = view->features;
  std::int32_t label = 0;
  std::int32_t model_id = 0;
  std::uint8_t valid = 0;
  if (!dec.Pod(&label) || !dec.Pod(&model_id) || !dec.Pod(&valid)) {
    return Status::IoError("truncated record header");
  }
  if (label < 0 || label >= kNumClasses) {
    return Status::IoError(StrFormat("bad class index %d", label));
  }
  f.label = ClassFromIndex(label);
  f.model_id = model_id;
  f.valid = valid != 0;
  for (double& h : f.hu) {
    if (!dec.Pod(&h)) return Status::IoError("truncated Hu moments");
  }
  std::int32_t bins_per_channel = 0;
  if (!dec.Pod(&bins_per_channel) || bins_per_channel <= 0 ||
      bins_per_channel > 256) {
    return Status::IoError("bad histogram bin count");
  }
  f.histogram = ColorHistogram(bins_per_channel);
  auto& bins = f.histogram.bins();
  if (!dec.Bytes(bins.data(), bins.size() * sizeof(double))) {
    return Status::IoError("truncated histogram payload");
  }

  std::uint32_t float_count = 0;
  std::uint32_t float_dim = 0;
  if (!dec.Pod(&float_count) || !dec.Pod(&float_dim)) {
    return Status::IoError("truncated float-descriptor header");
  }
  if (float_count > kMaxRecords || float_dim > 4096) {
    return Status::IoError("implausible float-descriptor shape");
  }
  view->float_descriptors.assign(float_count, FloatDescriptor(float_dim));
  for (FloatDescriptor& d : view->float_descriptors) {
    if (!dec.Bytes(d.data(), d.size() * sizeof(float))) {
      return Status::IoError("truncated float descriptors");
    }
  }
  std::uint32_t binary_count = 0;
  if (!dec.Pod(&binary_count)) {
    return Status::IoError("truncated binary-descriptor header");
  }
  if (binary_count > kMaxRecords) {
    return Status::IoError("implausible binary-descriptor count");
  }
  view->binary_descriptors.assign(binary_count, BinaryDescriptor{});
  for (BinaryDescriptor& d : view->binary_descriptors) {
    if (!dec.Bytes(d.data(), d.size())) {
      return Status::IoError("truncated binary descriptors");
    }
  }
  if (!dec.exhausted()) {
    return Status::IoError("trailing bytes in record payload");
  }
  return Status::OK();
}

}  // namespace

std::uint64_t OptionsFingerprint(const FeatureOptions& options) {
  std::uint64_t h = kFnvOffset;
  h = HashPod(h, kFeatureStoreVersion);
  h = HashPod(h, static_cast<std::uint8_t>(options.preprocess.white_background));
  h = HashPod(h, options.preprocess.white_threshold);
  h = HashPod(h, options.preprocess.black_threshold);
  h = HashPod(h, static_cast<std::uint8_t>(options.preprocess.use_otsu));
  h = HashPod(h, static_cast<std::int32_t>(
                     options.preprocess.min_component_pixels));
  h = HashPod(h, static_cast<std::int32_t>(options.hist_bins));
  h = HashPod(h, static_cast<std::uint8_t>(options.mask_histogram));
  h = HashPod(h, static_cast<std::uint8_t>(options.use_hsv));
  return h;
}

Status SaveFeatureStore(const std::string& path,
                        std::uint64_t options_fingerprint,
                        const std::vector<StoredView>& views) {
  SNOR_TRACE_SPAN("serve.store.save");
  static obs::Counter& bytes_written =
      obs::MetricsRegistry::Global().counter("serve.store.bytes_written");
  static obs::Counter& records_written =
      obs::MetricsRegistry::Global().counter("serve.store.records_written");
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  std::uint64_t total_bytes = sizeof(kMagic);
  auto write_pod = [&](const auto& value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(value));
    total_bytes += sizeof(value);
  };
  write_pod(kFeatureStoreVersion);
  write_pod(options_fingerprint);
  write_pod(static_cast<std::uint32_t>(views.size()));
  for (const StoredView& view : views) {
    Encoder enc;
    EncodeView(view, &enc);
    const std::string& payload = enc.buffer();
    write_pod(static_cast<std::uint32_t>(payload.size()));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    write_pod(Fnv1a(payload.data(), payload.size()));
    total_bytes += payload.size();
  }
  if (!out) return Status::IoError("write failed: " + path);
  bytes_written.Increment(total_bytes);
  records_written.Increment(views.size());
  return Status::OK();
}

Result<std::vector<StoredView>> LoadFeatureStore(
    const std::string& path, std::uint64_t expected_fingerprint) {
  SNOR_TRACE_SPAN("serve.store.load");
  static obs::Histogram& load_latency_us =
      obs::MetricsRegistry::Global().histogram("serve.store.load_latency_us");
  const obs::ScopedLatencyUs latency(load_latency_us);
  static obs::Counter& bytes_read =
      obs::MetricsRegistry::Global().counter("serve.store.bytes_read");
  SNOR_RETURN_NOT_OK(
      InjectFault(FaultPoint::kIoRead, "LoadFeatureStore " + path));
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("bad feature-store magic: " + path);
  }
  auto read_pod = [&](auto* value) {
    in.read(reinterpret_cast<char*>(value), sizeof(*value));
    return static_cast<bool>(in);
  };
  std::uint32_t version = 0;
  std::uint64_t fingerprint = 0;
  std::uint32_t count = 0;
  if (!read_pod(&version) || !read_pod(&fingerprint) || !read_pod(&count)) {
    return Status::IoError("truncated feature-store header: " + path);
  }
  if (version != kFeatureStoreVersion) {
    return Status::IoError(
        StrFormat("feature-store version %u, expected %u: %s", version,
                  kFeatureStoreVersion, path.c_str()));
  }
  if (fingerprint != expected_fingerprint) {
    return Status::InvalidArgument(StrFormat(
        "feature-store options fingerprint %016llx does not match the "
        "requested extraction options (%016llx): %s",
        static_cast<unsigned long long>(fingerprint),
        static_cast<unsigned long long>(expected_fingerprint), path.c_str()));
  }
  if (count > kMaxRecords) {
    return Status::IoError("implausible feature-store record count");
  }

  std::uint64_t total_bytes = sizeof(kMagic) + sizeof(version) +
                              sizeof(fingerprint) + sizeof(count);
  std::vector<StoredView> views;
  views.reserve(count);
  std::string payload;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t payload_size = 0;
    if (!read_pod(&payload_size) || payload_size > kMaxRecordBytes) {
      return Status::IoError(
          StrFormat("bad record size at record %u: %s", i, path.c_str()));
    }
    // Reject a declared length larger than what the file can still hold
    // BEFORE allocating: a corrupt 4-byte length field must not trigger a
    // multi-hundred-megabyte resize just to discover truncation on read.
    const std::uint64_t offset = static_cast<std::uint64_t>(in.tellg());
    if (offset > file_size ||
        std::uint64_t{payload_size} + sizeof(std::uint64_t) >
            file_size - offset) {
      return Status::IoError(StrFormat(
          "record %u declares %u payload byte(s) but only %llu remain: %s",
          i, payload_size,
          static_cast<unsigned long long>(
              file_size > offset ? file_size - offset : 0),
          path.c_str()));
    }
    payload.resize(payload_size);
    in.read(payload.data(), static_cast<std::streamsize>(payload_size));
    std::uint64_t checksum = 0;
    if (in.gcount() != static_cast<std::streamsize>(payload_size) ||
        !read_pod(&checksum) || FaultFires(FaultPoint::kTruncatedFile)) {
      return Status::IoError(
          StrFormat("truncated feature store at record %u: %s", i,
                    path.c_str()));
    }
    if (Fnv1a(payload.data(), payload.size()) != checksum) {
      return Status::IoError(
          StrFormat("checksum mismatch at record %u: %s", i, path.c_str()));
    }
    StoredView view;
    SNOR_RETURN_NOT_OK(DecodeView(payload, &view));
    total_bytes += sizeof(payload_size) + payload_size + sizeof(checksum);
    views.push_back(std::move(view));
  }
  bytes_read.Increment(total_bytes);
  return views;
}

Status SaveFeatureBank(const std::string& path,
                       std::uint64_t options_fingerprint,
                       const std::vector<ImageFeatures>& bank) {
  std::vector<StoredView> views(bank.size());
  for (std::size_t i = 0; i < bank.size(); ++i) {
    views[i].features = bank[i];
  }
  return SaveFeatureStore(path, options_fingerprint, views);
}

Result<std::vector<ImageFeatures>> LoadFeatureBank(
    const std::string& path, std::uint64_t expected_fingerprint) {
  SNOR_ASSIGN_OR_RETURN(std::vector<StoredView> views,
                        LoadFeatureStore(path, expected_fingerprint));
  std::vector<ImageFeatures> bank;
  bank.reserve(views.size());
  for (StoredView& view : views) bank.push_back(std::move(view.features));
  return bank;
}

Result<std::vector<ImageFeatures>> LoadOrComputeFeatures(
    const std::string& path, const Dataset& dataset,
    const FeatureOptions& options) {
  return LoadOrComputeFeatures(
      path, [&dataset]() -> const Dataset& { return dataset; }, options);
}

Result<std::vector<ImageFeatures>> LoadOrComputeFeatures(
    const std::string& path, const DatasetProvider& dataset,
    const FeatureOptions& options) {
  static obs::Counter& hits =
      obs::MetricsRegistry::Global().counter("serve.store.hit");
  static obs::Counter& misses =
      obs::MetricsRegistry::Global().counter("serve.store.miss");
  const std::uint64_t fingerprint = OptionsFingerprint(options);
  auto loaded = LoadFeatureBank(path, fingerprint);
  if (loaded.ok()) {
    hits.Increment();
    return loaded;
  }
  misses.Increment();
  std::vector<ImageFeatures> bank = ComputeFeatures(dataset(), options);
  const Status saved = SaveFeatureBank(path, fingerprint, bank);
  if (!saved.ok()) {
    // Non-fatal: the run proceeds cold; only the next run's warm-up is
    // lost.
    SNOR_LOG(Warning) << "feature store save failed: " << saved.ToString();
  }
  return bank;
}

}  // namespace snor::serve
