#ifndef SNOR_SERVE_SERVICE_H_
#define SNOR_SERVE_SERVICE_H_

/// \file
/// Long-running recognition service: an admission-controlled request
/// queue in front of the sharded `BatchEngine`, with per-request
/// deadlines, bounded ingest retry, a circuit breaker that degrades to
/// single-modality matching under sustained faults, and drain-on-shutdown
/// semantics (every admitted request is answered exactly once).
///
/// Request lifecycle:
///
///   Submit ──admission──▶ RequestQueue ──dispatcher──▶ BatchEngine
///     │  shed/rejected        │  deadline expired        │  classified
///     ▼                       ▼                          ▼
///   future ◀── Unavailable  future ◀── DeadlineExceeded  future ◀── OK
///
/// The dispatcher is a single thread, so the engine's caller-serialized
/// contract holds by construction and OK answers stay bit-identical to
/// the cold classifier (the same batching proof as `BatchEngine`).

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "obs/introspect.h"
#include "obs/slo.h"
#include "serve/batch_engine.h"
#include "serve/request_queue.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace snor::serve {

/// \brief Circuit-breaker policy over recent per-request outcomes.
struct CircuitBreakerOptions {
  /// Number of most recent primary-path outcomes considered.
  int window = 64;
  /// Minimum outcomes in the window before the breaker may trip.
  int min_samples = 32;
  /// Failure ratio at/above which the breaker opens.
  double failure_ratio = 0.5;
  /// Time the breaker stays open (serving degraded) before a half-open
  /// probe of the primary path.
  double cooldown_ms = 250.0;
  /// False pins the breaker closed (no degradation path).
  bool enabled = true;
};

/// \brief Closed → Open → Half-open breaker driven by batch outcomes.
///
/// Not thread-safe: owned and driven by the service's dispatcher thread
/// only (the service mirrors state/trips into atomics for observers).
class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  explicit CircuitBreaker(const CircuitBreakerOptions& options);

  /// Current state, applying the open → half-open cool-down transition.
  State Evaluate();

  /// Feeds one batch's primary-path outcomes into the window. In
  /// half-open state the batch is the probe: any failure re-opens, an
  /// all-success probe closes and clears the window.
  void RecordPrimary(std::uint64_t successes, std::uint64_t failures);

  /// Number of closed/half-open → open transitions so far.
  std::uint64_t trips() const { return trips_; }

 private:
  void Record(bool failure);
  void Open();

  CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  std::vector<char> window_;
  std::size_t next_ = 0;
  std::size_t samples_ = 0;
  std::size_t failures_ = 0;
  std::uint64_t trips_ = 0;
  Stopwatch since_open_;
};

/// \brief Service runtime knobs.
struct ServiceOptions {
  BatchEngineOptions engine;
  RequestQueueOptions queue;
  CircuitBreakerOptions breaker;
  /// Max requests coalesced into one engine batch.
  int max_batch = 64;
  /// Deadline applied by `Submit(query)` / `Classify`; <= 0 disables.
  double default_deadline_ms = 0.0;
  /// Bounded retry for transient per-request ingest faults. The
  /// remaining request deadline further caps `retry.deadline_ms`; full
  /// jitter decorrelates retries of queued neighbours by default.
  RetryOptions retry{.max_attempts = 3, .initial_backoff_ms = 0.05,
                     .backoff_multiplier = 2.0, .max_backoff_ms = 0.5,
                     .deadline_ms = 0.0, .jitter = 1.0, .jitter_seed = 2019};
  /// Seed for the random-baseline engine (kept for spec parity).
  std::uint64_t baseline_seed = 2019;
  /// Rolling-window SLO objectives fed by per-request outcomes (see
  /// `slo_snapshot`; surfaced by `/statusz` and the load bench).
  obs::SloOptions slo;
};

/// \brief Point-in-time outcome accounting. The invariant the load bench
/// and stress tests assert: submitted == ok + shed + timed_out + failed +
/// rejected (every submitted request answered exactly once).
struct ServiceStats {
  std::uint64_t submitted = 0;
  /// Answered with a label (includes degraded-engine answers).
  std::uint64_t ok = 0;
  /// Rejected by queue admission control (watermark / hard cap).
  std::uint64_t shed = 0;
  /// Answered `DeadlineExceeded` (expired in queue, during ingest retry,
  /// or gone stale by classification time).
  std::uint64_t timed_out = 0;
  /// Answered with a non-deadline error (ingest retry exhausted, internal).
  std::uint64_t failed = 0;
  /// Rejected because the service was shutting down.
  std::uint64_t rejected = 0;
  /// Subset of `ok` served by the degraded single-modality engine.
  std::uint64_t degraded = 0;
  /// Engine batches dispatched.
  std::uint64_t batches = 0;
  std::uint64_t breaker_trips = 0;
  /// CircuitBreaker::State of the last dispatched batch.
  int breaker_state = 0;
};

/// \brief The recognition-as-a-service runtime (ROADMAP item 1).
///
/// Producers call `Submit`/`Classify` from any thread; a single
/// dispatcher thread coalesces queued requests into shard-parallel
/// engine batches. Destruction drains: queued requests are still
/// answered (or expired) before the dispatcher joins.
class RecognitionService {
 public:
  /// Validating factory: fails like `BatchEngine::Create` (empty or
  /// all-invalid gallery). For hybrid/shape specs a colour-only degraded
  /// engine is also built (best effort) as the circuit breaker's
  /// fallback path.
  [[nodiscard]] static Result<std::unique_ptr<RecognitionService>> Create(
      const ApproachSpec& spec, std::vector<ImageFeatures> gallery,
      const ServiceOptions& options = {});

  ~RecognitionService();

  RecognitionService(const RecognitionService&) = delete;
  RecognitionService& operator=(const RecognitionService&) = delete;

  /// Submits one query with the service's default deadline. The query
  /// must stay alive until the returned future is ready. The future is
  /// always valid and fulfilled exactly once: OK with a reply, or
  /// `Unavailable` (shed / shutting down / ingest fault exhausted) /
  /// `DeadlineExceeded` / `Internal`.
  [[nodiscard]] std::future<Result<ServiceReply>> Submit(
      const ImageFeatures* query);

  /// Same, with an explicit per-request deadline (<= 0 disables).
  [[nodiscard]] std::future<Result<ServiceReply>> Submit(
      const ImageFeatures* query, double deadline_ms);

  /// Blocking convenience wrapper around `Submit`.
  [[nodiscard]] Result<ServiceReply> Classify(const ImageFeatures& query);

  /// Drains and stops: admission closes immediately, every queued
  /// request is still answered (classified, or expired as
  /// `DeadlineExceeded`), then the dispatcher joins. Idempotent and
  /// called by the destructor.
  void Shutdown();

  ServiceStats stats() const;
  std::size_t queue_depth() const { return queue_.depth(); }
  RequestQueueStats queue_stats() const { return queue_.stats(); }
  const ApproachSpec& spec() const { return spec_; }
  const ServiceOptions& options() const { return options_; }
  /// Null when the spec has no single-modality degradation path.
  const BatchEngine* degraded_engine() const { return degraded_.get(); }
  /// Rolling-window SLO state (availability / latency burn rates).
  obs::SloMonitor::Snapshot slo_snapshot() const { return slo_.snapshot(); }
  /// Seconds since the service was constructed.
  double uptime_s() const { return uptime_.ElapsedSeconds(); }

  /// `/statusz` payload: uptime, build info, ServiceStats,
  /// circuit-breaker state, queue depth, and the SLO snapshot.
  std::string StatusJson() const;

 private:
  RecognitionService(const ApproachSpec& spec,
                     std::unique_ptr<BatchEngine> primary,
                     std::unique_ptr<BatchEngine> degraded,
                     const ServiceOptions& options);

  void DispatcherLoop();
  void DispatchBatch(std::vector<QueuedRequest> batch);
  /// Fulfils one request exactly once and bumps the outcome counters.
  void Answer(QueuedRequest& request, Result<ServiceReply> result);

  ApproachSpec spec_;
  ServiceOptions options_;
  std::unique_ptr<BatchEngine> primary_;  // GUARDED_BY(dispatcher)
  std::unique_ptr<BatchEngine> degraded_;  // GUARDED_BY(dispatcher)
  RequestQueue queue_;
  CircuitBreaker breaker_;  // GUARDED_BY(dispatcher)

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> degraded_answers_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> breaker_trips_{0};
  std::atomic<int> breaker_state_{0};
  std::atomic<bool> stopping_{false};
  std::once_flag shutdown_once_;
  /// Thread-safe (internally locked); fed by Answer and the Submit
  /// rejection path.
  obs::SloMonitor slo_;
  Stopwatch uptime_;
  std::thread dispatcher_;
};

/// Registers `/statusz` on `server`, backed by `service.StatusJson()`.
/// The service must outlive the server (or be deregistered by replacing
/// the handler) — both `serve_daemon` and `load_serving` stop the server
/// before destroying the service.
void RegisterServiceIntrospection(obs::IntrospectServer& server,
                                  const RecognitionService& service);

}  // namespace snor::serve

#endif  // SNOR_SERVE_SERVICE_H_
