#ifndef SNOR_KNOWLEDGE_SYNSETS_H_
#define SNOR_KNOWLEDGE_SYNSETS_H_

#include <string>
#include <string_view>
#include <vector>

#include "data/object_class.h"
#include "util/status.h"

namespace snor {

/// \brief A WordNet-style synset entry linking a recognised object class
/// to lexical concepts — the "task-agnostic knowledge acquisition" hook
/// the paper motivates ShapeNet with (§1-2: ShapeNet annotation is based
/// on WordNet synsets and linked to ImageNet).
///
/// The table is a self-contained offline snapshot of the relevant WordNet
/// 3.0 noun entries for the ten studied classes.
struct SynsetEntry {
  /// WordNet 3.0 noun offset identifier (e.g. "n03001627" for chair).
  std::string synset_id;
  /// Lemmas (synonyms) of the synset.
  std::vector<std::string> lemmas;
  /// Direct hypernym chain, most specific first ("seat", "furniture", ...).
  std::vector<std::string> hypernyms;
  /// Typical affordances / related concepts (ConceptNet-style edges),
  /// usable by downstream task planners.
  std::vector<std::string> related_concepts;
};

/// Returns the synset entry for an object class.
const SynsetEntry& SynsetFor(ObjectClass cls);

/// Resolves a lemma ("couch", "sofa", "settee", ...) to an object class;
/// matching is case-insensitive. NotFound when no class carries the lemma.
[[nodiscard]] Result<ObjectClass> ClassFromLemma(std::string_view lemma);

/// All classes whose synset lists `concept` among its hypernyms or
/// related concepts (case-insensitive). E.g. "furniture" covers chair,
/// table, sofa; "openable" covers window, door, bottle, box.
std::vector<ObjectClass> ClassesWithConcept(std::string_view concept_name);

}  // namespace snor

#endif  // SNOR_KNOWLEDGE_SYNSETS_H_
