#include "knowledge/semantic_map.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace snor {

ObjectClass MapObject::Label() const {
  int best = 0;
  for (int c = 1; c < kNumClasses; ++c) {
    if (votes[static_cast<std::size_t>(c)] >
        votes[static_cast<std::size_t>(best)]) {
      best = c;
    }
  }
  return ClassFromIndex(best);
}

double MapObject::Confidence() const {
  if (total_observations == 0) return 0.0;
  return static_cast<double>(
             votes[static_cast<std::size_t>(ClassIndex(Label()))]) /
         total_observations;
}

SemanticMap::SemanticMap(double merge_radius)
    : merge_radius_(merge_radius) {
  SNOR_CHECK_GT(merge_radius, 0.0);
}

int SemanticMap::AddObservation(double x, double y, ObjectClass label) {
  // Merge into the nearest instance within the radius, if any.
  MapObject* nearest = nullptr;
  double nearest_dist = merge_radius_;
  for (auto& obj : objects_) {
    const double d = std::hypot(obj.x - x, obj.y - y);
    if (d <= nearest_dist) {
      nearest_dist = d;
      nearest = &obj;
    }
  }
  if (nearest != nullptr) {
    // Running-average position, evidence vote.
    const double n = nearest->total_observations;
    nearest->x = (nearest->x * n + x) / (n + 1);
    nearest->y = (nearest->y * n + y) / (n + 1);
    ++nearest->votes[static_cast<std::size_t>(ClassIndex(label))];
    ++nearest->total_observations;
    return nearest->id;
  }
  MapObject obj;
  obj.id = next_id_++;
  obj.x = x;
  obj.y = y;
  obj.votes[static_cast<std::size_t>(ClassIndex(label))] = 1;
  obj.total_observations = 1;
  objects_.push_back(obj);
  return obj.id;
}

std::vector<const MapObject*> SemanticMap::FindByClass(
    ObjectClass cls) const {
  std::vector<const MapObject*> found;
  for (const auto& obj : objects_) {
    if (obj.Label() == cls) found.push_back(&obj);
  }
  return found;
}

std::vector<const MapObject*> SemanticMap::FindByConcept(
    std::string_view concept_name) const {
  const auto classes = ClassesWithConcept(concept_name);
  std::vector<const MapObject*> found;
  for (const auto& obj : objects_) {
    const ObjectClass label = obj.Label();
    if (std::find(classes.begin(), classes.end(), label) != classes.end()) {
      found.push_back(&obj);
    }
  }
  return found;
}

std::vector<const MapObject*> SemanticMap::FindByLemma(
    std::string_view lemma) const {
  const auto cls = ClassFromLemma(lemma);
  if (!cls.ok()) return {};
  return FindByClass(cls.value());
}

std::array<int, kNumClasses> SemanticMap::Inventory() const {
  std::array<int, kNumClasses> counts{};
  for (const auto& obj : objects_) {
    ++counts[static_cast<std::size_t>(ClassIndex(obj.Label()))];
  }
  return counts;
}

}  // namespace snor
