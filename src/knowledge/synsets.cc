#include "knowledge/synsets.h"

#include <array>

#include "util/string_util.h"

namespace snor {
namespace {

// Offline snapshot of WordNet 3.0 noun synsets for the ten classes, with
// ConceptNet-style related concepts for downstream task selection.
const std::array<SynsetEntry, kNumClasses>& Table() {
  // Leaked on purpose (static-destruction-order safety).
  static const std::array<SynsetEntry, kNumClasses>& kTable =
      *new std::array<SynsetEntry, kNumClasses>{{  // NOLINT(raw-new-delete)
          // Chair.
          {"n03001627",
           {"chair"},
           {"seat", "furniture", "furnishing", "artifact"},
           {"sit", "movable", "graspable-by-two", "obstacle"}},
          // Bottle.
          {"n02876657",
           {"bottle"},
           {"vessel", "container", "instrumentality", "artifact"},
           {"drink", "pour", "graspable", "recyclable", "glass"}},
          // Paper.
          {"n14974264",
           {"paper"},
           {"material", "substance", "matter"},
           {"write", "recyclable", "lightweight", "flammable"}},
          // Book.
          {"n02870092",
           {"book", "volume"},
           {"publication", "work", "artifact"},
           {"read", "graspable", "shelvable", "lightweight"}},
          // Table.
          {"n04379243",
           {"table"},
           {"furniture", "furnishing", "artifact"},
           {"put-on", "work-surface", "obstacle", "heavy"}},
          // Box.
          {"n02883344",
           {"box"},
           {"container", "instrumentality", "artifact"},
           {"store", "carry", "openable", "stackable", "recyclable"}},
          // Window.
          {"n04587648",
           {"window"},
           {"framework", "supporting structure", "structure", "artifact"},
           {"openable", "transparent", "fixed", "ventilation",
            "escape-route"}},
          // Door.
          {"n03221720",
           {"door"},
           {"movable barrier", "barrier", "structure", "artifact"},
           {"openable", "passage", "fixed", "escape-route"}},
          // Sofa.
          {"n04256520",
           {"sofa", "couch", "lounge"},
           {"seat", "furniture", "furnishing", "artifact"},
           {"sit", "lie-on", "heavy", "obstacle"}},
          // Lamp.
          {"n03636248",
           {"lamp"},
           {"source of illumination", "artifact"},
           {"light", "electrical", "fragile", "switchable"}},
      }};
  return kTable;
}

bool ContainsToken(const std::vector<std::string>& list,
                   const std::string& lowered) {
  for (const auto& item : list) {
    if (AsciiToLower(item) == lowered) return true;
  }
  return false;
}

}  // namespace

const SynsetEntry& SynsetFor(ObjectClass cls) {
  return Table()[static_cast<std::size_t>(ClassIndex(cls))];
}

Result<ObjectClass> ClassFromLemma(std::string_view lemma) {
  const std::string lowered = AsciiToLower(lemma);
  for (int c = 0; c < kNumClasses; ++c) {
    if (ContainsToken(Table()[static_cast<std::size_t>(c)].lemmas,
                      lowered)) {
      return ClassFromIndex(c);
    }
  }
  return Status::NotFound("no class with lemma: " + std::string(lemma));
}

std::vector<ObjectClass> ClassesWithConcept(std::string_view concept_name) {
  const std::string lowered = AsciiToLower(concept_name);
  std::vector<ObjectClass> matches;
  for (int c = 0; c < kNumClasses; ++c) {
    const SynsetEntry& entry = Table()[static_cast<std::size_t>(c)];
    if (ContainsToken(entry.hypernyms, lowered) ||
        ContainsToken(entry.related_concepts, lowered)) {
      matches.push_back(ClassFromIndex(c));
    }
  }
  return matches;
}

}  // namespace snor
