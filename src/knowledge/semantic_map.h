#ifndef SNOR_KNOWLEDGE_SEMANTIC_MAP_H_
#define SNOR_KNOWLEDGE_SEMANTIC_MAP_H_

#include <array>
#include <string>
#include <vector>

#include "data/object_class.h"
#include "knowledge/synsets.h"

namespace snor {

/// \brief One recognised object instance accumulated in the map.
struct MapObject {
  int id = 0;
  /// World position (metres, robot odometry frame).
  double x = 0.0;
  double y = 0.0;
  /// Per-class observation counts (evidence).
  std::array<int, kNumClasses> votes{};
  int total_observations = 0;

  /// Majority-vote class.
  ObjectClass Label() const;
  /// Fraction of observations agreeing with the majority label.
  double Confidence() const;
};

/// \brief Task-agnostic semantic map (Nüchter & Hertzberg style): the
/// robot streams classified detections with world coordinates; detections
/// within `merge_radius` of an existing instance are fused by voting,
/// others spawn new instances. Queries go through the synset layer, so a
/// task ("find something to sit on") resolves by concept, not by class —
/// the knowledge-grounding use case the paper targets.
class SemanticMap {
 public:
  explicit SemanticMap(double merge_radius = 0.75);

  /// Records one classified detection at world position (x, y).
  /// Returns the id of the (new or merged) map object.
  int AddObservation(double x, double y, ObjectClass label);

  /// All current object instances.
  const std::vector<MapObject>& objects() const { return objects_; }

  /// Objects whose majority label is `cls`.
  std::vector<const MapObject*> FindByClass(ObjectClass cls) const;

  /// Objects whose majority label's synset carries `concept_name` as a
  /// hypernym or related concept ("furniture", "openable", "sit", ...).
  std::vector<const MapObject*> FindByConcept(
      std::string_view concept_name) const;

  /// Objects whose synset lemmas match a natural-language noun
  /// ("couch" finds sofas).
  std::vector<const MapObject*> FindByLemma(std::string_view lemma) const;

  /// Class histogram over all map objects (inventory summary).
  std::array<int, kNumClasses> Inventory() const;

 private:
  double merge_radius_;
  int next_id_ = 1;
  std::vector<MapObject> objects_;
};

}  // namespace snor

#endif  // SNOR_KNOWLEDGE_SEMANTIC_MAP_H_
