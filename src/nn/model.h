#ifndef SNOR_NN_MODEL_H_
#define SNOR_NN_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "img/image.h"
#include "nn/cosine_merge.h"
#include "nn/layer.h"
#include "nn/layers.h"
#include "nn/xcorr.h"
#include "util/status.h"

namespace snor {

/// \brief Which branch-merging operation the Siamese model uses:
/// the paper's inexact Normalized-X-Corr, or the traditional exact
/// cosine-similarity merge it is contrasted with (§3.4).
enum class MergeKind { kNormXCorr, kCosine };

/// \brief Architecture hyper-parameters of the Normalized-X-Corr pair
/// classifier.
///
/// The shape follows Subramaniam et al. / the paper's §3.4: a shared
/// conv+pool trunk applied to both images, a NormXCorr merge, two further
/// conv stages with max pooling, then dense layers feeding a 2-way softmax
/// ("similar" / "dissimilar"). Defaults are scaled for CPU training; the
/// paper's 160x60 GPU configuration is expressible through the same knobs
/// (see DESIGN.md substitution table).
struct XCorrModelConfig {
  int input_height = 32;
  int input_width = 32;
  int input_channels = 3;
  int trunk_conv1_channels = 8;
  int trunk_conv2_channels = 12;
  int xcorr_patch = 3;
  int xcorr_search_y = 2;
  int xcorr_search_x = 2;
  int head_conv_channels = 16;
  int dense_units = 64;
  /// Merge operation between the two branches (ablation knob).
  MergeKind merge = MergeKind::kNormXCorr;
  std::uint64_t seed = 42;
};

/// \brief The Siamese Normalized-X-Corr pair classifier.
///
/// `Forward` consumes two image batches (N, C, H, W) and produces logits
/// (N, 2) where class 1 = "similar". Both trunk branches share weights;
/// gradients from both branches accumulate into the shared parameters.
class XCorrModel {
 public:
  explicit XCorrModel(const XCorrModelConfig& config);

  const XCorrModelConfig& config() const { return config_; }

  /// Runs the pair through the network; caches activations for Backward.
  Tensor Forward(const Tensor& a, const Tensor& b, bool training);

  /// Backpropagates d loss / d logits through head, merge, and both
  /// trunk branches, accumulating parameter gradients.
  void Backward(const Tensor& grad_logits);

  /// All trainable parameters (shared trunk parameters appear once).
  std::vector<std::shared_ptr<Parameter>> Params();

  /// Total number of trainable scalars.
  std::size_t NumParameters();

  /// Serializes all weights to a binary file.
  [[nodiscard]] Status Save(const std::string& path);

  /// Restores weights saved by Save (architecture must match).
  [[nodiscard]] Status Load(const std::string& path);

 private:
  Tensor MergeForward(const Tensor& feat_a, const Tensor& feat_b);

  XCorrModelConfig config_;
  std::vector<std::unique_ptr<Layer>> trunk_a_;
  std::vector<std::unique_ptr<Layer>> trunk_b_;  // Shares trunk_a_ params.
  NormXCorrLayer xcorr_;
  CosineMergeLayer cosine_;
  std::vector<std::unique_ptr<Layer>> head_;
};

/// Converts an RGB/gray image to a (C, H, W) float tensor scaled to [0, 1].
Tensor ImageToTensor(const ImageU8& image);

/// Stacks (C, H, W) tensors into a (N, C, H, W) batch.
Tensor StackBatch(const std::vector<const Tensor*>& items);

}  // namespace snor

#endif  // SNOR_NN_MODEL_H_
