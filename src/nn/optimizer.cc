#include "nn/optimizer.h"

#include <cmath>

namespace snor {

void Optimizer::ZeroGrad(
    const std::vector<std::shared_ptr<Parameter>>& params) {
  for (const auto& p : params) p->grad.Fill(0.0f);
}

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {
  SNOR_CHECK_GT(lr, 0.0);
  SNOR_CHECK_GE(momentum, 0.0);
}

void Sgd::Step(const std::vector<std::shared_ptr<Parameter>>& params) {
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (const auto& p : params) velocity_.emplace_back(p->value.shape());
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    Parameter& p = *params[i];
    Tensor& vel = velocity_[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      vel[j] = static_cast<float>(momentum_ * vel[j] - lr_ * p.grad[j]);
      p.value[j] += vel[j];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps, double decay)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps), decay_(decay) {
  SNOR_CHECK_GT(lr, 0.0);
}

void Adam::Step(const std::vector<std::shared_ptr<Parameter>>& params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (const auto& p : params) {
      m_.emplace_back(p->value.shape());
      v_.emplace_back(p->value.shape());
    }
  }
  ++t_;
  const double lr_t = lr_ / (1.0 + decay_ * static_cast<double>(t_ - 1));
  const double bc1 = 1.0 - std::pow(beta1_, t_);
  const double bc2 = 1.0 - std::pow(beta2_, t_);

  for (std::size_t i = 0; i < params.size(); ++i) {
    Parameter& p = *params[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      const double g = p.grad[j];
      m[j] = static_cast<float>(beta1_ * m[j] + (1.0 - beta1_) * g);
      v[j] = static_cast<float>(beta2_ * v[j] + (1.0 - beta2_) * g * g);
      const double m_hat = m[j] / bc1;
      const double v_hat = v[j] / bc2;
      p.value[j] -= static_cast<float>(lr_t * m_hat /
                                       (std::sqrt(v_hat) + eps_));
    }
  }
}

}  // namespace snor
