#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace snor {

Tensor Softmax(const Tensor& logits) {
  SNOR_CHECK_EQ(logits.rank(), 2);
  const int n = logits.dim(0);
  const int k = logits.dim(1);
  Tensor probs({n, k});
  for (int i = 0; i < n; ++i) {
    float max_v = logits.At2(i, 0);
    for (int j = 1; j < k; ++j) max_v = std::max(max_v, logits.At2(i, j));
    double sum = 0.0;
    for (int j = 0; j < k; ++j) {
      const double e = std::exp(static_cast<double>(logits.At2(i, j)) - max_v);
      probs.At2(i, j) = static_cast<float>(e);
      sum += e;
    }
    for (int j = 0; j < k; ++j) {
      probs.At2(i, j) = static_cast<float>(probs.At2(i, j) / sum);
    }
  }
  return probs;
}

double SoftmaxCrossEntropy::Forward(const Tensor& logits,
                                    const std::vector<int>& targets) {
  SNOR_CHECK_EQ(logits.rank(), 2);
  SNOR_CHECK_EQ(static_cast<std::size_t>(logits.dim(0)), targets.size());
  probs_ = Softmax(logits);
  targets_ = targets;
  const int n = logits.dim(0);
  double loss = 0.0;
  // Note: class validity is checked against logits.dim(1) below.
  for (int i = 0; i < n; ++i) {
    const int t = targets[static_cast<std::size_t>(i)];
    SNOR_CHECK(t >= 0 && t < logits.dim(1));
    loss -= std::log(std::max(1e-12, static_cast<double>(probs_.At2(i, t))));
  }
  return loss / n;
}

Tensor SoftmaxCrossEntropy::Backward() const {
  SNOR_CHECK(!probs_.empty());
  const int n = probs_.dim(0);
  Tensor grad = probs_;
  for (int i = 0; i < n; ++i) {
    grad.At2(i, targets_[static_cast<std::size_t>(i)]) -= 1.0f;
  }
  grad.Scale(1.0f / static_cast<float>(n));
  return grad;
}

}  // namespace snor
