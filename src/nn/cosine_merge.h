#ifndef SNOR_NN_COSINE_MERGE_H_
#define SNOR_NN_COSINE_MERGE_H_

#include "nn/tensor.h"

namespace snor {

/// \brief Classic "exact matching" Siamese merge (Bromley et al., cited by
/// the paper as the traditional alternative to Normalized-X-Corr): at
/// every spatial location the feature vectors of the two branches are
/// compared by cosine similarity, producing a single-channel map.
///
/// Input: two (N, C, H, W) tensors. Output: (N, 1, H, W).
class CosineMergeLayer {
 public:
  /// Computes the cosine map; caches inputs for Backward.
  Tensor Forward(const Tensor& a, const Tensor& b);

  /// Backpropagates through the last Forward call.
  void Backward(const Tensor& grad_output, Tensor* grad_a, Tensor* grad_b);

 private:
  Tensor a_cache_;
  Tensor b_cache_;
};

}  // namespace snor

#endif  // SNOR_NN_COSINE_MERGE_H_
