#ifndef SNOR_NN_LOSS_H_
#define SNOR_NN_LOSS_H_

#include <vector>

#include "nn/tensor.h"

namespace snor {

/// \brief Fused softmax + categorical cross-entropy.
///
/// `Forward` takes raw logits of shape (N, classes) and integer targets;
/// it returns the mean loss and stores the probabilities. `Backward`
/// returns d loss / d logits (already divided by N).
class SoftmaxCrossEntropy {
 public:
  /// Computes softmax probabilities and mean cross-entropy loss.
  double Forward(const Tensor& logits, const std::vector<int>& targets);

  /// Gradient w.r.t. the logits of the last Forward call.
  Tensor Backward() const;

  /// Probabilities from the last Forward call, shape (N, classes).
  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<int> targets_;
};

/// Softmax over the last dimension of a (N, classes) tensor (inference
/// convenience).
Tensor Softmax(const Tensor& logits);

}  // namespace snor

#endif  // SNOR_NN_LOSS_H_
