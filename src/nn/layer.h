#ifndef SNOR_NN_LAYER_H_
#define SNOR_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace snor {

/// \brief A trainable weight with its gradient accumulator.
///
/// Parameters are held via `std::shared_ptr` so that layer instances can
/// share weights (Siamese branches): each branch keeps its own activation
/// cache but accumulates gradients into the same `grad` tensor.
struct Parameter {
  Tensor value;
  Tensor grad;

  explicit Parameter(Tensor v) : value(std::move(v)), grad(value.shape()) {}
};

/// \brief Base class for differentiable layers.
///
/// The training contract is: `Forward` caches whatever it needs, a single
/// subsequent `Backward(grad_out)` consumes the cache, *accumulates* into
/// parameter gradients, and returns the gradient w.r.t. the layer input.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Runs the layer. `training` enables stochastic behaviour (dropout).
  virtual Tensor Forward(const Tensor& input, bool training) = 0;

  /// Backpropagates through the most recent Forward call.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<std::shared_ptr<Parameter>> Params() { return {}; }

  /// Creates a new instance sharing this layer's parameters but owning a
  /// fresh activation cache (used for the second Siamese branch).
  virtual std::unique_ptr<Layer> CloneShared() const = 0;

  /// Human-readable layer name for summaries.
  virtual std::string name() const = 0;
};

/// Glorot/Xavier uniform initialization: U(-limit, limit) with
/// limit = sqrt(6 / (fan_in + fan_out)).
void GlorotInit(Tensor& t, int fan_in, int fan_out, Rng& rng);

}  // namespace snor

#endif  // SNOR_NN_LAYER_H_
