#include "nn/xcorr.h"

#include <cmath>

#include "util/check.h"

namespace snor {
namespace {

constexpr float kEps = 1e-8f;

}  // namespace

NormXCorrLayer::NormXCorrLayer(int patch, int search_y, int search_x)
    : patch_(patch), search_y_(search_y), search_x_(search_x) {
  SNOR_CHECK_GT(patch, 0);
  SNOR_CHECK_EQ(patch % 2, 1);
  SNOR_CHECK_GE(search_y, 0);
  SNOR_CHECK_GE(search_x, 0);
}

NormXCorrLayer::PatchStats NormXCorrLayer::ComputeStats(const Tensor& t,
                                                        int n, int cy,
                                                        int cx) const {
  const int c = t.dim(1);
  const int h = t.dim(2);
  const int w = t.dim(3);
  const int r = patch_ / 2;
  const int len = c * patch_ * patch_;

  double sum = 0.0;
  double sum_sq = 0.0;
  for (int ci = 0; ci < c; ++ci) {
    for (int dy = -r; dy <= r; ++dy) {
      const int y = cy + dy;
      if (y < 0 || y >= h) continue;  // Zero contributes nothing.
      for (int dx = -r; dx <= r; ++dx) {
        const int x = cx + dx;
        if (x < 0 || x >= w) continue;
        const double v = t.At4(n, ci, y, x);
        sum += v;
        sum_sq += v * v;
      }
    }
  }
  const double mean = sum / len;
  const double var = sum_sq / len - mean * mean;
  PatchStats stats;
  stats.mean = static_cast<float>(mean);
  stats.inv_std = static_cast<float>(1.0 / std::sqrt(std::max(var, 0.0) +
                                                     kEps));
  return stats;
}

Tensor NormXCorrLayer::Forward(const Tensor& a, const Tensor& b) {
  SNOR_CHECK_EQ(a.rank(), 4);
  SNOR_CHECK(a.SameShape(b));
  a_cache_ = a;
  b_cache_ = b;

  const int n = a.dim(0);
  const int c = a.dim(1);
  const int h = a.dim(2);
  const int w = a.dim(3);
  const int r = patch_ / 2;
  const int len = c * patch_ * patch_;
  const float inv_len = 1.0f / static_cast<float>(len);

  Tensor out({n, num_displacements(), h, w});

  for (int ni = 0; ni < n; ++ni) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const PatchStats sa = ComputeStats(a, ni, y, x);
        int d = 0;
        for (int sy = -search_y_; sy <= search_y_; ++sy) {
          for (int sx = -search_x_; sx <= search_x_; ++sx, ++d) {
            const int by = y + sy;
            const int bx = x + sx;
            const PatchStats sb = ComputeStats(b, ni, by, bx);
            // Correlate normalized patches (zeros outside the image).
            double acc = 0.0;
            for (int ci = 0; ci < c; ++ci) {
              for (int py = -r; py <= r; ++py) {
                for (int px = -r; px <= r; ++px) {
                  const int ay = y + py;
                  const int ax = x + px;
                  const float av =
                      (ay >= 0 && ay < h && ax >= 0 && ax < w)
                          ? a.At4(ni, ci, ay, ax)
                          : 0.0f;
                  const int byy = by + py;
                  const int bxx = bx + px;
                  const float bv =
                      (byy >= 0 && byy < h && bxx >= 0 && bxx < w)
                          ? b.At4(ni, ci, byy, bxx)
                          : 0.0f;
                  acc += static_cast<double>((av - sa.mean) * sa.inv_std) *
                         ((bv - sb.mean) * sb.inv_std);
                }
              }
            }
            out.At4(ni, d, y, x) = static_cast<float>(acc) * inv_len;
          }
        }
      }
    }
  }
  return out;
}

void NormXCorrLayer::Backward(const Tensor& grad_output, Tensor* grad_a,
                              Tensor* grad_b) {
  SNOR_CHECK(grad_a != nullptr && grad_b != nullptr);
  SNOR_CHECK(!a_cache_.empty());
  const Tensor& a = a_cache_;
  const Tensor& b = b_cache_;
  const int n = a.dim(0);
  const int c = a.dim(1);
  const int h = a.dim(2);
  const int w = a.dim(3);
  const int r = patch_ / 2;
  const int len = c * patch_ * patch_;
  const float inv_len = 1.0f / static_cast<float>(len);

  *grad_a = Tensor(a.shape());
  *grad_b = Tensor(b.shape());

  // Scratch buffers for one patch pair.
  std::vector<float> ahat(static_cast<std::size_t>(len));
  std::vector<float> bhat(static_cast<std::size_t>(len));

  for (int ni = 0; ni < n; ++ni) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const PatchStats sa = ComputeStats(a, ni, y, x);
        int d = 0;
        for (int sy = -search_y_; sy <= search_y_; ++sy) {
          for (int sx = -search_x_; sx <= search_x_; ++sx, ++d) {
            const float g = grad_output.At4(ni, d, y, x);
            if (g == 0.0f) continue;
            const int by = y + sy;
            const int bx = x + sx;
            const PatchStats sb = ComputeStats(b, ni, by, bx);

            // Gather normalized patches and the correlation value.
            double acc = 0.0;
            double sum_ahat = 0.0;
            double sum_bhat = 0.0;
            int idx = 0;
            for (int ci = 0; ci < c; ++ci) {
              for (int py = -r; py <= r; ++py) {
                for (int px = -r; px <= r; ++px, ++idx) {
                  const int ay = y + py;
                  const int ax = x + px;
                  const float av =
                      (ay >= 0 && ay < h && ax >= 0 && ax < w)
                          ? a.At4(ni, ci, ay, ax)
                          : 0.0f;
                  const int byy = by + py;
                  const int bxx = bx + px;
                  const float bv =
                      (byy >= 0 && byy < h && bxx >= 0 && bxx < w)
                          ? b.At4(ni, ci, byy, bxx)
                          : 0.0f;
                  const float ah = (av - sa.mean) * sa.inv_std;
                  const float bh = (bv - sb.mean) * sb.inv_std;
                  ahat[static_cast<std::size_t>(idx)] = ah;
                  bhat[static_cast<std::size_t>(idx)] = bh;
                  acc += static_cast<double>(ah) * bh;
                  sum_ahat += ah;
                  sum_bhat += bh;
                }
              }
            }
            const float out_val = static_cast<float>(acc) * inv_len;
            const float mean_bhat =
                static_cast<float>(sum_bhat) * inv_len;
            const float mean_ahat =
                static_cast<float>(sum_ahat) * inv_len;

            // d out / d a_j = (1/(L*sigma_a)) (bhat_j - mean(bhat)
            //                                   - out * ahat_j); same for b.
            const float ka = g * inv_len * sa.inv_std;
            const float kb = g * inv_len * sb.inv_std;
            idx = 0;
            for (int ci = 0; ci < c; ++ci) {
              for (int py = -r; py <= r; ++py) {
                for (int px = -r; px <= r; ++px, ++idx) {
                  const float ah = ahat[static_cast<std::size_t>(idx)];
                  const float bh = bhat[static_cast<std::size_t>(idx)];
                  const int ay = y + py;
                  const int ax = x + px;
                  if (ay >= 0 && ay < h && ax >= 0 && ax < w) {
                    grad_a->At4(ni, ci, ay, ax) +=
                        ka * (bh - mean_bhat - out_val * ah);
                  }
                  const int byy = by + py;
                  const int bxx = bx + px;
                  if (byy >= 0 && byy < h && bxx >= 0 && bxx < w) {
                    grad_b->At4(ni, ci, byy, bxx) +=
                        kb * (ah - mean_ahat - out_val * bh);
                  }
                }
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace snor
