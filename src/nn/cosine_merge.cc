#include "nn/cosine_merge.h"

#include <cmath>

#include "util/check.h"

namespace snor {
namespace {
constexpr double kEps = 1e-8;
}  // namespace

Tensor CosineMergeLayer::Forward(const Tensor& a, const Tensor& b) {
  SNOR_CHECK_EQ(a.rank(), 4);
  SNOR_CHECK(a.SameShape(b));
  a_cache_ = a;
  b_cache_ = b;
  const int n = a.dim(0);
  const int c = a.dim(1);
  const int h = a.dim(2);
  const int w = a.dim(3);
  Tensor out({n, 1, h, w});
  for (int ni = 0; ni < n; ++ni) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        double dot = 0.0, na = 0.0, nb = 0.0;
        for (int ci = 0; ci < c; ++ci) {
          const double av = a.At4(ni, ci, y, x);
          const double bv = b.At4(ni, ci, y, x);
          dot += av * bv;
          na += av * av;
          nb += bv * bv;
        }
        out.At4(ni, 0, y, x) = static_cast<float>(
            dot / (std::sqrt(na + kEps) * std::sqrt(nb + kEps)));
      }
    }
  }
  return out;
}

void CosineMergeLayer::Backward(const Tensor& grad_output, Tensor* grad_a,
                                Tensor* grad_b) {
  SNOR_CHECK(grad_a != nullptr && grad_b != nullptr);
  SNOR_CHECK(!a_cache_.empty());
  const Tensor& a = a_cache_;
  const Tensor& b = b_cache_;
  const int n = a.dim(0);
  const int c = a.dim(1);
  const int h = a.dim(2);
  const int w = a.dim(3);
  *grad_a = Tensor(a.shape());
  *grad_b = Tensor(b.shape());

  for (int ni = 0; ni < n; ++ni) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const float g = grad_output.At4(ni, 0, y, x);
        if (g == 0.0f) continue;
        double dot = 0.0, na = 0.0, nb = 0.0;
        for (int ci = 0; ci < c; ++ci) {
          const double av = a.At4(ni, ci, y, x);
          const double bv = b.At4(ni, ci, y, x);
          dot += av * bv;
          na += av * av;
          nb += bv * bv;
        }
        const double sa = std::sqrt(na + kEps);
        const double sb = std::sqrt(nb + kEps);
        const double cosv = dot / (sa * sb);
        for (int ci = 0; ci < c; ++ci) {
          const double av = a.At4(ni, ci, y, x);
          const double bv = b.At4(ni, ci, y, x);
          grad_a->At4(ni, ci, y, x) += static_cast<float>(
              g * (bv / (sa * sb) - cosv * av / (sa * sa)));
          grad_b->At4(ni, ci, y, x) += static_cast<float>(
              g * (av / (sa * sb) - cosv * bv / (sb * sb)));
        }
      }
    }
  }
}

}  // namespace snor
