#ifndef SNOR_NN_TENSOR_H_
#define SNOR_NN_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace snor {

/// \brief Dense float32 tensor with row-major layout.
///
/// Convolutional activations use NCHW order: (batch, channels, height,
/// width). The class is a plain value type; copies are deep.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-filled tensor of the given shape.
  explicit Tensor(std::vector<int> shape);

  /// Allocates and fills with `fill`.
  Tensor(std::vector<int> shape, float fill);

  static Tensor Zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

  /// Builds a 1-D tensor from explicit values.
  static Tensor FromVector(const std::vector<float>& values);

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const {
    SNOR_DCHECK(i >= 0 && i < static_cast<int>(shape_.size()));
    return shape_[static_cast<std::size_t>(i)];
  }
  int rank() const { return static_cast<int>(shape_.size()); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) {
    SNOR_DCHECK(i < data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    SNOR_DCHECK(i < data_.size());
    return data_[i];
  }

  /// 4-D (NCHW) accessor.
  float& At4(int n, int c, int h, int w) {
    SNOR_DCHECK(rank() == 4);
    return data_[((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] +
                  h) *
                     shape_[3] +
                 w];
  }
  float At4(int n, int c, int h, int w) const {
    return const_cast<Tensor*>(this)->At4(n, c, h, w);
  }

  /// 2-D accessor (rows, cols).
  float& At2(int r, int c) {
    SNOR_DCHECK(rank() == 2);
    return data_[static_cast<std::size_t>(r) * shape_[1] + c];
  }
  float At2(int r, int c) const {
    return const_cast<Tensor*>(this)->At2(r, c);
  }

  /// Reinterprets the data with a new shape of equal element count.
  Tensor Reshaped(std::vector<int> new_shape) const;

  /// Sets every element to `v`.
  void Fill(float v);

  /// Element-wise in-place addition; shapes must match.
  void Add(const Tensor& other);

  /// Multiplies every element by `s`.
  void Scale(float s);

  /// Sum of all elements.
  double Sum() const;

  /// "(2, 3, 4)" style shape string for diagnostics.
  std::string ShapeToString() const;

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace snor

#endif  // SNOR_NN_TENSOR_H_
