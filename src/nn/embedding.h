#ifndef SNOR_NN_EMBEDDING_H_
#define SNOR_NN_EMBEDDING_H_

#include <memory>
#include <vector>

#include "nn/layer.h"
#include "nn/layers.h"

namespace snor {

/// \brief Architecture of the metric-learning embedding network — the
/// paper's proposed future-work remedy for the Normalized-X-Corr failure
/// (conclusion; triplet networks after Hoffer & Ailon, cited as [14]).
struct EmbeddingModelConfig {
  int input_height = 32;
  int input_width = 32;
  int input_channels = 3;
  int conv1_channels = 8;
  int conv2_channels = 12;
  int embedding_dim = 32;
  std::uint64_t seed = 7;
};

/// \brief A conv trunk + dense head producing L2-normalized embeddings.
///
/// Instances created by `CloneShared` share all parameters but keep their
/// own activation caches, so anchor/positive/negative branches of a
/// triplet can backpropagate independently while accumulating gradients
/// into the same weights.
class EmbeddingModel {
 public:
  explicit EmbeddingModel(const EmbeddingModelConfig& config);

  /// Embeds a batch (N, C, H, W) -> (N, D), rows L2-normalized.
  Tensor Embed(const Tensor& batch, bool training);

  /// Backpropagates d loss / d embedding through the normalization and
  /// the network, accumulating parameter gradients.
  void Backward(const Tensor& grad_embedding);

  /// Shared-parameter clone with an independent cache.
  std::unique_ptr<EmbeddingModel> CloneShared() const;

  std::vector<std::shared_ptr<Parameter>> Params();
  std::size_t NumParameters();

  const EmbeddingModelConfig& config() const { return config_; }

 private:
  EmbeddingModel() = default;

  EmbeddingModelConfig config_;
  std::vector<std::unique_ptr<Layer>> layers_;
  // Caches of the last Embed call (for the normalization backward).
  Tensor pre_norm_;
  Tensor post_norm_;
  std::vector<float> inv_norms_;
};

/// \brief Result of a triplet-loss evaluation over a batch.
struct TripletLossResult {
  double loss = 0.0;
  /// Fraction of triplets with positive margin violation (still "active").
  double active_fraction = 0.0;
  Tensor grad_anchor;
  Tensor grad_positive;
  Tensor grad_negative;
};

/// Triplet margin loss with squared Euclidean distances:
///   L = mean_i max(0, |a_i - p_i|^2 - |a_i - n_i|^2 + margin).
/// Gradients are with respect to the three embedding batches.
TripletLossResult TripletLoss(const Tensor& anchor, const Tensor& positive,
                              const Tensor& negative, double margin);

}  // namespace snor

#endif  // SNOR_NN_EMBEDDING_H_
