#ifndef SNOR_NN_OPTIMIZER_H_
#define SNOR_NN_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace snor {

/// \brief Base interface for gradient-descent optimizers.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the accumulated gradients, then the caller
  /// is expected to call ZeroGrad before the next accumulation.
  virtual void Step(const std::vector<std::shared_ptr<Parameter>>& params) = 0;

  /// Clears all gradient accumulators.
  static void ZeroGrad(const std::vector<std::shared_ptr<Parameter>>& params);
};

/// \brief Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);

  void Step(const std::vector<std::shared_ptr<Parameter>>& params) override;

 private:
  double lr_;
  double momentum_;
  std::vector<Tensor> velocity_;
};

/// \brief Adam (Kingma & Ba) with Keras-style inverse-time learning-rate
/// decay: lr_t = lr / (1 + decay * t). The paper trains with
/// lr = 1e-4, decay = 1e-7.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr = 1e-4, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-7, double decay = 0.0);

  void Step(const std::vector<std::shared_ptr<Parameter>>& params) override;

  long step_count() const { return t_; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double decay_;
  long t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace snor

#endif  // SNOR_NN_OPTIMIZER_H_
