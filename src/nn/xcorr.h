#ifndef SNOR_NN_XCORR_H_
#define SNOR_NN_XCORR_H_

#include <vector>

#include "nn/tensor.h"

namespace snor {

/// \brief Normalized cross-correlation merge layer (Subramaniam et al.,
/// NeurIPS 2016), the inexact-matching core of the paper's fifth pipeline.
///
/// Given two feature maps A and B of shape (N, C, H, W), for every spatial
/// location (y, x) and every displacement (dy, dx) in the search window it
/// correlates the mean/std-normalized patch of A centred at (y, x) with the
/// normalized patch of B centred at (y+dy, x+dx):
///
///   out(n, d, y, x) = (1/L) * sum_i  hat(a)_i * hat(b)_i,
///   hat(v)_i = (v_i - mean(v)) / sqrt(var(v) + eps),   L = C*patch^2.
///
/// Output shape: (N, D, H, W) with D = (2*search_y+1) * (2*search_x+1).
/// Unlike plain correlation, the normalization makes the response robust
/// to illumination/viewpoint changes — the property the paper relies on.
/// Patches are zero-padded at the borders.
class NormXCorrLayer {
 public:
  /// `patch` must be odd; `search_y`/`search_x` are displacement radii.
  NormXCorrLayer(int patch, int search_y, int search_x);

  /// Number of displacement channels D.
  int num_displacements() const {
    return (2 * search_y_ + 1) * (2 * search_x_ + 1);
  }

  /// Computes the correlation volume; caches inputs for Backward.
  Tensor Forward(const Tensor& a, const Tensor& b);

  /// Backpropagates through the last Forward; returns gradients w.r.t.
  /// both inputs.
  void Backward(const Tensor& grad_output, Tensor* grad_a, Tensor* grad_b);

 private:
  struct PatchStats {
    float mean = 0.0f;
    float inv_std = 1.0f;  // 1 / sqrt(var + eps)
  };

  PatchStats ComputeStats(const Tensor& t, int n, int cy, int cx) const;

  int patch_;
  int search_y_;
  int search_x_;

  Tensor a_cache_;
  Tensor b_cache_;
};

}  // namespace snor

#endif  // SNOR_NN_XCORR_H_
