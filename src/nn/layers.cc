#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace snor {

void GlorotInit(Tensor& t, int fan_in, int fan_out, Rng& rng) {
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Uniform(-limit, limit));
  }
}

// ------------------------------------------------------------- Conv2D --

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, int stride,
               int padding, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding) {
  SNOR_CHECK_GT(in_channels, 0);
  SNOR_CHECK_GT(out_channels, 0);
  SNOR_CHECK_GT(kernel, 0);
  SNOR_CHECK_GT(stride, 0);
  SNOR_CHECK_GE(padding, 0);
  Tensor w({out_channels, in_channels, kernel, kernel});
  GlorotInit(w, in_channels * kernel * kernel, out_channels * kernel * kernel,
             rng);
  weight_ = std::make_shared<Parameter>(std::move(w));
  bias_ = std::make_shared<Parameter>(Tensor({out_channels}));
}

Tensor Conv2D::Forward(const Tensor& input, bool /*training*/) {
  SNOR_CHECK_EQ(input.rank(), 4);
  SNOR_CHECK_EQ(input.dim(1), in_channels_);
  const int n = input.dim(0);
  const int h = input.dim(2);
  const int w = input.dim(3);
  const int oh = (h + 2 * padding_ - kernel_) / stride_ + 1;
  const int ow = (w + 2 * padding_ - kernel_) / stride_ + 1;
  SNOR_CHECK_GT(oh, 0);
  SNOR_CHECK_GT(ow, 0);
  const int k2 = kernel_ * kernel_;
  const int col_rows = in_channels_ * k2;
  const int col_cols = oh * ow;

  input_shape_ = input.shape();
  cols_ = Tensor({n, col_rows, col_cols});

  // im2col.
  for (int ni = 0; ni < n; ++ni) {
    float* col_base =
        cols_.data() + static_cast<std::size_t>(ni) * col_rows * col_cols;
    for (int c = 0; c < in_channels_; ++c) {
      for (int ky = 0; ky < kernel_; ++ky) {
        for (int kx = 0; kx < kernel_; ++kx) {
          const int row = (c * kernel_ + ky) * kernel_ + kx;
          float* dst = col_base + static_cast<std::size_t>(row) * col_cols;
          for (int oy = 0; oy < oh; ++oy) {
            const int iy = oy * stride_ + ky - padding_;
            for (int ox = 0; ox < ow; ++ox) {
              const int ix = ox * stride_ + kx - padding_;
              dst[oy * ow + ox] =
                  (iy >= 0 && iy < h && ix >= 0 && ix < w)
                      ? input.At4(ni, c, iy, ix)
                      : 0.0f;
            }
          }
        }
      }
    }
  }

  Tensor out({n, out_channels_, oh, ow});
  const float* wdata = weight_->value.data();
  for (int ni = 0; ni < n; ++ni) {
    const float* col_base =
        cols_.data() + static_cast<std::size_t>(ni) * col_rows * col_cols;
    for (int oc = 0; oc < out_channels_; ++oc) {
      const float* wrow =
          wdata + static_cast<std::size_t>(oc) * col_rows;
      const float b = bias_->value[static_cast<std::size_t>(oc)];
      float* orow = out.data() + ((static_cast<std::size_t>(ni) *
                                       out_channels_ +
                                   oc) *
                                  static_cast<std::size_t>(col_cols));
      for (int p = 0; p < col_cols; ++p) orow[p] = b;
      for (int r = 0; r < col_rows; ++r) {
        const float wv = wrow[r];
        if (wv == 0.0f) continue;
        const float* crow = col_base + static_cast<std::size_t>(r) * col_cols;
        for (int p = 0; p < col_cols; ++p) orow[p] += wv * crow[p];
      }
    }
  }
  return out;
}

Tensor Conv2D::Backward(const Tensor& grad_output) {
  SNOR_CHECK(!input_shape_.empty());
  const int n = input_shape_[0];
  const int h = input_shape_[2];
  const int w = input_shape_[3];
  const int oh = grad_output.dim(2);
  const int ow = grad_output.dim(3);
  const int k2 = kernel_ * kernel_;
  const int col_rows = in_channels_ * k2;
  const int col_cols = oh * ow;

  float* dw = weight_->grad.data();
  float* db = bias_->grad.data();
  Tensor grad_input(input_shape_);

  std::vector<float> dcol(static_cast<std::size_t>(col_rows) * col_cols);
  for (int ni = 0; ni < n; ++ni) {
    const float* col_base =
        cols_.data() + static_cast<std::size_t>(ni) * col_rows * col_cols;
    // dW and db.
    for (int oc = 0; oc < out_channels_; ++oc) {
      const float* grow =
          grad_output.data() +
          ((static_cast<std::size_t>(ni) * out_channels_ + oc) *
           static_cast<std::size_t>(col_cols));
      double bias_acc = 0.0;
      for (int p = 0; p < col_cols; ++p) bias_acc += grow[p];
      db[oc] += static_cast<float>(bias_acc);
      float* dwrow = dw + static_cast<std::size_t>(oc) * col_rows;
      for (int r = 0; r < col_rows; ++r) {
        const float* crow = col_base + static_cast<std::size_t>(r) * col_cols;
        double acc = 0.0;
        for (int p = 0; p < col_cols; ++p) acc += grow[p] * crow[p];
        dwrow[r] += static_cast<float>(acc);
      }
    }
    // dcol = W^T * grad.
    std::fill(dcol.begin(), dcol.end(), 0.0f);
    const float* wdata = weight_->value.data();
    for (int oc = 0; oc < out_channels_; ++oc) {
      const float* grow =
          grad_output.data() +
          ((static_cast<std::size_t>(ni) * out_channels_ + oc) *
           static_cast<std::size_t>(col_cols));
      const float* wrow = wdata + static_cast<std::size_t>(oc) * col_rows;
      for (int r = 0; r < col_rows; ++r) {
        const float wv = wrow[r];
        if (wv == 0.0f) continue;
        float* drow = dcol.data() + static_cast<std::size_t>(r) * col_cols;
        for (int p = 0; p < col_cols; ++p) drow[p] += wv * grow[p];
      }
    }
    // col2im.
    for (int c = 0; c < in_channels_; ++c) {
      for (int ky = 0; ky < kernel_; ++ky) {
        for (int kx = 0; kx < kernel_; ++kx) {
          const int row = (c * kernel_ + ky) * kernel_ + kx;
          const float* drow =
              dcol.data() + static_cast<std::size_t>(row) * col_cols;
          for (int oy = 0; oy < oh; ++oy) {
            const int iy = oy * stride_ + ky - padding_;
            if (iy < 0 || iy >= h) continue;
            for (int ox = 0; ox < ow; ++ox) {
              const int ix = ox * stride_ + kx - padding_;
              if (ix < 0 || ix >= w) continue;
              grad_input.At4(ni, c, iy, ix) += drow[oy * ow + ox];
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<std::shared_ptr<Parameter>> Conv2D::Params() {
  return {weight_, bias_};
}

std::unique_ptr<Layer> Conv2D::CloneShared() const {
  // make_unique cannot reach the private default constructor.
  // NOLINTNEXTLINE(raw-new-delete)
  auto clone = std::unique_ptr<Conv2D>(new Conv2D());
  clone->in_channels_ = in_channels_;
  clone->out_channels_ = out_channels_;
  clone->kernel_ = kernel_;
  clone->stride_ = stride_;
  clone->padding_ = padding_;
  clone->weight_ = weight_;
  clone->bias_ = bias_;
  return clone;
}

// ---------------------------------------------------------- MaxPool2D --

MaxPool2D::MaxPool2D(int kernel, int stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  SNOR_CHECK_GT(kernel_, 0);
  SNOR_CHECK_GT(stride_, 0);
}

Tensor MaxPool2D::Forward(const Tensor& input, bool /*training*/) {
  SNOR_CHECK_EQ(input.rank(), 4);
  const int n = input.dim(0);
  const int c = input.dim(1);
  const int h = input.dim(2);
  const int w = input.dim(3);
  const int oh = (h - kernel_) / stride_ + 1;
  const int ow = (w - kernel_) / stride_ + 1;
  SNOR_CHECK_GT(oh, 0);
  SNOR_CHECK_GT(ow, 0);

  input_shape_ = input.shape();
  Tensor out({n, c, oh, ow});
  argmax_.assign(out.size(), 0);

  std::size_t out_idx = 0;
  for (int ni = 0; ni < n; ++ni) {
    for (int ci = 0; ci < c; ++ci) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (int ky = 0; ky < kernel_; ++ky) {
            const int iy = oy * stride_ + ky;
            for (int kx = 0; kx < kernel_; ++kx) {
              const int ix = ox * stride_ + kx;
              const std::size_t idx =
                  ((static_cast<std::size_t>(ni) * c + ci) * h + iy) * w + ix;
              const float v = input[idx];
              if (v > best) {
                best = v;
                best_idx = idx;
              }
            }
          }
          out[out_idx] = best;
          argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2D::Backward(const Tensor& grad_output) {
  SNOR_CHECK(!input_shape_.empty());
  SNOR_CHECK_EQ(grad_output.size(), argmax_.size());
  Tensor grad_input(input_shape_);
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    grad_input[argmax_[i]] += grad_output[i];
  }
  return grad_input;
}

std::unique_ptr<Layer> MaxPool2D::CloneShared() const {
  return std::make_unique<MaxPool2D>(kernel_, stride_);
}

// --------------------------------------------------------------- ReLU --

Tensor ReLU::Forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  mask_.assign(input.size(), false);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] > 0.0f) {
      mask_[i] = true;
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  SNOR_CHECK_EQ(grad_output.size(), mask_.size());
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (!mask_[i]) grad[i] = 0.0f;
  }
  return grad;
}

std::unique_ptr<Layer> ReLU::CloneShared() const {
  return std::make_unique<ReLU>();
}

// -------------------------------------------------------------- Dense --

Dense::Dense(int in_features, int out_features, Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  SNOR_CHECK_GT(in_features, 0);
  SNOR_CHECK_GT(out_features, 0);
  Tensor w({out_features, in_features});
  GlorotInit(w, in_features, out_features, rng);
  weight_ = std::make_shared<Parameter>(std::move(w));
  bias_ = std::make_shared<Parameter>(Tensor({out_features}));
}

Tensor Dense::Forward(const Tensor& input, bool /*training*/) {
  SNOR_CHECK_EQ(input.rank(), 2);
  SNOR_CHECK_EQ(input.dim(1), in_features_);
  input_cache_ = input;
  const int n = input.dim(0);
  Tensor out({n, out_features_});
  for (int ni = 0; ni < n; ++ni) {
    for (int o = 0; o < out_features_; ++o) {
      double acc = bias_->value[static_cast<std::size_t>(o)];
      const float* wrow =
          weight_->value.data() + static_cast<std::size_t>(o) * in_features_;
      const float* irow =
          input.data() + static_cast<std::size_t>(ni) * in_features_;
      for (int i = 0; i < in_features_; ++i) acc += wrow[i] * irow[i];
      out.At2(ni, o) = static_cast<float>(acc);
    }
  }
  return out;
}

Tensor Dense::Backward(const Tensor& grad_output) {
  SNOR_CHECK_EQ(grad_output.rank(), 2);
  const int n = grad_output.dim(0);
  Tensor grad_input({n, in_features_});
  float* dw = weight_->grad.data();
  float* db = bias_->grad.data();
  for (int ni = 0; ni < n; ++ni) {
    const float* grow =
        grad_output.data() + static_cast<std::size_t>(ni) * out_features_;
    const float* irow =
        input_cache_.data() + static_cast<std::size_t>(ni) * in_features_;
    float* girow =
        grad_input.data() + static_cast<std::size_t>(ni) * in_features_;
    for (int o = 0; o < out_features_; ++o) {
      const float g = grow[o];
      db[o] += g;
      float* dwrow = dw + static_cast<std::size_t>(o) * in_features_;
      const float* wrow =
          weight_->value.data() + static_cast<std::size_t>(o) * in_features_;
      for (int i = 0; i < in_features_; ++i) {
        dwrow[i] += g * irow[i];
        girow[i] += g * wrow[i];
      }
    }
  }
  return grad_input;
}

std::vector<std::shared_ptr<Parameter>> Dense::Params() {
  return {weight_, bias_};
}

std::unique_ptr<Layer> Dense::CloneShared() const {
  // make_unique cannot reach the private default constructor.
  // NOLINTNEXTLINE(raw-new-delete)
  auto clone = std::unique_ptr<Dense>(new Dense());
  clone->in_features_ = in_features_;
  clone->out_features_ = out_features_;
  clone->weight_ = weight_;
  clone->bias_ = bias_;
  return clone;
}

// ------------------------------------------------------------ Flatten --

Tensor Flatten::Forward(const Tensor& input, bool /*training*/) {
  SNOR_CHECK_GE(input.rank(), 2);
  input_shape_ = input.shape();
  int features = 1;
  for (int i = 1; i < input.rank(); ++i) features *= input.dim(i);
  return input.Reshaped({input.dim(0), features});
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  SNOR_CHECK(!input_shape_.empty());
  return grad_output.Reshaped(input_shape_);
}

std::unique_ptr<Layer> Flatten::CloneShared() const {
  return std::make_unique<Flatten>();
}

// ------------------------------------------------------------ Dropout --

Dropout::Dropout(double p, std::uint64_t seed) : p_(p), rng_(seed) {
  SNOR_CHECK(p >= 0.0 && p < 1.0);
}

Tensor Dropout::Forward(const Tensor& input, bool training) {
  if (!training || p_ == 0.0) {
    mask_.assign(input.size(), 1.0f);
    return input;
  }
  Tensor out = input;
  mask_.resize(input.size());
  const float scale = static_cast<float>(1.0 / (1.0 - p_));
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (rng_.Bernoulli(p_)) {
      mask_[i] = 0.0f;
      out[i] = 0.0f;
    } else {
      mask_[i] = scale;
      out[i] *= scale;
    }
  }
  return out;
}

Tensor Dropout::Backward(const Tensor& grad_output) {
  SNOR_CHECK_EQ(grad_output.size(), mask_.size());
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) grad[i] *= mask_[i];
  return grad;
}

std::unique_ptr<Layer> Dropout::CloneShared() const {
  return std::make_unique<Dropout>(p_, rng_.NextU64());
}

}  // namespace snor
