#include "nn/trainer.h"

#include <algorithm>

#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace snor {

XCorrTrainer::XCorrTrainer(XCorrModel* model, XCorrTrainOptions options)
    : model_(model), options_(options) {
  SNOR_CHECK(model != nullptr);
  SNOR_CHECK_GT(options.batch_size, 0);
  SNOR_CHECK_GT(options.max_epochs, 0);
}

std::vector<EpochStats> XCorrTrainer::Fit(const PairTensorDataset& data) {
  SNOR_CHECK_GT(data.size(), 0u);
  SNOR_CHECK_EQ(data.a.size(), data.labels.size());
  SNOR_CHECK_EQ(data.b.size(), data.labels.size());

  Adam optimizer(options_.learning_rate, 0.9, 0.999, 1e-7,
                 options_.lr_decay);
  const auto params = model_->Params();
  SoftmaxCrossEntropy loss;
  Rng rng(options_.shuffle_seed);

  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<EpochStats> history;
  double prev_loss = 0.0;
  int stall_epochs = 0;

  static obs::Counter& epochs_counter =
      obs::MetricsRegistry::Global().counter("nn.xcorr.epochs");
  static obs::Histogram& epoch_ms_hist =
      obs::MetricsRegistry::Global().histogram("nn.xcorr.epoch_ms");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();

  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    SNOR_TRACE_SPAN("nn.xcorr.epoch");
    const Stopwatch epoch_clock;
    rng.Shuffle(order);
    double loss_sum = 0.0;
    std::size_t correct = 0;
    std::size_t batches = 0;

    for (std::size_t begin = 0; begin < order.size();
         begin += static_cast<std::size_t>(options_.batch_size)) {
      const std::size_t end = std::min(
          order.size(), begin + static_cast<std::size_t>(options_.batch_size));
      std::vector<const Tensor*> batch_a;
      std::vector<const Tensor*> batch_b;
      std::vector<int> targets;
      for (std::size_t i = begin; i < end; ++i) {
        batch_a.push_back(&data.a[order[i]]);
        batch_b.push_back(&data.b[order[i]]);
        targets.push_back(data.labels[order[i]]);
      }

      Optimizer::ZeroGrad(params);
      const Tensor logits = model_->Forward(StackBatch(batch_a),
                                            StackBatch(batch_b),
                                            /*training=*/true);
      loss_sum += loss.Forward(logits, targets);
      ++batches;
      for (int i = 0; i < logits.dim(0); ++i) {
        const int pred = logits.At2(i, 1) > logits.At2(i, 0) ? 1 : 0;
        if (pred == targets[static_cast<std::size_t>(i)]) ++correct;
      }
      model_->Backward(loss.Backward());
      optimizer.Step(params);
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.loss = loss_sum / static_cast<double>(batches);
    stats.accuracy =
        static_cast<double>(correct) / static_cast<double>(data.size());
    history.push_back(stats);

    const double epoch_ms = epoch_clock.ElapsedMillis();
    epochs_counter.Increment();
    epoch_ms_hist.Record(epoch_ms);
    registry.gauge("nn.xcorr.loss").Set(stats.loss);
    registry.gauge("nn.xcorr.accuracy").Set(stats.accuracy);
    if (epoch_ms > 0.0) {
      registry.gauge("nn.xcorr.pairs_per_s")
          .Set(static_cast<double>(data.size()) / (epoch_ms / 1e3));
    }

    if (options_.verbose) {
      SNOR_LOG(Info) << "epoch " << epoch << " loss " << stats.loss
                     << " acc " << stats.accuracy;
    }

    // Early stopping: loss decrease below epsilon for > patience epochs.
    if (epoch > 0 && prev_loss - stats.loss < options_.early_stop_epsilon) {
      ++stall_epochs;
      if (stall_epochs > options_.early_stop_patience) break;
    } else {
      stall_epochs = 0;
    }
    prev_loss = stats.loss;
  }
  return history;
}

std::vector<int> PredictPairs(XCorrModel* model,
                              const PairTensorDataset& data,
                              int batch_size) {
  SNOR_CHECK(model != nullptr);
  SNOR_CHECK_GT(batch_size, 0);
  std::vector<int> predictions;
  predictions.reserve(data.size());
  for (std::size_t begin = 0; begin < data.size();
       begin += static_cast<std::size_t>(batch_size)) {
    const std::size_t end =
        std::min(data.size(), begin + static_cast<std::size_t>(batch_size));
    std::vector<const Tensor*> batch_a;
    std::vector<const Tensor*> batch_b;
    for (std::size_t i = begin; i < end; ++i) {
      batch_a.push_back(&data.a[i]);
      batch_b.push_back(&data.b[i]);
    }
    const Tensor logits = model->Forward(StackBatch(batch_a),
                                         StackBatch(batch_b),
                                         /*training=*/false);
    for (int i = 0; i < logits.dim(0); ++i) {
      predictions.push_back(logits.At2(i, 1) > logits.At2(i, 0) ? 1 : 0);
    }
  }
  return predictions;
}

}  // namespace snor
