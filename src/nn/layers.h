#ifndef SNOR_NN_LAYERS_H_
#define SNOR_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace snor {

/// \brief 2-D convolution over NCHW tensors (im2col implementation).
class Conv2D : public Layer {
 public:
  /// Creates the layer with Glorot-initialized weights.
  Conv2D(int in_channels, int out_channels, int kernel, int stride,
         int padding, Rng& rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<std::shared_ptr<Parameter>> Params() override;
  std::unique_ptr<Layer> CloneShared() const override;
  std::string name() const override { return "Conv2D"; }

  int out_channels() const { return out_channels_; }

 private:
  Conv2D() = default;

  int in_channels_ = 0;
  int out_channels_ = 0;
  int kernel_ = 0;
  int stride_ = 1;
  int padding_ = 0;
  std::shared_ptr<Parameter> weight_;  // (out, in, k, k)
  std::shared_ptr<Parameter> bias_;    // (out)

  // Forward cache.
  Tensor cols_;  // (N, in*k*k, oh*ow)
  std::vector<int> input_shape_;
};

/// \brief Max pooling over NCHW tensors.
class MaxPool2D : public Layer {
 public:
  explicit MaxPool2D(int kernel, int stride = 0);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> CloneShared() const override;
  std::string name() const override { return "MaxPool2D"; }

 private:
  int kernel_;
  int stride_;
  std::vector<int> input_shape_;
  std::vector<std::size_t> argmax_;  // Flat input index per output element.
};

/// \brief Element-wise rectified linear unit.
class ReLU : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> CloneShared() const override;
  std::string name() const override { return "ReLU"; }

 private:
  std::vector<bool> mask_;
};

/// \brief Fully connected layer over (N, features) tensors.
class Dense : public Layer {
 public:
  Dense(int in_features, int out_features, Rng& rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<std::shared_ptr<Parameter>> Params() override;
  std::unique_ptr<Layer> CloneShared() const override;
  std::string name() const override { return "Dense"; }

 private:
  Dense() = default;

  int in_features_ = 0;
  int out_features_ = 0;
  std::shared_ptr<Parameter> weight_;  // (out, in)
  std::shared_ptr<Parameter> bias_;    // (out)
  Tensor input_cache_;
};

/// \brief Collapses all non-batch dimensions: (N, ...) -> (N, prod).
class Flatten : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> CloneShared() const override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<int> input_shape_;
};

/// \brief Inverted dropout: at train time zeroes activations with
/// probability p and scales survivors by 1/(1-p); identity at eval time.
class Dropout : public Layer {
 public:
  explicit Dropout(double p, std::uint64_t seed = 0xD20);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> CloneShared() const override;
  std::string name() const override { return "Dropout"; }

 private:
  double p_;
  mutable Rng rng_;  // Mutable so CloneShared (const) can derive a seed.
  std::vector<float> mask_;
};

}  // namespace snor

#endif  // SNOR_NN_LAYERS_H_
