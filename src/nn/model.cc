#include "nn/model.h"

#include <cstring>
#include <fstream>

#include "util/string_util.h"

namespace snor {
namespace {

Tensor RunLayers(std::vector<std::unique_ptr<Layer>>& layers,
                 const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers) x = layer->Forward(x, training);
  return x;
}

Tensor BackpropLayers(std::vector<std::unique_ptr<Layer>>& layers,
                      const Tensor& grad) {
  Tensor g = grad;
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

}  // namespace

XCorrModel::XCorrModel(const XCorrModelConfig& config)
    : config_(config),
      xcorr_(config.xcorr_patch, config.xcorr_search_y,
             config.xcorr_search_x) {
  Rng rng(config.seed);

  // Shared trunk: conv5-pool2, conv5-pool2 (ReLU activations).
  trunk_a_.push_back(std::make_unique<Conv2D>(
      config.input_channels, config.trunk_conv1_channels, 5, 1, 2, rng));
  trunk_a_.push_back(std::make_unique<ReLU>());
  trunk_a_.push_back(std::make_unique<MaxPool2D>(2));
  trunk_a_.push_back(std::make_unique<Conv2D>(config.trunk_conv1_channels,
                                              config.trunk_conv2_channels, 5,
                                              1, 2, rng));
  trunk_a_.push_back(std::make_unique<ReLU>());
  trunk_a_.push_back(std::make_unique<MaxPool2D>(2));
  for (const auto& layer : trunk_a_) {
    trunk_b_.push_back(layer->CloneShared());
  }

  const int merge_channels = config.merge == MergeKind::kNormXCorr
                                 ? xcorr_.num_displacements()
                                 : 1;
  head_.push_back(std::make_unique<Conv2D>(
      merge_channels, config.head_conv_channels, 3, 1, 1, rng));
  head_.push_back(std::make_unique<ReLU>());
  head_.push_back(std::make_unique<MaxPool2D>(2));

  // Determine the flattened feature size with a dry run.
  Tensor probe({1, config.input_channels, config.input_height,
                config.input_width});
  Tensor feat = RunLayers(trunk_a_, probe, /*training=*/false);
  Tensor merged = MergeForward(feat, feat);
  Tensor head_out = RunLayers(head_, merged, /*training=*/false);
  int flat = 1;
  for (int i = 1; i < head_out.rank(); ++i) flat *= head_out.dim(i);

  head_.push_back(std::make_unique<Flatten>());
  head_.push_back(std::make_unique<Dense>(flat, config.dense_units, rng));
  head_.push_back(std::make_unique<ReLU>());
  head_.push_back(std::make_unique<Dense>(config.dense_units, 2, rng));
}

Tensor XCorrModel::MergeForward(const Tensor& feat_a, const Tensor& feat_b) {
  if (config_.merge == MergeKind::kNormXCorr) {
    return xcorr_.Forward(feat_a, feat_b);
  }
  return cosine_.Forward(feat_a, feat_b);
}

Tensor XCorrModel::Forward(const Tensor& a, const Tensor& b, bool training) {
  SNOR_CHECK_EQ(a.rank(), 4);
  SNOR_CHECK(a.SameShape(b));
  const Tensor feat_a = RunLayers(trunk_a_, a, training);
  const Tensor feat_b = RunLayers(trunk_b_, b, training);
  const Tensor merged = MergeForward(feat_a, feat_b);
  return RunLayers(head_, merged, training);
}

void XCorrModel::Backward(const Tensor& grad_logits) {
  const Tensor grad_merged = BackpropLayers(head_, grad_logits);
  Tensor grad_a;
  Tensor grad_b;
  if (config_.merge == MergeKind::kNormXCorr) {
    xcorr_.Backward(grad_merged, &grad_a, &grad_b);
  } else {
    cosine_.Backward(grad_merged, &grad_a, &grad_b);
  }
  BackpropLayers(trunk_a_, grad_a);
  BackpropLayers(trunk_b_, grad_b);
}

std::vector<std::shared_ptr<Parameter>> XCorrModel::Params() {
  std::vector<std::shared_ptr<Parameter>> params;
  for (auto& layer : trunk_a_) {  // trunk_b_ shares these.
    for (auto& p : layer->Params()) params.push_back(p);
  }
  for (auto& layer : head_) {
    for (auto& p : layer->Params()) params.push_back(p);
  }
  return params;
}

std::size_t XCorrModel::NumParameters() {
  std::size_t total = 0;
  for (const auto& p : Params()) total += p->value.size();
  return total;
}

namespace {
constexpr char kMagic[8] = {'S', 'N', 'O', 'R', 'W', '0', '0', '1'};
}  // namespace

Status XCorrModel::Save(const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  file.write(kMagic, sizeof(kMagic));
  const auto params = Params();
  const std::uint32_t count = static_cast<std::uint32_t>(params.size());
  file.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    const std::uint32_t rank = static_cast<std::uint32_t>(p->value.rank());
    file.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int d = 0; d < p->value.rank(); ++d) {
      const std::int32_t dim = p->value.dim(d);
      file.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    }
    file.write(reinterpret_cast<const char*>(p->value.data()),
               static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status XCorrModel::Load(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  char magic[8];
  file.read(magic, sizeof(magic));
  if (!file || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IoError("bad weight-file magic: " + path);
  }
  std::uint32_t count = 0;
  file.read(reinterpret_cast<char*>(&count), sizeof(count));
  const auto params = Params();
  if (count != params.size()) {
    return Status::InvalidArgument(
        StrFormat("weight count mismatch: file has %u, model has %zu",
                  count, params.size()));
  }
  for (const auto& p : params) {
    std::uint32_t rank = 0;
    file.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    if (rank != static_cast<std::uint32_t>(p->value.rank())) {
      return Status::InvalidArgument("weight rank mismatch");
    }
    for (int d = 0; d < p->value.rank(); ++d) {
      std::int32_t dim = 0;
      file.read(reinterpret_cast<char*>(&dim), sizeof(dim));
      if (dim != p->value.dim(d)) {
        return Status::InvalidArgument("weight shape mismatch");
      }
    }
    file.read(reinterpret_cast<char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    if (!file) return Status::IoError("truncated weight file: " + path);
  }
  return Status::OK();
}

Tensor ImageToTensor(const ImageU8& image) {
  Tensor t({image.channels(), image.height(), image.width()});
  float* out = t.data();
  for (int c = 0; c < image.channels(); ++c) {
    for (int y = 0; y < image.height(); ++y) {
      for (int x = 0; x < image.width(); ++x) {
        *out++ = image.at(y, x, c) / 255.0f;
      }
    }
  }
  return t;
}

Tensor StackBatch(const std::vector<const Tensor*>& items) {
  SNOR_CHECK(!items.empty());
  const Tensor& first = *items[0];
  SNOR_CHECK_EQ(first.rank(), 3);
  Tensor batch({static_cast<int>(items.size()), first.dim(0), first.dim(1),
                first.dim(2)});
  float* dst = batch.data();
  for (const Tensor* item : items) {
    SNOR_CHECK(item->SameShape(first));
    std::memcpy(dst, item->data(), item->size() * sizeof(float));
    dst += item->size();
  }
  return batch;
}

}  // namespace snor
