#include "nn/embedding.h"

#include <cmath>

#include "util/check.h"

namespace snor {

EmbeddingModel::EmbeddingModel(const EmbeddingModelConfig& config)
    : config_(config) {
  Rng rng(config.seed);
  layers_.push_back(std::make_unique<Conv2D>(config.input_channels,
                                             config.conv1_channels, 5, 1, 2,
                                             rng));
  layers_.push_back(std::make_unique<ReLU>());
  layers_.push_back(std::make_unique<MaxPool2D>(2));
  layers_.push_back(std::make_unique<Conv2D>(
      config.conv1_channels, config.conv2_channels, 3, 1, 1, rng));
  layers_.push_back(std::make_unique<ReLU>());
  layers_.push_back(std::make_unique<MaxPool2D>(2));
  layers_.push_back(std::make_unique<Flatten>());
  const int spatial = (config.input_height / 4) * (config.input_width / 4);
  layers_.push_back(std::make_unique<Dense>(config.conv2_channels * spatial,
                                            config.embedding_dim, rng));
}

Tensor EmbeddingModel::Embed(const Tensor& batch, bool training) {
  Tensor x = batch;
  for (auto& layer : layers_) x = layer->Forward(x, training);
  SNOR_CHECK_EQ(x.rank(), 2);
  pre_norm_ = x;

  // Row-wise L2 normalization.
  const int n = x.dim(0);
  const int d = x.dim(1);
  inv_norms_.assign(static_cast<std::size_t>(n), 0.0f);
  for (int i = 0; i < n; ++i) {
    double sq = 0.0;
    for (int j = 0; j < d; ++j) {
      const double v = x.At2(i, j);
      sq += v * v;
    }
    const float inv = static_cast<float>(1.0 / std::sqrt(sq + 1e-12));
    inv_norms_[static_cast<std::size_t>(i)] = inv;
    for (int j = 0; j < d; ++j) x.At2(i, j) *= inv;
  }
  post_norm_ = x;
  return x;
}

void EmbeddingModel::Backward(const Tensor& grad_embedding) {
  SNOR_CHECK(!pre_norm_.empty());
  SNOR_CHECK(grad_embedding.SameShape(post_norm_));
  const int n = post_norm_.dim(0);
  const int d = post_norm_.dim(1);

  // y = x / |x|  =>  dL/dx = (g - y * (y . g)) / |x|.
  Tensor grad(pre_norm_.shape());
  for (int i = 0; i < n; ++i) {
    double dot = 0.0;
    for (int j = 0; j < d; ++j) {
      dot += static_cast<double>(post_norm_.At2(i, j)) *
             grad_embedding.At2(i, j);
    }
    const float inv = inv_norms_[static_cast<std::size_t>(i)];
    for (int j = 0; j < d; ++j) {
      grad.At2(i, j) = static_cast<float>(
          (grad_embedding.At2(i, j) -
           post_norm_.At2(i, j) * static_cast<float>(dot)) *
          inv);
    }
  }

  Tensor g = grad;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
}

std::unique_ptr<EmbeddingModel> EmbeddingModel::CloneShared() const {
  // make_unique cannot reach the private default constructor.
  // NOLINTNEXTLINE(raw-new-delete)
  auto clone = std::unique_ptr<EmbeddingModel>(new EmbeddingModel());
  clone->config_ = config_;
  for (const auto& layer : layers_) {
    clone->layers_.push_back(layer->CloneShared());
  }
  return clone;
}

std::vector<std::shared_ptr<Parameter>> EmbeddingModel::Params() {
  std::vector<std::shared_ptr<Parameter>> params;
  for (auto& layer : layers_) {
    for (auto& p : layer->Params()) params.push_back(p);
  }
  return params;
}

std::size_t EmbeddingModel::NumParameters() {
  std::size_t total = 0;
  for (const auto& p : Params()) total += p->value.size();
  return total;
}

TripletLossResult TripletLoss(const Tensor& anchor, const Tensor& positive,
                              const Tensor& negative, double margin) {
  SNOR_CHECK(anchor.SameShape(positive));
  SNOR_CHECK(anchor.SameShape(negative));
  SNOR_CHECK_EQ(anchor.rank(), 2);
  const int n = anchor.dim(0);
  const int d = anchor.dim(1);

  TripletLossResult result;
  result.grad_anchor = Tensor(anchor.shape());
  result.grad_positive = Tensor(anchor.shape());
  result.grad_negative = Tensor(anchor.shape());

  int active = 0;
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    double dap = 0.0;
    double dan = 0.0;
    for (int j = 0; j < d; ++j) {
      const double ap = static_cast<double>(anchor.At2(i, j)) -
                        positive.At2(i, j);
      const double an = static_cast<double>(anchor.At2(i, j)) -
                        negative.At2(i, j);
      dap += ap * ap;
      dan += an * an;
    }
    const double violation = dap - dan + margin;
    if (violation <= 0) continue;
    ++active;
    loss += violation;
    const float scale = 2.0f / static_cast<float>(n);
    for (int j = 0; j < d; ++j) {
      const float a = anchor.At2(i, j);
      const float p = positive.At2(i, j);
      const float nn = negative.At2(i, j);
      result.grad_anchor.At2(i, j) += scale * (nn - p);
      result.grad_positive.At2(i, j) += scale * (p - a);
      result.grad_negative.At2(i, j) += scale * (a - nn);
    }
  }
  result.loss = loss / n;
  result.active_fraction = static_cast<double>(active) / n;
  return result;
}

}  // namespace snor
