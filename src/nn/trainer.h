#ifndef SNOR_NN_TRAINER_H_
#define SNOR_NN_TRAINER_H_

#include <vector>

#include "nn/model.h"
#include "nn/optimizer.h"

namespace snor {

/// \brief An image-pair dataset for the binary similar/dissimilar task.
/// Parallel arrays; tensors are (C, H, W).
struct PairTensorDataset {
  std::vector<Tensor> a;
  std::vector<Tensor> b;
  std::vector<int> labels;  // 1 = similar, 0 = dissimilar.

  std::size_t size() const { return labels.size(); }
};

/// \brief Training hyper-parameters for the Normalized-X-Corr model.
/// Defaults mirror the paper's §3.4 (Adam lr 1e-4, decay 1e-7, batch 16,
/// up to 100 epochs, early stop when the loss decrease stays below 1e-6
/// for more than 10 consecutive epochs).
struct XCorrTrainOptions {
  int batch_size = 16;
  int max_epochs = 100;
  double learning_rate = 1e-4;
  double lr_decay = 1e-7;
  double early_stop_epsilon = 1e-6;
  int early_stop_patience = 10;
  std::uint64_t shuffle_seed = 1234;
  bool verbose = false;
};

/// Per-epoch training statistics.
struct EpochStats {
  int epoch = 0;
  double loss = 0.0;
  double accuracy = 0.0;
};

/// \brief Mini-batch trainer with shuffling and early stopping.
class XCorrTrainer {
 public:
  XCorrTrainer(XCorrModel* model, XCorrTrainOptions options);

  /// Trains until max_epochs or early stopping; returns per-epoch stats.
  std::vector<EpochStats> Fit(const PairTensorDataset& data);

 private:
  XCorrModel* model_;
  XCorrTrainOptions options_;
};

/// Runs inference over a pair dataset; returns the predicted class
/// (1 = similar) per pair, batched for efficiency.
std::vector<int> PredictPairs(XCorrModel* model,
                              const PairTensorDataset& data,
                              int batch_size = 32);

}  // namespace snor

#endif  // SNOR_NN_TRAINER_H_
