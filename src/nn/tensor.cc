#include "nn/tensor.h"

#include <numeric>

#include "util/string_util.h"

namespace snor {
namespace {

std::size_t ShapeSize(const std::vector<int>& shape) {
  std::size_t total = 1;
  for (int d : shape) {
    SNOR_CHECK_GT(d, 0);
    total *= static_cast<std::size_t>(d);
  }
  return shape.empty() ? 0 : total;
}

}  // namespace

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  data_.assign(ShapeSize(shape_), 0.0f);
}

Tensor::Tensor(std::vector<int> shape, float fill) : shape_(std::move(shape)) {
  data_.assign(ShapeSize(shape_), fill);
}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  Tensor t({static_cast<int>(values.size())});
  std::copy(values.begin(), values.end(), t.data_.begin());
  return t;
}

Tensor Tensor::Reshaped(std::vector<int> new_shape) const {
  SNOR_CHECK_EQ(ShapeSize(new_shape), data_.size());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::Add(const Tensor& other) {
  SNOR_CHECK(SameShape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Scale(float s) {
  for (float& v : data_) v *= s;
}

double Tensor::Sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

std::string Tensor::ShapeToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i != 0) out += ", ";
    out += StrFormat("%d", shape_[i]);
  }
  out += ")";
  return out;
}

}  // namespace snor
