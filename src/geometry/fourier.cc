#include "geometry/fourier.h"

#include <cmath>
#include <complex>
#include <limits>
#include <numbers>

#include "util/check.h"

namespace snor {

std::vector<double> FourierDescriptors(const Contour& contour,
                                       int n_coefficients) {
  SNOR_CHECK_GT(n_coefficients, 0);
  const std::size_t n = contour.size();
  if (n < 4) return {};

  // Naive DFT of the complex boundary signal at frequencies 1..K and
  // -1..-K (negative frequencies carry reflection-sensitive detail).
  // We interleave |c_1|, |c_-1|, |c_2|, |c_-2|, ... and normalize by
  // |c_1|.
  const int k_max = n_coefficients / 2 + 1;
  std::vector<std::complex<double>> coeffs;
  coeffs.reserve(static_cast<std::size_t>(2 * k_max));
  const double step = 2.0 * std::numbers::pi / static_cast<double>(n);
  for (int k = 1; k <= k_max; ++k) {
    std::complex<double> pos(0.0, 0.0);
    std::complex<double> neg(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const std::complex<double> z(contour[t].x, contour[t].y);
      const double angle = step * static_cast<double>(k) *
                           static_cast<double>(t);
      pos += z * std::complex<double>(std::cos(angle), -std::sin(angle));
      neg += z * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    coeffs.push_back(pos / static_cast<double>(n));
    coeffs.push_back(neg / static_cast<double>(n));
  }

  const double scale = std::abs(coeffs[0]);
  if (scale < 1e-12) return {};
  std::vector<double> descriptor;
  descriptor.reserve(static_cast<std::size_t>(n_coefficients));
  // Skip |c_1| itself (it is 1 after normalization and carries no
  // information); emit the next n_coefficients magnitudes.
  for (std::size_t i = 1;
       i < coeffs.size() &&
       descriptor.size() < static_cast<std::size_t>(n_coefficients);
       ++i) {
    descriptor.push_back(std::abs(coeffs[i]) / scale);
  }
  return descriptor;
}

double FourierDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  if (a.empty() != b.empty()) {
    return std::numeric_limits<double>::max();
  }
  const std::size_t n = std::max(a.size(), b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double va = i < a.size() ? a[i] : 0.0;
    const double vb = i < b.size() ? b[i] : 0.0;
    acc += (va - vb) * (va - vb);
  }
  return std::sqrt(acc);
}

}  // namespace snor
