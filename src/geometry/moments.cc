#include "geometry/moments.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace snor {
namespace {

// Fills central and normalized moments from the spatial ones.
void CompleteMoments(Moments& m) {
  if (std::abs(m.m00) < std::numeric_limits<double>::epsilon()) return;
  const double inv_m00 = 1.0 / m.m00;
  const double cx = m.m10 * inv_m00;
  const double cy = m.m01 * inv_m00;

  m.mu20 = m.m20 - m.m10 * cx;
  m.mu11 = m.m11 - m.m10 * cy;
  m.mu02 = m.m02 - m.m01 * cy;
  m.mu30 = m.m30 - cx * (3 * m.mu20 + cx * m.m10);
  m.mu21 = m.m21 - cx * (2 * m.mu11 + cx * m.m01) - cy * m.mu20;
  m.mu12 = m.m12 - cy * (2 * m.mu11 + cy * m.m10) - cx * m.mu02;
  m.mu03 = m.m03 - cy * (3 * m.mu02 + cy * m.m01);

  const double inv_sqrt_m00 = 1.0 / std::sqrt(std::abs(m.m00));
  const double s2 = inv_m00 * inv_sqrt_m00 * inv_sqrt_m00;  // m00^-2
  const double s3 = s2 * inv_sqrt_m00;                      // m00^-2.5
  m.nu20 = m.mu20 * s2;
  m.nu11 = m.mu11 * s2;
  m.nu02 = m.mu02 * s2;
  m.nu30 = m.mu30 * s3;
  m.nu21 = m.mu21 * s3;
  m.nu12 = m.mu12 * s3;
  m.nu03 = m.mu03 * s3;
}

}  // namespace

Moments ContourMoments(const Contour& contour) {
  Moments m;
  const std::size_t n = contour.size();
  if (n == 0) return m;

  double a00 = 0, a10 = 0, a01 = 0, a20 = 0, a11 = 0, a02 = 0;
  double a30 = 0, a21 = 0, a12 = 0, a03 = 0;

  double xi_1 = contour[n - 1].x;
  double yi_1 = contour[n - 1].y;
  double xi_12 = xi_1 * xi_1;
  double yi_12 = yi_1 * yi_1;

  for (std::size_t i = 0; i < n; ++i) {
    const double xi = contour[i].x;
    const double yi = contour[i].y;
    const double xi2 = xi * xi;
    const double yi2 = yi * yi;
    const double dxy = xi_1 * yi - xi * yi_1;
    const double xii_1 = xi_1 + xi;
    const double yii_1 = yi_1 + yi;

    a00 += dxy;
    a10 += dxy * xii_1;
    a01 += dxy * yii_1;
    a20 += dxy * (xi_1 * xii_1 + xi2);
    a11 += dxy * (xi_1 * (yii_1 + yi_1) + xi * (yii_1 + yi));
    a02 += dxy * (yi_1 * yii_1 + yi2);
    a30 += dxy * xii_1 * (xi_12 + xi2);
    a03 += dxy * yii_1 * (yi_12 + yi2);
    a21 += dxy * (xi_12 * (3 * yi_1 + yi) + 2 * xi * xi_1 * yii_1 +
                  xi2 * (yi_1 + 3 * yi));
    a12 += dxy * (yi_12 * (3 * xi_1 + xi) + 2 * yi * yi_1 * xii_1 +
                  yi2 * (xi_1 + 3 * xi));
    xi_1 = xi;
    yi_1 = yi;
    xi_12 = xi2;
    yi_12 = yi2;
  }

  if (std::abs(a00) > std::numeric_limits<double>::epsilon()) {
    double db1_2 = 0.5, db1_6 = 1.0 / 6, db1_12 = 1.0 / 12,
           db1_24 = 1.0 / 24, db1_20 = 1.0 / 20, db1_60 = 1.0 / 60;
    if (a00 < 0) {
      db1_2 = -db1_2;
      db1_6 = -db1_6;
      db1_12 = -db1_12;
      db1_24 = -db1_24;
      db1_20 = -db1_20;
      db1_60 = -db1_60;
    }
    m.m00 = a00 * db1_2;
    m.m10 = a10 * db1_6;
    m.m01 = a01 * db1_6;
    m.m20 = a20 * db1_12;
    m.m11 = a11 * db1_24;
    m.m02 = a02 * db1_12;
    m.m30 = a30 * db1_20;
    m.m21 = a21 * db1_60;
    m.m12 = a12 * db1_60;
    m.m03 = a03 * db1_20;
  }

  CompleteMoments(m);
  return m;
}

Moments RegionMoments(const ImageU8& binary) {
  SNOR_CHECK_EQ(binary.channels(), 1);
  Moments m;
  for (int y = 0; y < binary.height(); ++y) {
    const std::uint8_t* row = binary.Row(y);
    for (int x = 0; x < binary.width(); ++x) {
      if (row[x] == 0) continue;
      const double xd = x;
      const double yd = y;
      m.m00 += 1;
      m.m10 += xd;
      m.m01 += yd;
      m.m20 += xd * xd;
      m.m11 += xd * yd;
      m.m02 += yd * yd;
      m.m30 += xd * xd * xd;
      m.m21 += xd * xd * yd;
      m.m12 += xd * yd * yd;
      m.m03 += yd * yd * yd;
    }
  }
  CompleteMoments(m);
  return m;
}

HuMoments ComputeHuMoments(const Moments& m) {
  const double t0 = m.nu30 + m.nu12;
  const double t1 = m.nu21 + m.nu03;
  const double q0 = t0 * t0;
  const double q1 = t1 * t1;
  const double n4 = 4 * m.nu11;
  const double s = m.nu20 + m.nu02;
  const double d = m.nu20 - m.nu02;

  HuMoments hu;
  hu[0] = s;
  hu[1] = d * d + n4 * m.nu11;
  hu[3] = q0 + q1;
  hu[5] = d * (q0 - q1) + n4 * t0 * t1;

  const double t2 = m.nu30 - 3 * m.nu12;
  const double t3 = 3 * m.nu21 - m.nu03;
  hu[2] = t2 * t2 + t3 * t3;
  hu[4] = t2 * t0 * (q0 - 3 * q1) + t3 * t1 * (3 * q0 - q1);
  hu[6] = t3 * t0 * (q0 - 3 * q1) - t2 * t1 * (3 * q0 - q1);
  return hu;
}

double MatchShapes(const HuMoments& ha, const HuMoments& hb,
                   ShapeMatchMethod method) {
  return MatchShapesRaw(ha.data(), hb.data(), method);
}

double MatchShapesRaw(const double* ha, const double* hb,
                      ShapeMatchMethod method) {
  return MatchShapesFromMaps(MakeLogHuMap(ha), MakeLogHuMap(hb), method);
}

LogHuMap MakeLogHuMap(const double* hu7) {
  constexpr double kEps = 1e-5;
  LogHuMap map;
  for (int i = 0; i < 7; ++i) {
    const double h = hu7[static_cast<std::size_t>(i)];
    const double ah = std::abs(h);
    if (ah > 0) map.any = true;
    // Note `!(ah <= kEps)`, not `ah > kEps`: a NaN moment must stay
    // usable so the NaN reaches the combine step exactly as it does in
    // the historical single-function path.
    if (ah <= kEps) continue;
    map.usable[static_cast<std::size_t>(i)] = 1;
    const double sign = h > 0 ? 1.0 : -1.0;
    map.m[static_cast<std::size_t>(i)] = sign * std::log10(ah);
  }
  return map;
}

double MatchShapesFromMaps(const LogHuMap& a, const LogHuMap& b,
                           ShapeMatchMethod method) {
  double result = 0.0;
  for (int i = 0; i < 7; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (a.usable[idx] == 0 || b.usable[idx] == 0) continue;
    const double la = a.m[idx];
    const double lb = b.m[idx];
    switch (method) {
      case ShapeMatchMethod::kI1:
        result += std::abs(-1.0 / la + 1.0 / lb);
        break;
      case ShapeMatchMethod::kI2:
        result += std::abs(-la + lb);
        break;
      case ShapeMatchMethod::kI3: {
        const double mmm = std::abs((la - lb) / la);
        result = std::max(result, mmm);
        break;
      }
    }
  }

  // One shape degenerate, the other not: maximal dissimilarity.
  if (a.any != b.any) return std::numeric_limits<double>::max();
  return result;
}

double MatchShapes(const Contour& a, const Contour& b,
                   ShapeMatchMethod method) {
  return MatchShapes(ComputeHuMoments(ContourMoments(a)),
                     ComputeHuMoments(ContourMoments(b)), method);
}

}  // namespace snor
