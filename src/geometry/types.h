#ifndef SNOR_GEOMETRY_TYPES_H_
#define SNOR_GEOMETRY_TYPES_H_

#include <vector>

namespace snor {

/// \brief Integer pixel coordinate.
struct Point {
  int x = 0;
  int y = 0;

  bool operator==(const Point&) const = default;
};

/// \brief Axis-aligned integer rectangle: [x, x+width) x [y, y+height).
struct Rect {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;

  bool operator==(const Rect&) const = default;

  int Area() const { return width * height; }
  bool Contains(const Point& p) const {
    return p.x >= x && p.x < x + width && p.y >= y && p.y < y + height;
  }
};

/// \brief An ordered closed boundary (outer border of a connected
/// component), clockwise in image coordinates.
using Contour = std::vector<Point>;

}  // namespace snor

#endif  // SNOR_GEOMETRY_TYPES_H_
