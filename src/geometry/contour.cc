#include "geometry/contour.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace snor {
namespace {

// 8-neighbourhood directions, clockwise starting East (image coordinates,
// y grows downward).
constexpr int kDx[8] = {1, 1, 0, -1, -1, -1, 0, 1};
constexpr int kDy[8] = {0, 1, 1, 1, 0, -1, -1, -1};

// Direction index for a king-move delta; aborts on non-adjacent deltas.
int DeltaToDir(int dx, int dy) {
  for (int d = 0; d < 8; ++d) {
    if (kDx[d] == dx && kDy[d] == dy) return d;
  }
  SNOR_CHECK_MSG(false, "non-adjacent delta");
  return -1;
}

// Moore-neighbour tracing of the outer boundary of the component with the
// given label, starting from its topmost-leftmost pixel.
Contour TraceBoundary(const Image<int>& labels, int label, Point start) {
  auto is_fg = [&](int x, int y) {
    return labels.InBounds(x, y) && labels.at(y, x) == label;
  };

  Contour contour;
  contour.push_back(start);

  // The pixel west of the topmost-leftmost pixel is guaranteed background.
  int backtrack_dir = 4;  // Direction from current pixel toward B.
  Point cur = start;
  const int initial_backtrack = backtrack_dir;

  // Bounded by 4x the component boundary length in practice; use a generous
  // cap as a safety net against pathological masks.
  const long cap =
      4L * (static_cast<long>(labels.width()) + labels.height() + 4) * 8;
  for (long iter = 0; iter < cap; ++iter) {
    int found_dir = -1;
    int prev_checked = backtrack_dir;
    for (int k = 1; k <= 8; ++k) {
      const int d = (backtrack_dir + k) % 8;
      const int nx = cur.x + kDx[d];
      const int ny = cur.y + kDy[d];
      if (is_fg(nx, ny)) {
        found_dir = d;
        break;
      }
      prev_checked = d;
    }
    if (found_dir < 0) {
      // Isolated pixel.
      return contour;
    }
    // New backtrack point: the (background) neighbour examined just before
    // the foreground pixel was found.
    const Point b{cur.x + kDx[prev_checked], cur.y + kDy[prev_checked]};
    cur = Point{cur.x + kDx[found_dir], cur.y + kDy[found_dir]};
    backtrack_dir = DeltaToDir(b.x - cur.x, b.y - cur.y);

    // Jacob's stopping criterion: back at the start entered the same way.
    if (cur == start && backtrack_dir == initial_backtrack) break;
    contour.push_back(cur);
  }
  return contour;
}

}  // namespace

Image<int> LabelComponents(const ImageU8& binary, int* num_components) {
  SNOR_CHECK_EQ(binary.channels(), 1);
  Image<int> labels(binary.width(), binary.height(), 1, 0);
  int next_label = 0;
  std::queue<Point> frontier;
  for (int y = 0; y < binary.height(); ++y) {
    for (int x = 0; x < binary.width(); ++x) {
      if (binary.at(y, x) == 0 || labels.at(y, x) != 0) continue;
      ++next_label;
      labels.at(y, x) = next_label;
      frontier.push({x, y});
      while (!frontier.empty()) {
        const Point p = frontier.front();
        frontier.pop();
        for (int d = 0; d < 8; ++d) {
          const int nx = p.x + kDx[d];
          const int ny = p.y + kDy[d];
          if (!binary.InBounds(nx, ny)) continue;
          if (binary.at(ny, nx) == 0 || labels.at(ny, nx) != 0) continue;
          labels.at(ny, nx) = next_label;
          frontier.push({nx, ny});
        }
      }
    }
  }
  if (num_components != nullptr) *num_components = next_label;
  return labels;
}

std::vector<Contour> FindContours(const ImageU8& binary, int min_pixels) {
  int num_components = 0;
  const Image<int> labels = LabelComponents(binary, &num_components);

  std::vector<int> pixel_count(static_cast<std::size_t>(num_components) + 1,
                               0);
  std::vector<Point> first_pixel(static_cast<std::size_t>(num_components) + 1,
                                 Point{-1, -1});
  for (int y = 0; y < labels.height(); ++y) {
    for (int x = 0; x < labels.width(); ++x) {
      const int l = labels.at(y, x);
      if (l == 0) continue;
      if (first_pixel[static_cast<std::size_t>(l)].x < 0) {
        first_pixel[static_cast<std::size_t>(l)] = Point{x, y};
      }
      ++pixel_count[static_cast<std::size_t>(l)];
    }
  }

  std::vector<Contour> contours;
  for (int l = 1; l <= num_components; ++l) {
    if (pixel_count[static_cast<std::size_t>(l)] < min_pixels) continue;
    contours.push_back(
        TraceBoundary(labels, l, first_pixel[static_cast<std::size_t>(l)]));
  }
  std::sort(contours.begin(), contours.end(),
            [](const Contour& a, const Contour& b) {
              return ContourArea(a) > ContourArea(b);
            });
  return contours;
}

double ContourArea(const Contour& contour) {
  if (contour.size() < 3) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < contour.size(); ++i) {
    const Point& a = contour[i];
    const Point& b = contour[(i + 1) % contour.size()];
    acc += static_cast<double>(a.x) * b.y - static_cast<double>(b.x) * a.y;
  }
  return std::abs(acc) / 2.0;
}

double ContourPerimeter(const Contour& contour) {
  if (contour.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < contour.size(); ++i) {
    const Point& a = contour[i];
    const Point& b = contour[(i + 1) % contour.size()];
    acc += std::hypot(static_cast<double>(b.x - a.x),
                      static_cast<double>(b.y - a.y));
  }
  return acc;
}

Rect BoundingRect(const Contour& contour) {
  if (contour.empty()) return Rect{};
  int min_x = contour[0].x;
  int max_x = contour[0].x;
  int min_y = contour[0].y;
  int max_y = contour[0].y;
  for (const Point& p : contour) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  return Rect{min_x, min_y, max_x - min_x + 1, max_y - min_y + 1};
}

}  // namespace snor
