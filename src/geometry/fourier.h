#ifndef SNOR_GEOMETRY_FOURIER_H_
#define SNOR_GEOMETRY_FOURIER_H_

#include <vector>

#include "geometry/types.h"

namespace snor {

/// Computes `n_coefficients` Fourier shape descriptors of a closed
/// contour: the boundary is treated as the complex signal z_t = x_t + i
/// y_t; the descriptor consists of the magnitudes of the low-frequency
/// DFT coefficients, with the DC term dropped (translation invariance)
/// and the remaining magnitudes divided by |c_1| (scale invariance).
/// Taking magnitudes discards phase, giving rotation and start-point
/// invariance — an alternative to Hu moments for the paper's shape-only
/// question, ablated in `bench/ablation_representations`.
///
/// Returns an empty vector for contours with fewer than 4 points.
std::vector<double> FourierDescriptors(const Contour& contour,
                                       int n_coefficients = 16);

/// L2 distance between two descriptor vectors; vectors of unequal length
/// are compared over the common prefix, with missing tail entries
/// counted as zeros. Empty-vs-nonempty yields a huge distance.
double FourierDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

}  // namespace snor

#endif  // SNOR_GEOMETRY_FOURIER_H_
