#ifndef SNOR_GEOMETRY_MOMENTS_H_
#define SNOR_GEOMETRY_MOMENTS_H_

#include <array>
#include <cstdint>

#include "geometry/types.h"
#include "img/image.h"

namespace snor {

/// \brief Spatial, central, and normalized central moments up to order 3,
/// with the same member naming as `cv::Moments`.
struct Moments {
  // Spatial moments.
  double m00 = 0, m10 = 0, m01 = 0, m20 = 0, m11 = 0, m02 = 0;
  double m30 = 0, m21 = 0, m12 = 0, m03 = 0;
  // Central moments.
  double mu20 = 0, mu11 = 0, mu02 = 0, mu30 = 0, mu21 = 0, mu12 = 0,
         mu03 = 0;
  // Normalized central moments.
  double nu20 = 0, nu11 = 0, nu02 = 0, nu30 = 0, nu21 = 0, nu12 = 0,
         nu03 = 0;
};

/// Seven Hu invariant moments.
using HuMoments = std::array<double, 7>;

/// Moments of a closed polygonal contour via Green's theorem (matches
/// OpenCV's `moments(contour)`).
Moments ContourMoments(const Contour& contour);

/// Moments of a binary raster region: every non-zero pixel contributes with
/// unit mass (matches OpenCV's `moments(image, binaryImage=true)`).
Moments RegionMoments(const ImageU8& binary);

/// Derives the 7 Hu rotation/scale/translation-invariant moments.
HuMoments ComputeHuMoments(const Moments& m);

/// \brief Hu-moment distance used by `MatchShapes` (OpenCV
/// CONTOURS_MATCH_I1/I2/I3; the paper calls these "L1/L2/L3 norms").
enum class ShapeMatchMethod {
  kI1,  ///< sum |1/m_A - 1/m_B|
  kI2,  ///< sum |m_A - m_B|
  kI3,  ///< max |m_A - m_B| / |m_A|
};

/// Computes the shape dissimilarity between two sets of Hu moments, where
/// m_i = sign(h_i) * log10|h_i| as in OpenCV. Smaller is more similar.
/// Returns a huge value when one shape has usable moments and the other
/// does not.
double MatchShapes(const HuMoments& a, const HuMoments& b,
                   ShapeMatchMethod method);

/// Raw-pointer core of MatchShapes over two arrays of 7 Hu moments. The
/// SoA feature-bank batch kernels call this directly on bank rows; the
/// HuMoments overload delegates here, so both paths share one
/// implementation and stay bit-identical.
double MatchShapesRaw(const double* a, const double* b,
                      ShapeMatchMethod method);

/// \brief Precomputed log-map of one Hu vector: the per-pair transform
/// MatchShapesRaw applies before combining.
///
/// The transcendentals (log10 per usable component) dominate the cost of
/// a shape distance, yet depend only on one side of the pair. Callers
/// that score one query against many gallery rows map each side once and
/// combine with MatchShapesFromMaps; MatchShapesRaw itself delegates
/// through the same pair of functions, so mapped and unmapped paths are
/// bit-identical by construction.
struct LogHuMap {
  std::array<double, 7> m{};         ///< sign(h_i) * log10|h_i|.
  std::array<std::uint8_t, 7> usable{};  ///< 0 when |h_i| <= 1e-5.
  bool any = false;                  ///< Any |h_i| > 0 (degeneracy flag).
};

/// Maps 7 Hu moments into log space.
[[nodiscard]] LogHuMap MakeLogHuMap(const double* hu7);

/// Combine step of MatchShapesRaw over two precomputed maps; identical
/// arithmetic, iteration order, and skip rules as the unmapped path.
double MatchShapesFromMaps(const LogHuMap& a, const LogHuMap& b,
                           ShapeMatchMethod method);

/// Convenience overload on contours.
double MatchShapes(const Contour& a, const Contour& b,
                   ShapeMatchMethod method);

}  // namespace snor

#endif  // SNOR_GEOMETRY_MOMENTS_H_
