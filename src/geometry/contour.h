#ifndef SNOR_GEOMETRY_CONTOUR_H_
#define SNOR_GEOMETRY_CONTOUR_H_

#include <vector>

#include "geometry/types.h"
#include "img/image.h"

namespace snor {

/// Finds the outer contours of all 8-connected foreground (non-zero)
/// components in a binary single-channel image, via Moore-neighbour
/// boundary tracing. Contours are returned sorted by enclosed area
/// (descending); components smaller than `min_pixels` are skipped.
std::vector<Contour> FindContours(const ImageU8& binary, int min_pixels = 1);

/// Enclosed area of a closed contour by the shoelace formula (matches
/// OpenCV `contourArea` up to orientation sign, which we absorb with abs).
double ContourArea(const Contour& contour);

/// Perimeter (arc length) of the closed contour.
double ContourPerimeter(const Contour& contour);

/// Tight axis-aligned bounding rectangle of the contour points.
Rect BoundingRect(const Contour& contour);

/// Labels 8-connected foreground components; returns the label image
/// (0 = background, 1..n = components) and sets `num_components`.
Image<int> LabelComponents(const ImageU8& binary, int* num_components);

}  // namespace snor

#endif  // SNOR_GEOMETRY_CONTOUR_H_
