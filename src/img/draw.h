#ifndef SNOR_IMG_DRAW_H_
#define SNOR_IMG_DRAW_H_

#include <vector>

#include "img/color.h"
#include "img/image.h"

namespace snor {

/// \brief 2-D point with double coordinates used by the rasterizer.
struct Point2d {
  double x = 0.0;
  double y = 0.0;
};

/// Rotates `p` about `center` by `radians` (counter-clockwise, y-down image
/// coordinates rotate clockwise on screen).
Point2d RotatePoint(const Point2d& p, const Point2d& center, double radians);

/// Fills a simple polygon (vertices in order, implicit closing edge) using
/// scanline even-odd filling. Pixels outside the image are clipped.
void FillPolygon(ImageU8& img, const std::vector<Point2d>& vertices,
                 const Rgb& color);

/// Fills an axis-aligned rectangle [x, x+w) x [y, y+h), clipped.
void FillRect(ImageU8& img, double x, double y, double w, double h,
              const Rgb& color);

/// Fills a rectangle rotated by `radians` about its own centre.
void FillRotatedRect(ImageU8& img, double cx, double cy, double w, double h,
                     double radians, const Rgb& color);

/// Fills a disc of the given radius.
void FillCircle(ImageU8& img, double cx, double cy, double radius,
                const Rgb& color);

/// Fills an axis-aligned ellipse with semi-axes (rx, ry).
void FillEllipse(ImageU8& img, double cx, double cy, double rx, double ry,
                 const Rgb& color);

/// Draws a line segment of the given thickness (rasterized as a filled
/// rotated rectangle with rounded caps).
void DrawLine(ImageU8& img, Point2d a, Point2d b, double thickness,
              const Rgb& color);

/// Draws the polygon outline with the given stroke thickness.
void DrawPolygonOutline(ImageU8& img, const std::vector<Point2d>& vertices,
                        double thickness, const Rgb& color);

}  // namespace snor

#endif  // SNOR_IMG_DRAW_H_
