#include "img/pyramid.h"

#include <cmath>

#include "img/resize.h"

namespace snor {

std::vector<PyramidLevel> BuildPyramid(const ImageU8& base, int n_levels,
                                       double scale_factor, int min_size) {
  SNOR_CHECK_GT(n_levels, 0);
  SNOR_CHECK_GT(scale_factor, 1.0);
  std::vector<PyramidLevel> levels;
  levels.push_back({base, 1.0});
  for (int i = 1; i < n_levels; ++i) {
    const double scale = std::pow(scale_factor, i);
    const int w = static_cast<int>(std::lround(base.width() / scale));
    const int h = static_cast<int>(std::lround(base.height() / scale));
    if (w < min_size || h < min_size) break;
    levels.push_back({Resize(base, w, h, Interp::kBilinear), scale});
  }
  return levels;
}

}  // namespace snor
