#include "img/threshold.h"

#include <array>

namespace snor {

ImageU8 Threshold(const ImageU8& gray, std::uint8_t thresh,
                  std::uint8_t maxval, ThresholdMode mode) {
  SNOR_CHECK_EQ(gray.channels(), 1);
  ImageU8 out(gray.width(), gray.height(), 1);
  const std::uint8_t above =
      mode == ThresholdMode::kBinary ? maxval : std::uint8_t{0};
  const std::uint8_t below =
      mode == ThresholdMode::kBinary ? std::uint8_t{0} : maxval;
  const std::uint8_t* in = gray.data();
  std::uint8_t* dst = out.data();
  for (std::size_t i = 0; i < gray.size(); ++i) {
    dst[i] = in[i] > thresh ? above : below;
  }
  return out;
}

std::uint8_t OtsuThreshold(const ImageU8& gray) {
  SNOR_CHECK_EQ(gray.channels(), 1);
  SNOR_CHECK_GT(gray.size(), 0u);
  std::array<std::size_t, 256> hist{};
  const std::uint8_t* in = gray.data();
  for (std::size_t i = 0; i < gray.size(); ++i) ++hist[in[i]];

  const double total = static_cast<double>(gray.size());
  double sum_all = 0.0;
  for (int v = 0; v < 256; ++v) sum_all += v * static_cast<double>(hist[v]);

  double sum_bg = 0.0;
  double weight_bg = 0.0;
  double best_var = -1.0;
  int best_thresh = 0;
  for (int t = 0; t < 256; ++t) {
    weight_bg += static_cast<double>(hist[t]);
    if (weight_bg == 0) continue;
    const double weight_fg = total - weight_bg;
    if (weight_fg == 0) break;
    sum_bg += t * static_cast<double>(hist[t]);
    const double mean_bg = sum_bg / weight_bg;
    const double mean_fg = (sum_all - sum_bg) / weight_fg;
    const double between =
        weight_bg * weight_fg * (mean_bg - mean_fg) * (mean_bg - mean_fg);
    if (between > best_var) {
      best_var = between;
      best_thresh = t;
    }
  }
  return static_cast<std::uint8_t>(best_thresh);
}

ImageU8 ThresholdOtsu(const ImageU8& gray, ThresholdMode mode,
                      std::uint8_t maxval) {
  return Threshold(gray, OtsuThreshold(gray), maxval, mode);
}

}  // namespace snor
