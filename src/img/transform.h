#ifndef SNOR_IMG_TRANSFORM_H_
#define SNOR_IMG_TRANSFORM_H_

#include "img/image.h"

namespace snor {

/// Rotates the image by `degrees` counter-clockwise about its centre,
/// keeping the original canvas size; uncovered pixels are set to `fill`.
/// Bilinear sampling.
ImageU8 Rotate(const ImageU8& src, double degrees, std::uint8_t fill = 0);

/// Rotates by an exact multiple of 90 degrees (lossless, resizes canvas for
/// 90/270). `quarter_turns` is taken modulo 4; positive is counter-clockwise.
ImageU8 Rotate90(const ImageU8& src, int quarter_turns);

/// Horizontal mirror (left-right flip).
ImageU8 FlipHorizontal(const ImageU8& src);

/// Vertical mirror (top-bottom flip).
ImageU8 FlipVertical(const ImageU8& src);

/// Pads the image with a constant border of the given widths.
ImageU8 PadConstant(const ImageU8& src, int top, int bottom, int left,
                    int right, std::uint8_t value);

}  // namespace snor

#endif  // SNOR_IMG_TRANSFORM_H_
