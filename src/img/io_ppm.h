#ifndef SNOR_IMG_IO_PPM_H_
#define SNOR_IMG_IO_PPM_H_

#include <string>

#include "img/image.h"
#include "util/status.h"

namespace snor {

/// Writes a 3-channel image as binary PPM (P6) or a 1-channel image as
/// binary PGM (P5), chosen by channel count.
[[nodiscard]] Status WritePnm(const ImageU8& img, const std::string& path);

/// Reads a binary PPM (P6) or PGM (P5) file. The returned image has 3 or 1
/// channels respectively.
[[nodiscard]] Result<ImageU8> ReadPnm(const std::string& path);

}  // namespace snor

#endif  // SNOR_IMG_IO_PPM_H_
