#include "img/color.h"

#include <algorithm>
#include <cmath>

namespace snor {

ImageU8 RgbToGray(const ImageU8& rgb) {
  SNOR_CHECK_EQ(rgb.channels(), 3);
  ImageU8 gray(rgb.width(), rgb.height(), 1);
  for (int y = 0; y < rgb.height(); ++y) {
    const std::uint8_t* in = rgb.Row(y);
    std::uint8_t* out = gray.Row(y);
    for (int x = 0; x < rgb.width(); ++x) {
      const double v = 0.299 * in[3 * x + 0] + 0.587 * in[3 * x + 1] +
                       0.114 * in[3 * x + 2];
      out[x] = static_cast<std::uint8_t>(std::lround(std::min(v, 255.0)));
    }
  }
  return gray;
}

ImageU8 GrayToRgb(const ImageU8& gray) {
  SNOR_CHECK_EQ(gray.channels(), 1);
  ImageU8 rgb(gray.width(), gray.height(), 3);
  for (int y = 0; y < gray.height(); ++y) {
    const std::uint8_t* in = gray.Row(y);
    std::uint8_t* out = rgb.Row(y);
    for (int x = 0; x < gray.width(); ++x) {
      out[3 * x + 0] = in[x];
      out[3 * x + 1] = in[x];
      out[3 * x + 2] = in[x];
    }
  }
  return rgb;
}

namespace {
std::uint8_t ClampU8(double v) {
  return static_cast<std::uint8_t>(std::lround(std::clamp(v, 0.0, 255.0)));
}
}  // namespace

ImageU8 RgbToHsv(const ImageU8& rgb) {
  SNOR_CHECK_EQ(rgb.channels(), 3);
  ImageU8 hsv(rgb.width(), rgb.height(), 3);
  for (int y = 0; y < rgb.height(); ++y) {
    const std::uint8_t* in = rgb.Row(y);
    std::uint8_t* out = hsv.Row(y);
    for (int x = 0; x < rgb.width(); ++x) {
      const double r = in[3 * x + 0] / 255.0;
      const double g = in[3 * x + 1] / 255.0;
      const double b = in[3 * x + 2] / 255.0;
      const double max_v = std::max({r, g, b});
      const double min_v = std::min({r, g, b});
      const double delta = max_v - min_v;

      double h = 0.0;
      if (delta > 1e-12) {
        if (max_v == r) {
          h = 60.0 * std::fmod((g - b) / delta, 6.0);
        } else if (max_v == g) {
          h = 60.0 * ((b - r) / delta + 2.0);
        } else {
          h = 60.0 * ((r - g) / delta + 4.0);
        }
        if (h < 0) h += 360.0;
      }
      const double s = max_v <= 1e-12 ? 0.0 : delta / max_v;
      out[3 * x + 0] = ClampU8(h / 360.0 * 255.0);
      out[3 * x + 1] = ClampU8(s * 255.0);
      out[3 * x + 2] = ClampU8(max_v * 255.0);
    }
  }
  return hsv;
}

Rgb LerpRgb(const Rgb& a, const Rgb& b, double t) {
  return Rgb{ClampU8(a.r + (b.r - a.r) * t), ClampU8(a.g + (b.g - a.g) * t),
             ClampU8(a.b + (b.b - a.b) * t)};
}

Rgb ScaleRgb(const Rgb& c, double factor) {
  return Rgb{ClampU8(c.r * factor), ClampU8(c.g * factor),
             ClampU8(c.b * factor)};
}

ImageU8 ToU8Clamped(const ImageF& src) {
  ImageU8 dst(src.width(), src.height(), src.channels());
  const float* in = src.data();
  std::uint8_t* out = dst.data();
  for (std::size_t i = 0; i < src.size(); ++i) {
    out[i] = ClampU8(in[i]);
  }
  return dst;
}

}  // namespace snor
