#include "img/transform.h"

#include <cmath>
#include <numbers>

namespace snor {

ImageU8 Rotate(const ImageU8& src, double degrees, std::uint8_t fill) {
  SNOR_CHECK(!src.empty());
  const double rad = degrees * std::numbers::pi / 180.0;
  const double c = std::cos(rad);
  const double s = std::sin(rad);
  const double cx = (src.width() - 1) / 2.0;
  const double cy = (src.height() - 1) / 2.0;
  ImageU8 dst(src.width(), src.height(), src.channels(), fill);
  for (int y = 0; y < dst.height(); ++y) {
    for (int x = 0; x < dst.width(); ++x) {
      // Inverse mapping: rotate destination coordinates by -angle.
      const double dx = x - cx;
      const double dy = y - cy;
      const double sxf = c * dx + s * dy + cx;
      const double syf = -s * dx + c * dy + cy;
      const int x0 = static_cast<int>(std::floor(sxf));
      const int y0 = static_cast<int>(std::floor(syf));
      if (x0 < -1 || x0 >= src.width() || y0 < -1 || y0 >= src.height()) {
        continue;
      }
      const double wx = sxf - x0;
      const double wy = syf - y0;
      for (int ch = 0; ch < src.channels(); ++ch) {
        auto sample = [&](int yy, int xx) -> double {
          if (!src.InBounds(xx, yy)) return fill;
          return src.at(yy, xx, ch);
        };
        const double v00 = sample(y0, x0);
        const double v01 = sample(y0, x0 + 1);
        const double v10 = sample(y0 + 1, x0);
        const double v11 = sample(y0 + 1, x0 + 1);
        const double top = v00 + (v01 - v00) * wx;
        const double bot = v10 + (v11 - v10) * wx;
        dst.at(y, x, ch) =
            static_cast<std::uint8_t>(std::lround(top + (bot - top) * wy));
      }
    }
  }
  return dst;
}

ImageU8 Rotate90(const ImageU8& src, int quarter_turns) {
  int q = ((quarter_turns % 4) + 4) % 4;
  if (q == 0) return src;
  const int w = src.width();
  const int h = src.height();
  const int ch = src.channels();
  ImageU8 dst(q == 2 ? w : h, q == 2 ? h : w, ch);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int nx = 0;
      int ny = 0;
      switch (q) {
        case 1:  // CCW: (x, y) -> (y, w-1-x)
          nx = y;
          ny = w - 1 - x;
          break;
        case 2:
          nx = w - 1 - x;
          ny = h - 1 - y;
          break;
        case 3:  // CW: (x, y) -> (h-1-y, x)
          nx = h - 1 - y;
          ny = x;
          break;
        default:
          break;
      }
      for (int c = 0; c < ch; ++c) dst.at(ny, nx, c) = src.at(y, x, c);
    }
  }
  return dst;
}

ImageU8 FlipHorizontal(const ImageU8& src) {
  ImageU8 dst(src.width(), src.height(), src.channels());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      for (int c = 0; c < src.channels(); ++c) {
        dst.at(y, src.width() - 1 - x, c) = src.at(y, x, c);
      }
    }
  }
  return dst;
}

ImageU8 FlipVertical(const ImageU8& src) {
  ImageU8 dst(src.width(), src.height(), src.channels());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      for (int c = 0; c < src.channels(); ++c) {
        dst.at(src.height() - 1 - y, x, c) = src.at(y, x, c);
      }
    }
  }
  return dst;
}

ImageU8 PadConstant(const ImageU8& src, int top, int bottom, int left,
                    int right, std::uint8_t value) {
  SNOR_CHECK(top >= 0 && bottom >= 0 && left >= 0 && right >= 0);
  ImageU8 dst(src.width() + left + right, src.height() + top + bottom,
              src.channels(), value);
  for (int y = 0; y < src.height(); ++y) {
    const std::uint8_t* in = src.Row(y);
    std::uint8_t* out =
        dst.Row(y + top) + static_cast<std::size_t>(left) * src.channels();
    std::copy(in, in + static_cast<std::size_t>(src.width()) * src.channels(),
              out);
  }
  return dst;
}

}  // namespace snor
