#ifndef SNOR_IMG_INTEGRAL_H_
#define SNOR_IMG_INTEGRAL_H_

#include <cstdint>
#include <vector>

#include "img/image.h"

namespace snor {

/// \brief Summed-area table over a single-channel image.
///
/// `Sum(x, y, w, h)` returns the sum of pixel values in the rectangle
/// [x, x+w) x [y, y+h) in O(1). Rectangles are clipped to the image.
/// Used by the SURF box-filter Hessian.
class IntegralImage {
 public:
  /// Builds the table from an 8-bit single-channel image.
  explicit IntegralImage(const ImageU8& src);

  /// Builds the table from a float single-channel image.
  explicit IntegralImage(const ImageF& src);

  int width() const { return width_; }
  int height() const { return height_; }

  /// Sum over the clipped rectangle [x, x+w) x [y, y+h).
  double Sum(int x, int y, int w, int h) const;

 private:
  // table_ has (width_+1) x (height_+1) entries; entry (i, j) holds the sum
  // of all pixels above and left of (i, j) exclusive.
  double TableAt(int i, int j) const {
    return table_[static_cast<std::size_t>(j) * (width_ + 1) + i];
  }

  template <typename T>
  void Build(const Image<T>& src);

  int width_ = 0;
  int height_ = 0;
  std::vector<double> table_;
};

}  // namespace snor

#endif  // SNOR_IMG_INTEGRAL_H_
