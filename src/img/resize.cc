#include "img/resize.h"

#include <cmath>

namespace snor {
namespace {

// Shared implementation; `Round` decides whether to round (u8) or not (f32).
template <typename T>
Image<T> ResizeImpl(const Image<T>& src, int new_width, int new_height,
                    Interp interp) {
  SNOR_CHECK_GT(new_width, 0);
  SNOR_CHECK_GT(new_height, 0);
  SNOR_CHECK(!src.empty());
  Image<T> dst(new_width, new_height, src.channels());
  const double sx = static_cast<double>(src.width()) / new_width;
  const double sy = static_cast<double>(src.height()) / new_height;
  const int channels = src.channels();

  if (interp == Interp::kNearest) {
    for (int y = 0; y < new_height; ++y) {
      const int src_y = std::min(static_cast<int>((y + 0.5) * sy),
                                 src.height() - 1);
      for (int x = 0; x < new_width; ++x) {
        const int src_x =
            std::min(static_cast<int>((x + 0.5) * sx), src.width() - 1);
        for (int c = 0; c < channels; ++c) {
          dst.at(y, x, c) = src.at(src_y, src_x, c);
        }
      }
    }
    return dst;
  }

  // Bilinear with half-pixel centers (OpenCV convention).
  for (int y = 0; y < new_height; ++y) {
    const double fy = (y + 0.5) * sy - 0.5;
    const int y0 = static_cast<int>(std::floor(fy));
    const double wy = fy - y0;
    for (int x = 0; x < new_width; ++x) {
      const double fx = (x + 0.5) * sx - 0.5;
      const int x0 = static_cast<int>(std::floor(fx));
      const double wx = fx - x0;
      for (int c = 0; c < channels; ++c) {
        const double v00 = src.AtClamped(y0, x0, c);
        const double v01 = src.AtClamped(y0, x0 + 1, c);
        const double v10 = src.AtClamped(y0 + 1, x0, c);
        const double v11 = src.AtClamped(y0 + 1, x0 + 1, c);
        const double top = v00 + (v01 - v00) * wx;
        const double bot = v10 + (v11 - v10) * wx;
        const double v = top + (bot - top) * wy;
        if constexpr (std::is_integral_v<T>) {
          dst.at(y, x, c) = static_cast<T>(std::lround(v));
        } else {
          dst.at(y, x, c) = static_cast<T>(v);
        }
      }
    }
  }
  return dst;
}

}  // namespace

ImageU8 Resize(const ImageU8& src, int new_width, int new_height,
               Interp interp) {
  return ResizeImpl(src, new_width, new_height, interp);
}

ImageF Resize(const ImageF& src, int new_width, int new_height,
              Interp interp) {
  return ResizeImpl(src, new_width, new_height, interp);
}

}  // namespace snor
