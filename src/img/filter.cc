#include "img/filter.h"

#include <cmath>

namespace snor {

std::vector<float> GaussianKernel1D(double sigma, int radius) {
  SNOR_CHECK_GT(sigma, 0.0);
  if (radius <= 0) radius = static_cast<int>(std::ceil(3.0 * sigma));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double v = std::exp(-(i * i) / (2.0 * sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = static_cast<float>(v);
    sum += v;
  }
  for (auto& k : kernel) k = static_cast<float>(k / sum);
  return kernel;
}

namespace {

ImageF Convolve1D(const ImageF& src, const std::vector<float>& kernel,
                  bool horizontal) {
  const int radius = static_cast<int>(kernel.size() / 2);
  ImageF dst(src.width(), src.height(), src.channels());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      for (int c = 0; c < src.channels(); ++c) {
        double acc = 0.0;
        for (int k = -radius; k <= radius; ++k) {
          const float w = kernel[static_cast<std::size_t>(k + radius)];
          const float v = horizontal ? src.AtClamped(y, x + k, c)
                                     : src.AtClamped(y + k, x, c);
          acc += static_cast<double>(w) * v;
        }
        dst.at(y, x, c) = static_cast<float>(acc);
      }
    }
  }
  return dst;
}

}  // namespace

ImageF GaussianBlur(const ImageF& src, double sigma) {
  const auto kernel = GaussianKernel1D(sigma);
  return Convolve1D(Convolve1D(src, kernel, /*horizontal=*/true), kernel,
                    /*horizontal=*/false);
}

ImageU8 GaussianBlur(const ImageU8& src, double sigma) {
  return ToU8Clamped(GaussianBlur(ConvertImage<float>(src), sigma));
}

ImageF Sobel(const ImageF& src, int dx, int dy) {
  SNOR_CHECK_EQ(src.channels(), 1);
  SNOR_CHECK((dx == 1 && dy == 0) || (dx == 0 && dy == 1));
  ImageF dst(src.width(), src.height(), 1);
  // 3x3 Sobel kernels expressed as separable [1 2 1] (smooth) x [-1 0 1]
  // (derivative).
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      double acc = 0.0;
      for (int ky = -1; ky <= 1; ++ky) {
        for (int kx = -1; kx <= 1; ++kx) {
          const float v = src.AtClamped(y + ky, x + kx);
          double w = 0.0;
          if (dx == 1) {
            const int smooth = ky == 0 ? 2 : 1;
            w = static_cast<double>(kx) * smooth;
          } else {
            const int smooth = kx == 0 ? 2 : 1;
            w = static_cast<double>(ky) * smooth;
          }
          acc += w * v;
        }
      }
      dst.at(y, x) = static_cast<float>(acc);
    }
  }
  return dst;
}

ImageF SobelMagnitude(const ImageF& src) {
  const ImageF gx = Sobel(src, 1, 0);
  const ImageF gy = Sobel(src, 0, 1);
  ImageF mag(src.width(), src.height(), 1);
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      mag.at(y, x) = std::hypot(gx.at(y, x), gy.at(y, x));
    }
  }
  return mag;
}

ImageF BoxFilter(const ImageF& src, int radius) {
  SNOR_CHECK_GE(radius, 1);
  const int n = 2 * radius + 1;
  std::vector<float> kernel(static_cast<std::size_t>(n),
                            1.0f / static_cast<float>(n));
  return Convolve1D(Convolve1D(src, kernel, /*horizontal=*/true), kernel,
                    /*horizontal=*/false);
}

}  // namespace snor
