#ifndef SNOR_IMG_IMAGE_H_
#define SNOR_IMG_IMAGE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace snor {

/// \brief Dense 2-D image with interleaved channels (row-major, HxWxC).
///
/// The canonical pixel types are `std::uint8_t` (storage) and `float`
/// (processing); see the `ImageU8` / `ImageF` aliases. Copy is deep;
/// moves are cheap.
template <typename T>
class Image {
 public:
  Image() = default;

  /// Allocates a width x height x channels image filled with `fill`.
  Image(int width, int height, int channels, T fill = T{})
      : width_(width), height_(height), channels_(channels) {
    SNOR_CHECK_GE(width, 0);
    SNOR_CHECK_GE(height, 0);
    SNOR_CHECK_GT(channels, 0);
    data_.assign(
        static_cast<std::size_t>(width) * static_cast<std::size_t>(height) *
            static_cast<std::size_t>(channels),
        fill);
  }

  Image(const Image&) = default;
  Image& operator=(const Image&) = default;
  Image(Image&&) noexcept = default;
  Image& operator=(Image&&) noexcept = default;

  int width() const { return width_; }
  int height() const { return height_; }
  int channels() const { return channels_; }
  bool empty() const { return data_.empty(); }
  std::size_t size() const { return data_.size(); }

  /// True when (x, y) addresses a pixel inside the image.
  bool InBounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  /// Mutable access to channel `c` of pixel (x, y). Bounds-checked in
  /// debug builds.
  T& at(int y, int x, int c = 0) {
    SNOR_DCHECK(InBounds(x, y));
    SNOR_DCHECK(c >= 0 && c < channels_);
    return data_[(static_cast<std::size_t>(y) * width_ + x) * channels_ + c];
  }
  const T& at(int y, int x, int c = 0) const {
    SNOR_DCHECK(InBounds(x, y));
    SNOR_DCHECK(c >= 0 && c < channels_);
    return data_[(static_cast<std::size_t>(y) * width_ + x) * channels_ + c];
  }

  /// Clamped read: coordinates outside the image are clamped to the border
  /// (replicate padding), handy for filters.
  T AtClamped(int y, int x, int c = 0) const {
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    return at(y, x, c);
  }

  /// Pointer to the first channel of row `y`.
  T* Row(int y) {
    SNOR_DCHECK(y >= 0 && y < height_);
    return data_.data() + static_cast<std::size_t>(y) * width_ * channels_;
  }
  const T* Row(int y) const {
    SNOR_DCHECK(y >= 0 && y < height_);
    return data_.data() + static_cast<std::size_t>(y) * width_ * channels_;
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// Sets every sample to `value`.
  void Fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Sets pixel (x, y) to the given per-channel values (size must match
  /// channel count).
  void SetPixel(int y, int x, std::initializer_list<T> values) {
    SNOR_DCHECK(static_cast<int>(values.size()) == channels_);
    int c = 0;
    for (T v : values) at(y, x, c++) = v;
  }

  bool operator==(const Image& other) const {
    return width_ == other.width_ && height_ == other.height_ &&
           channels_ == other.channels_ && data_ == other.data_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  int channels_ = 1;
  std::vector<T> data_;
};

using ImageU8 = Image<std::uint8_t>;
using ImageF = Image<float>;

/// Converts sample type (no scaling): each sample is cast to `Dst`.
template <typename Dst, typename Src>
Image<Dst> ConvertImage(const Image<Src>& src) {
  Image<Dst> dst(src.width(), src.height(), src.channels());
  const Src* in = src.data();
  Dst* out = dst.data();
  for (std::size_t i = 0; i < src.size(); ++i) {
    out[i] = static_cast<Dst>(in[i]);
  }
  return dst;
}

/// Converts a float image to uint8 with clamping to [0, 255] and rounding.
ImageU8 ToU8Clamped(const ImageF& src);

/// Crops the rectangle [x, x+w) x [y, y+h); the rectangle must lie fully
/// inside the image.
template <typename T>
Image<T> Crop(const Image<T>& src, int x, int y, int w, int h) {
  SNOR_CHECK(x >= 0 && y >= 0 && w >= 0 && h >= 0);
  SNOR_CHECK(x + w <= src.width() && y + h <= src.height());
  Image<T> dst(w, h, src.channels());
  for (int row = 0; row < h; ++row) {
    const T* in = src.Row(y + row) + static_cast<std::size_t>(x) * src.channels();
    std::copy(in, in + static_cast<std::size_t>(w) * src.channels(),
              dst.Row(row));
  }
  return dst;
}

}  // namespace snor

#endif  // SNOR_IMG_IMAGE_H_
