#include "img/integral.h"

#include <algorithm>

namespace snor {

template <typename T>
void IntegralImage::Build(const Image<T>& src) {
  SNOR_CHECK_EQ(src.channels(), 1);
  width_ = src.width();
  height_ = src.height();
  table_.assign(static_cast<std::size_t>(width_ + 1) * (height_ + 1), 0.0);
  for (int y = 0; y < height_; ++y) {
    double row_sum = 0.0;
    const T* in = src.Row(y);
    for (int x = 0; x < width_; ++x) {
      row_sum += static_cast<double>(in[x]);
      table_[static_cast<std::size_t>(y + 1) * (width_ + 1) + (x + 1)] =
          TableAt(x + 1, y) + row_sum;
    }
  }
}

IntegralImage::IntegralImage(const ImageU8& src) { Build(src); }
IntegralImage::IntegralImage(const ImageF& src) { Build(src); }

double IntegralImage::Sum(int x, int y, int w, int h) const {
  int x0 = std::clamp(x, 0, width_);
  int y0 = std::clamp(y, 0, height_);
  int x1 = std::clamp(x + w, 0, width_);
  int y1 = std::clamp(y + h, 0, height_);
  if (x1 <= x0 || y1 <= y0) return 0.0;
  return TableAt(x1, y1) - TableAt(x0, y1) - TableAt(x1, y0) +
         TableAt(x0, y0);
}

}  // namespace snor
