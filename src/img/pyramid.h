#ifndef SNOR_IMG_PYRAMID_H_
#define SNOR_IMG_PYRAMID_H_

#include <vector>

#include "img/image.h"

namespace snor {

/// \brief One level of a scale pyramid.
struct PyramidLevel {
  ImageU8 image;
  /// Factor mapping this level's coordinates back to the base image
  /// (base = level * scale).
  double scale = 1.0;
};

/// Builds an `n_levels`-level scale pyramid, each level smaller by
/// `scale_factor` (> 1), stopping early if a level would drop below
/// `min_size` pixels on either side. Level 0 is the input image.
[[nodiscard]] std::vector<PyramidLevel> BuildPyramid(const ImageU8& base,
                                                      int n_levels,
                                                      double scale_factor,
                                                      int min_size = 16);

}  // namespace snor

#endif  // SNOR_IMG_PYRAMID_H_
