#ifndef SNOR_IMG_THRESHOLD_H_
#define SNOR_IMG_THRESHOLD_H_

#include <cstdint>

#include "img/image.h"

namespace snor {

/// \brief Thresholding mode, mirroring OpenCV's THRESH_BINARY /
/// THRESH_BINARY_INV.
enum class ThresholdMode {
  /// dst = maxval if src > thresh else 0.
  kBinary,
  /// dst = 0 if src > thresh else maxval.
  kBinaryInv,
};

/// Applies a global binary threshold to a single-channel image.
ImageU8 Threshold(const ImageU8& gray, std::uint8_t thresh,
                  std::uint8_t maxval, ThresholdMode mode);

/// Computes Otsu's optimal global threshold for a single-channel image
/// (maximizes between-class variance of the intensity histogram).
std::uint8_t OtsuThreshold(const ImageU8& gray);

/// Convenience: Otsu threshold followed by binarization.
ImageU8 ThresholdOtsu(const ImageU8& gray, ThresholdMode mode,
                      std::uint8_t maxval = 255);

}  // namespace snor

#endif  // SNOR_IMG_THRESHOLD_H_
