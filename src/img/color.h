#ifndef SNOR_IMG_COLOR_H_
#define SNOR_IMG_COLOR_H_

#include <cstdint>

#include "img/image.h"

namespace snor {

/// \brief 8-bit RGB colour triple used by the rasterizer and palettes.
struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  bool operator==(const Rgb&) const = default;
};

/// Converts a 3-channel RGB image to single-channel grayscale using the
/// ITU-R BT.601 weights OpenCV uses (0.299 R + 0.587 G + 0.114 B).
ImageU8 RgbToGray(const ImageU8& rgb);

/// Expands a single-channel image to 3 identical RGB channels.
ImageU8 GrayToRgb(const ImageU8& gray);

/// Converts RGB to HSV with all three channels scaled to [0, 255]
/// (hue spans the full byte range, unlike OpenCV's half-range H).
/// Hue is largely invariant to illumination scaling, which makes
/// HSV histograms an illumination-robustness ablation of the paper's
/// RGB histograms.
ImageU8 RgbToHsv(const ImageU8& rgb);

/// Linearly interpolates between two colours (t in [0, 1]).
Rgb LerpRgb(const Rgb& a, const Rgb& b, double t);

/// Scales a colour's brightness by `factor`, clamping to [0, 255].
Rgb ScaleRgb(const Rgb& c, double factor);

}  // namespace snor

#endif  // SNOR_IMG_COLOR_H_
