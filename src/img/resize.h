#ifndef SNOR_IMG_RESIZE_H_
#define SNOR_IMG_RESIZE_H_

#include "img/image.h"

namespace snor {

/// \brief Interpolation kernels supported by Resize().
enum class Interp {
  kNearest,
  kBilinear,
};

/// Resizes an 8-bit image to (new_width, new_height).
ImageU8 Resize(const ImageU8& src, int new_width, int new_height,
               Interp interp = Interp::kBilinear);

/// Resizes a float image to (new_width, new_height).
ImageF Resize(const ImageF& src, int new_width, int new_height,
              Interp interp = Interp::kBilinear);

}  // namespace snor

#endif  // SNOR_IMG_RESIZE_H_
