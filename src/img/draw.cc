#include "img/draw.h"

#include <algorithm>
#include <cmath>

namespace snor {
namespace {

void PutPixel(ImageU8& img, int x, int y, const Rgb& color) {
  if (!img.InBounds(x, y)) return;
  if (img.channels() == 3) {
    img.at(y, x, 0) = color.r;
    img.at(y, x, 1) = color.g;
    img.at(y, x, 2) = color.b;
  } else {
    // Single channel: write luma.
    img.at(y, x, 0) = static_cast<std::uint8_t>(
        std::lround(0.299 * color.r + 0.587 * color.g + 0.114 * color.b));
  }
}

}  // namespace

Point2d RotatePoint(const Point2d& p, const Point2d& center, double radians) {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  const double dx = p.x - center.x;
  const double dy = p.y - center.y;
  return Point2d{center.x + c * dx - s * dy, center.y + s * dx + c * dy};
}

void FillPolygon(ImageU8& img, const std::vector<Point2d>& vertices,
                 const Rgb& color) {
  if (vertices.size() < 3) return;
  double min_y = vertices[0].y;
  double max_y = vertices[0].y;
  for (const auto& v : vertices) {
    min_y = std::min(min_y, v.y);
    max_y = std::max(max_y, v.y);
  }
  // Half-open fill rule: pixel row y is covered when min_y <= y < max_y,
  // so shapes with integer extents cover exactly their nominal area.
  const int y_begin = std::max(0, static_cast<int>(std::ceil(min_y)));
  const int y_end =
      std::min(img.height() - 1, static_cast<int>(std::ceil(max_y)) - 1);

  std::vector<double> crossings;
  for (int y = y_begin; y <= y_end; ++y) {
    const double sample_y = y + 0.0;  // Sample at pixel centre row.
    crossings.clear();
    const std::size_t n = vertices.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Point2d& a = vertices[i];
      const Point2d& b = vertices[(i + 1) % n];
      // Half-open rule avoids double counting shared vertices.
      if ((a.y <= sample_y && b.y > sample_y) ||
          (b.y <= sample_y && a.y > sample_y)) {
        const double t = (sample_y - a.y) / (b.y - a.y);
        crossings.push_back(a.x + t * (b.x - a.x));
      }
    }
    std::sort(crossings.begin(), crossings.end());
    for (std::size_t i = 0; i + 1 < crossings.size(); i += 2) {
      const int x_begin =
          std::max(0, static_cast<int>(std::ceil(crossings[i])));
      const int x_end = std::min(
          img.width() - 1, static_cast<int>(std::ceil(crossings[i + 1])) - 1);
      for (int x = x_begin; x <= x_end; ++x) PutPixel(img, x, y, color);
    }
  }
}

void FillRect(ImageU8& img, double x, double y, double w, double h,
              const Rgb& color) {
  FillPolygon(img,
              {{x, y}, {x + w, y}, {x + w, y + h}, {x, y + h}},
              color);
}

void FillRotatedRect(ImageU8& img, double cx, double cy, double w, double h,
                     double radians, const Rgb& color) {
  const Point2d center{cx, cy};
  std::vector<Point2d> corners = {
      {cx - w / 2, cy - h / 2},
      {cx + w / 2, cy - h / 2},
      {cx + w / 2, cy + h / 2},
      {cx - w / 2, cy + h / 2},
  };
  for (auto& p : corners) p = RotatePoint(p, center, radians);
  FillPolygon(img, corners, color);
}

void FillCircle(ImageU8& img, double cx, double cy, double radius,
                const Rgb& color) {
  FillEllipse(img, cx, cy, radius, radius, color);
}

void FillEllipse(ImageU8& img, double cx, double cy, double rx, double ry,
                 const Rgb& color) {
  if (rx <= 0 || ry <= 0) return;
  const int y_begin = std::max(0, static_cast<int>(std::ceil(cy - ry)));
  const int y_end =
      std::min(img.height() - 1, static_cast<int>(std::ceil(cy + ry)) - 1);
  for (int y = y_begin; y <= y_end; ++y) {
    const double dy = (y - cy) / ry;
    const double inside = 1.0 - dy * dy;
    if (inside < 0) continue;
    const double half = rx * std::sqrt(inside);
    const int x_begin = std::max(0, static_cast<int>(std::ceil(cx - half)));
    const int x_end =
        std::min(img.width() - 1, static_cast<int>(std::ceil(cx + half)) - 1);
    for (int x = x_begin; x <= x_end; ++x) PutPixel(img, x, y, color);
  }
}

void DrawLine(ImageU8& img, Point2d a, Point2d b, double thickness,
              const Rgb& color) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len = std::hypot(dx, dy);
  if (len < 1e-9) {
    FillCircle(img, a.x, a.y, thickness / 2, color);
    return;
  }
  const double angle = std::atan2(dy, dx);
  FillRotatedRect(img, (a.x + b.x) / 2, (a.y + b.y) / 2, len, thickness,
                  angle, color);
  // Rounded caps keep joints of poly-lines solid.
  FillCircle(img, a.x, a.y, thickness / 2, color);
  FillCircle(img, b.x, b.y, thickness / 2, color);
}

void DrawPolygonOutline(ImageU8& img, const std::vector<Point2d>& vertices,
                        double thickness, const Rgb& color) {
  const std::size_t n = vertices.size();
  for (std::size_t i = 0; i < n; ++i) {
    DrawLine(img, vertices[i], vertices[(i + 1) % n], thickness, color);
  }
}

}  // namespace snor
