#include "img/io_ppm.h"

#include <cctype>
#include <fstream>

#include "util/fault.h"
#include "util/string_util.h"

namespace snor {

Status WritePnm(const ImageU8& img, const std::string& path) {
  if (img.empty()) return Status::InvalidArgument("empty image");
  if (img.channels() != 1 && img.channels() != 3) {
    return Status::InvalidArgument(
        StrFormat("PNM supports 1 or 3 channels, got %d", img.channels()));
  }
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  const char* magic = img.channels() == 3 ? "P6" : "P5";
  file << magic << "\n" << img.width() << " " << img.height() << "\n255\n";
  file.write(reinterpret_cast<const char*>(img.data()),
             static_cast<std::streamsize>(img.size()));
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

namespace {

// Reads the next whitespace/comment-delimited token from a PNM header.
// The PNM spec allows `#` comment lines anywhere in the header, including
// directly after a value with no intervening whitespace ("255#made by x").
Result<std::string> NextToken(std::istream& in) {
  std::string token;
  int c = in.get();
  // Skip whitespace and comments.
  while (c != EOF) {
    if (c == '#') {
      while (c != EOF && c != '\n') c = in.get();
    } else if (std::isspace(c)) {
      c = in.get();
    } else {
      break;
    }
  }
  if (c == EOF) return Status::IoError("unexpected EOF in PNM header");
  while (c != EOF && !std::isspace(c) && c != '#') {
    token += static_cast<char>(c);
    c = in.get();
  }
  if (c == '#') {
    // A comment terminates the token; consume it through its newline so
    // the comment bytes can never leak into the raster payload (the
    // newline doubles as the single delimiter before the raster when
    // this was the maxval token).
    while (c != EOF && c != '\n') c = in.get();
  }
  return token;
}

Result<int> NextInt(std::istream& in) {
  SNOR_ASSIGN_OR_RETURN(std::string token, NextToken(in));
  char* end = nullptr;
  const long v = std::strtol(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') {
    return Status::IoError("bad integer in PNM header: " + token);
  }
  return static_cast<int>(v);
}

}  // namespace

Result<ImageU8> ReadPnm(const std::string& path) {
  SNOR_RETURN_NOT_OK(InjectFault(FaultPoint::kIoRead, "ReadPnm " + path));
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  SNOR_ASSIGN_OR_RETURN(std::string magic, NextToken(file));
  int channels = 0;
  if (magic == "P6") {
    channels = 3;
  } else if (magic == "P5") {
    channels = 1;
  } else {
    return Status::IoError("unsupported PNM magic: " + magic);
  }
  SNOR_ASSIGN_OR_RETURN(int width, NextInt(file));
  SNOR_ASSIGN_OR_RETURN(int height, NextInt(file));
  SNOR_ASSIGN_OR_RETURN(int maxval, NextInt(file));
  if (width <= 0 || height <= 0) {
    return Status::IoError("bad PNM dimensions");
  }
  if (maxval != 255) {
    return Status::NotImplemented("only maxval=255 PNM files are supported");
  }
  // NextToken already consumed the single whitespace byte after maxval.
  ImageU8 img(width, height, channels);
  file.read(reinterpret_cast<char*>(img.data()),
            static_cast<std::streamsize>(img.size()));
  if (file.gcount() != static_cast<std::streamsize>(img.size()) ||
      FaultFires(FaultPoint::kTruncatedFile)) {
    return Status::IoError("truncated PNM payload: " + path);
  }
  // Models bit-rot between sensor and consumer: the read itself succeeds.
  MaybeCorruptBytes(img.data(), img.size());
  return img;
}

}  // namespace snor
