#ifndef SNOR_IMG_FILTER_H_
#define SNOR_IMG_FILTER_H_

#include <vector>

#include "img/image.h"

namespace snor {

/// Builds a normalized 1-D Gaussian kernel. If `radius` <= 0 it is derived
/// from sigma as ceil(3 sigma).
std::vector<float> GaussianKernel1D(double sigma, int radius = 0);

/// Separable Gaussian blur with replicate borders (float image).
ImageF GaussianBlur(const ImageF& src, double sigma);

/// Separable Gaussian blur with replicate borders (8-bit image).
ImageU8 GaussianBlur(const ImageU8& src, double sigma);

/// Sobel derivative of a single-channel float image.
/// `dx`/`dy` select the x- or y-derivative (exactly one must be 1).
ImageF Sobel(const ImageF& src, int dx, int dy);

/// Gradient magnitude via Sobel on a single-channel float image.
ImageF SobelMagnitude(const ImageF& src);

/// Normalized box (mean) filter with replicate borders; `radius` >= 1.
ImageF BoxFilter(const ImageF& src, int radius);

}  // namespace snor

#endif  // SNOR_IMG_FILTER_H_
