#include "features/surf.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "img/color.h"
#include "img/integral.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace snor {
namespace {

constexpr double kPi = std::numbers::pi;

// Sum over a rows x cols rectangle whose top-left pixel is (row, col).
double Box(const IntegralImage& ii, int row, int col, int rows, int cols) {
  return ii.Sum(col, row, cols, rows);
}

// One determinant-of-Hessian response map at a fixed box-filter size.
struct ResponseMap {
  int width = 0;
  int height = 0;
  int step = 1;        // Sampling step in image pixels.
  int filter_size = 0;
  std::vector<float> responses;
  std::vector<std::uint8_t> laplacian;

  float At(int ry, int rx) const {
    return responses[static_cast<std::size_t>(ry) * width + rx];
  }
};

ResponseMap BuildResponseMap(const IntegralImage& ii, int step,
                             int filter_size) {
  ResponseMap map;
  map.step = step;
  map.filter_size = filter_size;
  map.width = ii.width() / step;
  map.height = ii.height() / step;
  map.responses.assign(
      static_cast<std::size_t>(map.width) * map.height, 0.0f);
  map.laplacian.assign(
      static_cast<std::size_t>(map.width) * map.height, 0);

  const int b = (filter_size - 1) / 2;  // Border.
  const int l = filter_size / 3;        // Lobe.
  const int w = filter_size;
  const double inv_area = 1.0 / (w * w);

  for (int ry = 0; ry < map.height; ++ry) {
    for (int rx = 0; rx < map.width; ++rx) {
      const int r = ry * step;
      const int c = rx * step;

      double dxx = Box(ii, r - l + 1, c - b, 2 * l - 1, w) -
                   3.0 * Box(ii, r - l + 1, c - l / 2, 2 * l - 1, l);
      double dyy = Box(ii, r - b, c - l + 1, w, 2 * l - 1) -
                   3.0 * Box(ii, r - l / 2, c - l + 1, l, 2 * l - 1);
      double dxy = Box(ii, r - l, c + 1, l, l) +
                   Box(ii, r + 1, c - l, l, l) -
                   Box(ii, r - l, c - l, l, l) -
                   Box(ii, r + 1, c + 1, l, l);
      dxx *= inv_area;
      dyy *= inv_area;
      dxy *= inv_area;

      const double det = dxx * dyy - 0.81 * dxy * dxy;
      map.responses[static_cast<std::size_t>(ry) * map.width + rx] =
          static_cast<float>(det);
      map.laplacian[static_cast<std::size_t>(ry) * map.width + rx] =
          (dxx + dyy) >= 0 ? 1 : 0;
    }
  }
  return map;
}

double HaarX(const IntegralImage& ii, int row, int col, int s) {
  return Box(ii, row - s / 2, col, s, s / 2) -
         Box(ii, row - s / 2, col - s / 2, s, s / 2);
}

double HaarY(const IntegralImage& ii, int row, int col, int s) {
  return Box(ii, row, col - s / 2, s / 2, s) -
         Box(ii, row - s / 2, col - s / 2, s / 2, s);
}

double Gaussian(double x, double y, double sigma) {
  return std::exp(-(x * x + y * y) / (2.0 * sigma * sigma));
}

// Dominant Haar-wavelet orientation (radians) at scale `s`.
double DominantOrientation(const IntegralImage& ii, int x, int y, int s) {
  struct Sample {
    double angle;
    double dx;
    double dy;
  };
  std::vector<Sample> samples;
  for (int j = -6; j <= 6; ++j) {
    for (int i = -6; i <= 6; ++i) {
      if (i * i + j * j >= 36) continue;
      const double g = Gaussian(i, j, 2.5);
      const double dx = g * HaarX(ii, y + j * s, x + i * s, 4 * s);
      const double dy = g * HaarY(ii, y + j * s, x + i * s, 4 * s);
      double a = std::atan2(dy, dx);
      if (a < 0) a += 2 * kPi;
      samples.push_back({a, dx, dy});
    }
  }

  double best_mag = 0.0;
  double best_angle = 0.0;
  for (double window = 0.0; window < 2 * kPi; window += 0.15) {
    double sum_dx = 0.0;
    double sum_dy = 0.0;
    const double w_end = window + kPi / 3.0;
    for (const Sample& sm : samples) {
      const bool inside =
          (sm.angle >= window && sm.angle < w_end) ||
          (w_end > 2 * kPi && sm.angle < w_end - 2 * kPi);
      if (!inside) continue;
      sum_dx += sm.dx;
      sum_dy += sm.dy;
    }
    const double mag = sum_dx * sum_dx + sum_dy * sum_dy;
    if (mag > best_mag) {
      best_mag = mag;
      best_angle = std::atan2(sum_dy, sum_dx);
    }
  }
  if (best_angle < 0) best_angle += 2 * kPi;
  return best_angle;
}

// 64-dim SURF descriptor in the rotated frame.
FloatDescriptor ComputeSurfDescriptor(const IntegralImage& ii, int x, int y,
                                      int s, double angle) {
  const double co = std::cos(angle);
  const double si = std::sin(angle);
  FloatDescriptor desc;
  desc.reserve(64);

  // 4x4 subregions, each spanning 5s x 5s, window 20s total.
  for (int sub_y = -2; sub_y < 2; ++sub_y) {
    for (int sub_x = -2; sub_x < 2; ++sub_x) {
      double sum_dx = 0, sum_dy = 0, sum_adx = 0, sum_ady = 0;
      for (int sj = 0; sj < 5; ++sj) {
        for (int si_ = 0; si_ < 5; ++si_) {
          // Sample position in keypoint frame (units of s).
          const double u = (sub_x * 5 + si_ + 0.5);
          const double v = (sub_y * 5 + sj + 0.5);
          // Rotate into image frame.
          const int px =
              static_cast<int>(std::lround(x + (co * u - si * v) * s));
          const int py =
              static_cast<int>(std::lround(y + (si * u + co * v) * s));
          const double g = Gaussian(u, v, 3.3);
          const double rdx = g * HaarX(ii, py, px, 2 * s);
          const double rdy = g * HaarY(ii, py, px, 2 * s);
          // Rotate responses into the keypoint frame.
          const double tdx = co * rdx + si * rdy;
          const double tdy = -si * rdx + co * rdy;
          sum_dx += tdx;
          sum_dy += tdy;
          sum_adx += std::abs(tdx);
          sum_ady += std::abs(tdy);
        }
      }
      desc.push_back(static_cast<float>(sum_dx));
      desc.push_back(static_cast<float>(sum_dy));
      desc.push_back(static_cast<float>(sum_adx));
      desc.push_back(static_cast<float>(sum_ady));
    }
  }

  double norm = 0;
  for (float v : desc) norm += static_cast<double>(v) * v;
  norm = std::sqrt(norm);
  if (norm > 1e-12) {
    for (float& v : desc) v = static_cast<float>(v / norm);
  }
  return desc;
}

}  // namespace

FloatFeatures ExtractSurf(const ImageU8& image, const SurfOptions& options) {
  SNOR_TRACE_SPAN("features.surf.extract");
  static obs::Histogram& latency_us =
      obs::MetricsRegistry::Global().histogram("features.surf.latency_us");
  const obs::ScopedLatencyUs latency(latency_us);
  SNOR_CHECK_GE(options.n_octaves, 1);
  SNOR_CHECK_GE(options.n_intervals, 3);
  const ImageU8 gray = image.channels() == 3 ? RgbToGray(image) : image;
  if (gray.width() < 32 || gray.height() < 32) return {};
  const IntegralImage ii(gray);

  FloatFeatures out;
  struct Candidate {
    Keypoint kp;
    int scale;  // s = round(filter_size * 1.2 / 9).
    double angle;
  };
  std::vector<Candidate> candidates;

  for (int o = 0; o < options.n_octaves; ++o) {
    const int step = 1 << o;
    std::vector<ResponseMap> maps;
    maps.reserve(static_cast<std::size_t>(options.n_intervals));
    for (int i = 0; i < options.n_intervals; ++i) {
      const int filter_size = 3 * ((1 << (o + 1)) * (i + 1) + 1);
      if (filter_size >= std::min(gray.width(), gray.height())) break;
      maps.push_back(BuildResponseMap(ii, step, filter_size));
    }
    if (maps.size() < 3) continue;

    for (std::size_t m = 1; m + 1 < maps.size(); ++m) {
      const ResponseMap& bottom = maps[m - 1];
      const ResponseMap& middle = maps[m];
      const ResponseMap& top = maps[m + 1];
      // Stay clear of the largest filter's border.
      const int border = (top.filter_size / 2) / step + 2;
      for (int ry = border; ry < middle.height - border; ++ry) {
        for (int rx = border; rx < middle.width - border; ++rx) {
          const float v = middle.At(ry, rx);
          if (v < options.hessian_threshold) continue;
          bool is_max = true;
          for (int dy = -1; dy <= 1 && is_max; ++dy) {
            for (int dx = -1; dx <= 1 && is_max; ++dx) {
              if (bottom.At(ry + dy, rx + dx) >= v ||
                  top.At(ry + dy, rx + dx) >= v) {
                is_max = false;
              }
              if ((dx != 0 || dy != 0) && middle.At(ry + dy, rx + dx) >= v) {
                is_max = false;
              }
            }
          }
          if (!is_max) continue;

          Candidate cand;
          cand.kp.x = static_cast<float>(rx * step);
          cand.kp.y = static_cast<float>(ry * step);
          cand.kp.response = v;
          cand.kp.octave = o;
          const double sigma = 1.2 * middle.filter_size / 9.0;
          cand.kp.size = static_cast<float>(2.0 * sigma);
          cand.scale = std::max(
              1, static_cast<int>(std::lround(sigma)));
          candidates.push_back(std::move(cand));
        }
      }
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.kp.response > b.kp.response;
            });
  if (options.max_features > 0 &&
      static_cast<int>(candidates.size()) > options.max_features) {
    candidates.resize(static_cast<std::size_t>(options.max_features));
  }

  for (Candidate& cand : candidates) {
    const int x = static_cast<int>(cand.kp.x);
    const int y = static_cast<int>(cand.kp.y);
    cand.angle = DominantOrientation(ii, x, y, cand.scale);
    cand.kp.angle = static_cast<float>(cand.angle * 180.0 / kPi);
    out.keypoints.push_back(cand.kp);
    out.descriptors.push_back(
        ComputeSurfDescriptor(ii, x, y, cand.scale, cand.angle));
  }
  static obs::Counter& keypoints_counter =
      obs::MetricsRegistry::Global().counter("features.surf.keypoints");
  keypoints_counter.Increment(out.keypoints.size());
  return out;
}

}  // namespace snor
