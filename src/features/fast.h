#ifndef SNOR_FEATURES_FAST_H_
#define SNOR_FEATURES_FAST_H_

#include <vector>

#include "features/keypoint.h"
#include "img/image.h"

namespace snor {

/// \brief FAST-9 corner detection options.
struct FastOptions {
  /// Minimum absolute intensity difference for a circle pixel to count as
  /// brighter/darker than the centre.
  int threshold = 20;
  /// Apply 3x3 non-maximum suppression on the corner score.
  bool nonmax_suppression = true;
};

/// Detects FAST-9 corners (Rosten & Drummond): a pixel is a corner when at
/// least 9 contiguous pixels on its radius-3 Bresenham circle are all
/// brighter than centre+threshold or all darker than centre-threshold.
/// The score is the sum of absolute differences over the qualifying arc.
std::vector<Keypoint> DetectFast(const ImageU8& gray,
                                 const FastOptions& options = {});

/// Harris corner response at (x, y) computed over a `block_size` window of
/// Sobel derivatives (used by ORB to rank FAST corners).
float HarrisResponse(const ImageU8& gray, int x, int y, int block_size = 7,
                     float k = 0.04f);

}  // namespace snor

#endif  // SNOR_FEATURES_FAST_H_
