#ifndef SNOR_FEATURES_SIFT_H_
#define SNOR_FEATURES_SIFT_H_

#include "features/keypoint.h"
#include "img/image.h"

namespace snor {

/// \brief SIFT extraction parameters (defaults follow Lowe / OpenCV).
struct SiftOptions {
  /// Scale samples per octave.
  int n_scales = 3;
  /// Base blur of the first octave.
  double sigma = 1.6;
  /// DoG contrast threshold (applied as in OpenCV: |D| * n_scales).
  double contrast_threshold = 0.04;
  /// Principal-curvature ratio threshold for edge rejection.
  double edge_threshold = 10.0;
  /// Maximum keypoints kept (strongest first); 0 = unlimited.
  int max_features = 0;
};

/// Extracts SIFT features (Lowe 2004): Gaussian scale space, DoG extrema
/// with quadratic subpixel refinement and edge rejection, gradient
/// orientation assignment, and the 4x4x8 gradient-histogram descriptor
/// (normalized, clipped at 0.2, renormalized; 128 dims). Input may be RGB
/// or grayscale; coordinates are reported in input-image pixels.
FloatFeatures ExtractSift(const ImageU8& image,
                          const SiftOptions& options = {});

}  // namespace snor

#endif  // SNOR_FEATURES_SIFT_H_
