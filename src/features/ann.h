#ifndef SNOR_FEATURES_ANN_H_
#define SNOR_FEATURES_ANN_H_

#include <vector>

#include "features/kdtree.h"
#include "features/keypoint.h"

namespace snor {

/// Options for AnnIndex construction.
struct AnnOptions {
  /// Leaf-check budget handed to the underlying k-d tree. `>= point
  /// count` is exact search in embedding space. Values <= 0 default to
  /// exact (recall-first: candidate retrieval is already far cheaper than
  /// the exact kernels it prunes, so the budget knob is an opt-in trade
  /// of recall for speed, not a silent default).
  int max_leaf_checks = 0;
};

/// \brief Approximate top-R candidate retrieval over a set of fixed-length
/// embedding vectors, each tagged with a caller-supplied integer id.
///
/// This is the gallery-level ANN building block: callers embed gallery
/// views into a proxy space whose Euclidean distance ranks like the exact
/// metric (see core/feature_bank's sqrt-space color embedding), build an
/// AnnIndex over the embeddings, and rerank the returned candidate ids
/// with the exact distance kernels. The index itself is deterministic:
/// same points, ids, and query always yield the same candidate list.
///
/// Borrow contract: every query returns candidate ids *by value* — the
/// index never hands out pointers or iterators into its own storage, so
/// it needs no LIFETIME-BOUND annotations and results stay valid across
/// index rebuilds (the snor_analyze borrow pass has nothing to track
/// here by construction).
class AnnIndex {
 public:
  /// Builds an index over `points` (all the same dimension). `ids[i]` is
  /// returned for candidates drawn from `points[i]`; `ids` must be the same
  /// length as `points`. `expected_candidates` floors the leaf-check budget
  /// when `options.max_leaf_checks <= 0` (which defaults to exact search).
  [[nodiscard]] static AnnIndex Build(std::vector<FloatDescriptor> points,
                                      std::vector<int> ids,
                                      int expected_candidates,
                                      const AnnOptions& options = {});

  /// Ids of up to `r` approximate nearest points to `q`, sorted ascending
  /// by id (deterministic order for downstream reranking).
  std::vector<int> Query(const FloatDescriptor& q, int r) const;

  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

 private:
  AnnIndex(std::vector<FloatDescriptor> points, std::vector<int> ids,
           int max_leaf_checks);

  std::vector<int> ids_;
  KdTreeMatcher tree_;
};

}  // namespace snor

#endif  // SNOR_FEATURES_ANN_H_
