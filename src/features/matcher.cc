#include "features/matcher.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace snor {

namespace {

/// Every brute-force matcher call funnels through here: one descriptor
/// comparison per (query, train) pair.
void RecordComparisons(std::size_t n_query, std::size_t n_train) {
  static obs::Counter& comparisons =
      obs::MetricsRegistry::Global().counter("features.matcher.comparisons");
  comparisons.Increment(static_cast<std::uint64_t>(n_query) * n_train);
}

}  // namespace

int HammingDistance(const BinaryDescriptor& a, const BinaryDescriptor& b) {
  int dist = 0;
  for (std::size_t i = 0; i < a.size(); i += 8) {
    std::uint64_t wa, wb;
    std::memcpy(&wa, a.data() + i, 8);
    std::memcpy(&wb, b.data() + i, 8);
    dist += std::popcount(wa ^ wb);
  }
  return dist;
}

int HammingDistanceWords(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n_words) {
  int dist = 0;
  for (std::size_t i = 0; i < n_words; ++i) {
    dist += std::popcount(a[i] ^ b[i]);
  }
  return dist;
}

float FloatDistance(const FloatDescriptor& a, const FloatDescriptor& b,
                    FloatNorm norm) {
  SNOR_CHECK_EQ(a.size(), b.size());
  return FloatDistanceRaw(a.data(), b.data(), a.size(), norm);
}

float FloatDistanceRaw(const float* a, const float* b, const std::size_t n,
                       FloatNorm norm) {
  double acc = 0.0;
  if (norm == FloatNorm::kL1) {
    for (std::size_t i = 0; i < n; ++i) {
      acc += std::abs(static_cast<double>(a[i]) - b[i]);
    }
    return static_cast<float>(acc);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc));
}

namespace {

// Shared kNN implementation over an opaque distance functor.
template <typename DistFn>
std::vector<std::vector<DMatch>> KnnImpl(std::size_t n_query,
                                         std::size_t n_train, int k,
                                         DistFn&& dist) {
  SNOR_CHECK_GE(k, 1);
  std::vector<std::vector<DMatch>> all(n_query);
  const std::size_t keep = std::min<std::size_t>(static_cast<std::size_t>(k),
                                                 n_train);
  std::vector<DMatch> row;
  for (std::size_t q = 0; q < n_query; ++q) {
    row.clear();
    row.reserve(n_train);
    for (std::size_t t = 0; t < n_train; ++t) {
      row.push_back(DMatch{static_cast<int>(q), static_cast<int>(t),
                           dist(q, t)});
    }
    std::partial_sort(row.begin(), row.begin() + static_cast<long>(keep),
                      row.end(), [](const DMatch& a, const DMatch& b) {
                        return a.distance < b.distance;
                      });
    all[q].assign(row.begin(), row.begin() + static_cast<long>(keep));
  }
  return all;
}

template <typename Knn>
std::vector<DMatch> BestOf(Knn&& knn) {
  std::vector<DMatch> best;
  for (const auto& list : knn) {
    if (!list.empty()) best.push_back(list.front());
  }
  return best;
}

}  // namespace

std::vector<std::vector<DMatch>> KnnMatchBruteForce(
    const std::vector<FloatDescriptor>& query,
    const std::vector<FloatDescriptor>& train, int k, FloatNorm norm) {
  SNOR_TRACE_SPAN("features.matcher.knn_float");
  RecordComparisons(query.size(), train.size());
  return KnnImpl(query.size(), train.size(), k,
                 [&](std::size_t q, std::size_t t) {
                   return FloatDistance(query[q], train[t], norm);
                 });
}

std::vector<std::vector<DMatch>> KnnMatchBruteForce(
    const std::vector<BinaryDescriptor>& query,
    const std::vector<BinaryDescriptor>& train, int k) {
  SNOR_TRACE_SPAN("features.matcher.knn_binary");
  RecordComparisons(query.size(), train.size());
  return KnnImpl(query.size(), train.size(), k,
                 [&](std::size_t q, std::size_t t) {
                   return static_cast<float>(
                       HammingDistance(query[q], train[t]));
                 });
}

std::vector<DMatch> MatchBruteForce(const std::vector<FloatDescriptor>& query,
                                    const std::vector<FloatDescriptor>& train,
                                    FloatNorm norm) {
  if (train.empty()) return {};
  return BestOf(KnnMatchBruteForce(query, train, 1, norm));
}

std::vector<DMatch> MatchBruteForce(
    const std::vector<BinaryDescriptor>& query,
    const std::vector<BinaryDescriptor>& train) {
  if (train.empty()) return {};
  return BestOf(KnnMatchBruteForce(query, train, 1));
}

std::vector<DMatch> RatioTestFilter(
    const std::vector<std::vector<DMatch>>& knn_matches, float ratio) {
  static obs::Counter& dropped =
      obs::MetricsRegistry::Global().counter("features.matcher.dropped");
  std::vector<DMatch> good;
  for (const auto& list : knn_matches) {
    if (list.empty()) continue;
    // A single-neighbour list has no second-best to compare against: the
    // match is unambiguous by construction and passes. Dropping it lost
    // queries whose sole neighbour was an excellent match (train sets
    // with one descriptor), inconsistent with descriptor_classifier's
    // empty-match fallback which still produces an answer.
    if (list.size() >= 2 && !(list[0].distance < ratio * list[1].distance)) {
      dropped.Increment();  // Ambiguous: best too close to second-best.
      continue;
    }
    good.push_back(list[0]);
  }
  return good;
}

std::vector<DMatch> CrossCheckFilter(const std::vector<DMatch>& forward,
                                     const std::vector<DMatch>& backward) {
  std::vector<DMatch> kept;
  for (const DMatch& f : forward) {
    for (const DMatch& b : backward) {
      if (b.query_idx == f.train_idx && b.train_idx == f.query_idx) {
        kept.push_back(f);
        break;
      }
    }
  }
  return kept;
}

}  // namespace snor
