#include "features/histogram.h"

#include <cmath>

#include "util/check.h"

namespace snor {

bool IsSimilarityMetric(HistCompareMethod method) {
  return method == HistCompareMethod::kCorrelation ||
         method == HistCompareMethod::kIntersection;
}

ColorHistogram::ColorHistogram(int bins_per_channel)
    : bins_per_channel_(bins_per_channel) {
  SNOR_CHECK_GT(bins_per_channel, 0);
  SNOR_CHECK_LE(bins_per_channel, 256);
  const std::size_t n = static_cast<std::size_t>(bins_per_channel) *
                        bins_per_channel * bins_per_channel;
  bins_.assign(n, 0.0);
}

ColorHistogram ColorHistogram::Compute(const ImageU8& rgb,
                                       const ImageU8* mask,
                                       int bins_per_channel) {
  SNOR_CHECK_EQ(rgb.channels(), 3);
  if (mask != nullptr) {
    SNOR_CHECK_EQ(mask->channels(), 1);
    SNOR_CHECK_EQ(mask->width(), rgb.width());
    SNOR_CHECK_EQ(mask->height(), rgb.height());
  }
  ColorHistogram hist(bins_per_channel);
  const int shift_divisor = 256 / bins_per_channel;
  const bool power_of_two = (256 % bins_per_channel) == 0;
  for (int y = 0; y < rgb.height(); ++y) {
    const std::uint8_t* row = rgb.Row(y);
    for (int x = 0; x < rgb.width(); ++x) {
      if (mask != nullptr && mask->at(y, x) == 0) continue;
      int rb, gb, bb;
      if (power_of_two) {
        rb = row[3 * x + 0] / shift_divisor;
        gb = row[3 * x + 1] / shift_divisor;
        bb = row[3 * x + 2] / shift_divisor;
      } else {
        rb = row[3 * x + 0] * bins_per_channel / 256;
        gb = row[3 * x + 1] * bins_per_channel / 256;
        bb = row[3 * x + 2] * bins_per_channel / 256;
      }
      hist.At(rb, gb, bb) += 1.0;
    }
  }
  return hist;
}

double& ColorHistogram::At(int r_bin, int g_bin, int b_bin) {
  SNOR_DCHECK(r_bin >= 0 && r_bin < bins_per_channel_);
  SNOR_DCHECK(g_bin >= 0 && g_bin < bins_per_channel_);
  SNOR_DCHECK(b_bin >= 0 && b_bin < bins_per_channel_);
  return bins_[(static_cast<std::size_t>(r_bin) * bins_per_channel_ + g_bin) *
                   bins_per_channel_ +
               b_bin];
}

double ColorHistogram::At(int r_bin, int g_bin, int b_bin) const {
  return const_cast<ColorHistogram*>(this)->At(r_bin, g_bin, b_bin);
}

double ColorHistogram::TotalMass() const {
  double total = 0.0;
  for (double v : bins_) total += v;
  return total;
}

void ColorHistogram::NormalizeL1() {
  const double total = TotalMass();
  if (total <= 0.0) return;
  // Idempotence: renormalizing an already-normalized histogram would divide
  // every bin by a total like 0.999999... and drift the bin values. Raw
  // histograms are pixel counts (integer totals), so the only raw total
  // within 1e-9 of 1.0 is exactly 1.0 — safe to treat as normalized.
  if (std::abs(total - 1.0) <= 1e-9) return;
  for (double& v : bins_) v /= total;
}

double CompareHistograms(const ColorHistogram& a, const ColorHistogram& b,
                         HistCompareMethod method) {
  SNOR_CHECK_EQ(a.num_bins(), b.num_bins());
  return CompareHistogramsRaw(a.bins().data(), b.bins().data(),
                              a.num_bins(), method);
}

double CompareHistogramsRaw(const double* ha, const double* hb,
                            const std::size_t n, HistCompareMethod method) {
  switch (method) {
    case HistCompareMethod::kCorrelation: {
      double sum_a = 0, sum_b = 0;
      for (std::size_t i = 0; i < n; ++i) {
        sum_a += ha[i];
        sum_b += hb[i];
      }
      const double mean_a = sum_a / static_cast<double>(n);
      const double mean_b = sum_b / static_cast<double>(n);
      double num = 0, den_a = 0, den_b = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double da = ha[i] - mean_a;
        const double db = hb[i] - mean_b;
        num += da * db;
        den_a += da * da;
        den_b += db * db;
      }
      const bool flat_a = den_a < 1e-300;
      const bool flat_b = den_b < 1e-300;
      if (flat_a && flat_b) return 1.0;  // Both flat: perfectly correlated.
      // Exactly one side flat: zero variance makes the Pearson coefficient
      // 0/0. Returning 1.0 here would let a flat (e.g. fully masked-out)
      // histogram silently win argmax against every real histogram — the
      // correlation analogue of the Hellinger zero-denominator bug. Report
      // the worst case for a similarity metric instead.
      if (flat_a || flat_b) return -1.0;
      return num / std::sqrt(den_a * den_b);
    }
    case HistCompareMethod::kChiSquare: {
      double acc = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (ha[i] > 0) {
          const double d = ha[i] - hb[i];
          acc += d * d / ha[i];
        }
      }
      return acc;
    }
    case HistCompareMethod::kIntersection: {
      double acc = 0;
      for (std::size_t i = 0; i < n; ++i) acc += std::min(ha[i], hb[i]);
      return acc;
    }
    case HistCompareMethod::kHellinger: {
      double sum_a = 0, sum_b = 0, sum_sqrt = 0;
      for (std::size_t i = 0; i < n; ++i) {
        sum_a += ha[i];
        sum_b += hb[i];
        sum_sqrt += std::sqrt(ha[i] * hb[i]);
      }
      const double mean_a = sum_a / static_cast<double>(n);
      const double mean_b = sum_b / static_cast<double>(n);
      const double denom =
          std::sqrt(mean_a * mean_b) * static_cast<double>(n);
      // An all-zero histogram (fully masked-out crop) zeroes the
      // denominator; return the worst-case distance instead of letting
      // 0/0 make an empty crop a perfect match for everything.
      if (denom < 1e-300) return 1.0;
      const double bc = sum_sqrt / denom;  // Bhattacharyya coefficient.
      return std::sqrt(std::max(0.0, 1.0 - bc));
    }
  }
  SNOR_CHECK_MSG(false, "unreachable");
  return 0.0;
}

}  // namespace snor
