#include "features/hog.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "img/color.h"
#include "img/resize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace snor {

std::size_t HogDescriptorLength(const HogOptions& options) {
  const int cells = options.window / options.cell;
  const int blocks = cells - options.block + 1;
  return static_cast<std::size_t>(blocks) * blocks * options.block *
         options.block * options.bins;
}

std::vector<float> ComputeHog(const ImageU8& image,
                              const HogOptions& options) {
  SNOR_TRACE_SPAN("features.hog.compute");
  static obs::Histogram& latency_us =
      obs::MetricsRegistry::Global().histogram("features.hog.latency_us");
  const obs::ScopedLatencyUs latency(latency_us);
  static obs::Counter& windows_counter =
      obs::MetricsRegistry::Global().counter("features.hog.windows");
  windows_counter.Increment();
  SNOR_CHECK_GT(options.window, 0);
  SNOR_CHECK_GT(options.cell, 0);
  SNOR_CHECK_EQ(options.window % options.cell, 0);
  SNOR_CHECK_GE(options.block, 1);

  const ImageU8 gray_u8 =
      image.channels() == 3 ? RgbToGray(image) : image;
  const ImageU8 resized =
      Resize(gray_u8, options.window, options.window, Interp::kBilinear);

  const int cells = options.window / options.cell;
  std::vector<double> cell_hist(
      static_cast<std::size_t>(cells) * cells * options.bins, 0.0);
  auto hist_at = [&](int cy, int cx, int b) -> double& {
    return cell_hist[(static_cast<std::size_t>(cy) * cells + cx) *
                         options.bins +
                     b];
  };

  const double bin_width = 180.0 / options.bins;
  for (int y = 0; y < options.window; ++y) {
    for (int x = 0; x < options.window; ++x) {
      const double gx = static_cast<double>(resized.AtClamped(y, x + 1)) -
                        resized.AtClamped(y, x - 1);
      const double gy = static_cast<double>(resized.AtClamped(y + 1, x)) -
                        resized.AtClamped(y - 1, x);
      const double mag = std::hypot(gx, gy);
      if (mag < 1e-9) continue;
      double angle = std::atan2(gy, gx) * 180.0 / std::numbers::pi;
      if (angle < 0) angle += 180.0;
      if (angle >= 180.0) angle -= 180.0;

      // Bilinear orientation binning.
      const double pos = angle / bin_width - 0.5;
      int b0 = static_cast<int>(std::floor(pos));
      const double frac = pos - b0;
      int b1 = b0 + 1;
      if (b0 < 0) b0 += options.bins;
      if (b1 >= options.bins) b1 -= options.bins;

      const int cy = std::min(y / options.cell, cells - 1);
      const int cx = std::min(x / options.cell, cells - 1);
      hist_at(cy, cx, b0) += mag * (1.0 - frac);
      hist_at(cy, cx, b1) += mag * frac;
    }
  }

  // Sliding-block L2-hys normalization.
  const int blocks = cells - options.block + 1;
  std::vector<float> descriptor;
  descriptor.reserve(HogDescriptorLength(options));
  std::vector<double> block_vec(
      static_cast<std::size_t>(options.block) * options.block *
      options.bins);
  for (int by = 0; by < blocks; ++by) {
    for (int bx = 0; bx < blocks; ++bx) {
      std::size_t idx = 0;
      for (int cy = by; cy < by + options.block; ++cy) {
        for (int cx = bx; cx < bx + options.block; ++cx) {
          for (int b = 0; b < options.bins; ++b) {
            block_vec[idx++] = hist_at(cy, cx, b);
          }
        }
      }
      // L2 normalize, clip at 0.2, renormalize (L2-hys).
      auto l2 = [&] {
        double acc = 0.0;
        for (double v : block_vec) acc += v * v;
        return std::sqrt(acc) + 1e-9;
      };
      double norm = l2();
      for (double& v : block_vec) v = std::min(v / norm, 0.2);
      norm = l2();
      for (double v : block_vec) {
        descriptor.push_back(static_cast<float>(v / norm));
      }
    }
  }
  return descriptor;
}

}  // namespace snor
