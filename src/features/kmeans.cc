#include "features/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "features/matcher.h"
#include "util/check.h"
#include "util/rng.h"

namespace snor {
namespace {

double SquaredL2(const FloatDescriptor& a, const FloatDescriptor& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

int NearestCentroid(const std::vector<FloatDescriptor>& centroids,
                    const FloatDescriptor& point) {
  if (centroids.empty()) return -1;
  int best = 0;
  double best_dist = SquaredL2(centroids[0], point);
  for (std::size_t c = 1; c < centroids.size(); ++c) {
    const double d = SquaredL2(centroids[c], point);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

KMeansResult KMeansCluster(const std::vector<FloatDescriptor>& points,
                           const KMeansOptions& options) {
  SNOR_CHECK_GT(options.k, 0);
  KMeansResult result;
  if (points.empty()) return result;
  const int k = std::min<int>(options.k, static_cast<int>(points.size()));
  const std::size_t dim = points[0].size();
  for (const auto& p : points) SNOR_CHECK_EQ(p.size(), dim);

  Rng rng(options.seed);

  // k-means++ seeding.
  result.centroids.push_back(points[rng.Index(points.size())]);
  std::vector<double> min_dist(points.size(),
                               std::numeric_limits<double>::max());
  while (static_cast<int>(result.centroids.size()) < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      min_dist[i] = std::min(
          min_dist[i], SquaredL2(points[i], result.centroids.back()));
      total += min_dist[i];
    }
    if (total <= 0.0) break;  // All remaining points coincide with centres.
    double target = rng.UniformDouble() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      target -= min_dist[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    result.centroids.push_back(points[chosen]);
  }

  // Lloyd iterations.
  result.assignments.assign(points.size(), -1);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const int nearest = NearestCentroid(result.centroids, points[i]);
      if (nearest != result.assignments[i]) {
        result.assignments[i] = nearest;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    // Recompute centres.
    std::vector<FloatDescriptor> sums(
        result.centroids.size(), FloatDescriptor(dim, 0.0f));
    std::vector<int> counts(result.centroids.size(), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto c = static_cast<std::size_t>(result.assignments[i]);
      for (std::size_t j = 0; j < dim; ++j) sums[c][j] += points[i][j];
      ++counts[c];
    }
    for (std::size_t c = 0; c < result.centroids.size(); ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster from the point farthest from its
        // centroid.
        std::size_t farthest = 0;
        double far_dist = -1.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
          const double d = SquaredL2(
              points[i], result.centroids[static_cast<std::size_t>(
                             result.assignments[i])]);
          if (d > far_dist) {
            far_dist = d;
            farthest = i;
          }
        }
        result.centroids[c] = points[farthest];
        continue;
      }
      for (std::size_t j = 0; j < dim; ++j) {
        result.centroids[c][j] =
            sums[c][j] / static_cast<float>(counts[c]);
      }
    }
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.inertia += SquaredL2(
        points[i],
        result.centroids[static_cast<std::size_t>(result.assignments[i])]);
  }
  return result;
}

}  // namespace snor
