#include "features/brief.h"

#include <cmath>
#include <numbers>

#include "obs/metrics.h"
#include "util/rng.h"

namespace snor {
namespace {

/// Per-keypoint hot path: counter only, no span (a span per descriptor
/// would dominate the trace).
void CountDescriptor() {
  static obs::Counter& descriptors =
      obs::MetricsRegistry::Global().counter("features.brief.descriptors");
  descriptors.Increment();
}

constexpr double kPatchSigma = 31.0 / 5.0;
constexpr double kMaxRadius = 13.0;

std::array<BriefPair, 256> GeneratePattern() {
  // Fixed seed: the pattern is part of the descriptor definition.
  Rng rng(0x0B51EFULL);
  std::array<BriefPair, 256> pattern;
  for (auto& p : pattern) {
    auto draw = [&](float& ox, float& oy) {
      for (;;) {
        const double x = rng.Normal(0.0, kPatchSigma);
        const double y = rng.Normal(0.0, kPatchSigma);
        if (x * x + y * y <= kMaxRadius * kMaxRadius) {
          ox = static_cast<float>(x);
          oy = static_cast<float>(y);
          return;
        }
      }
    };
    draw(p.x1, p.y1);
    draw(p.x2, p.y2);
  }
  return pattern;
}

std::uint8_t SampleSmoothed(const ImageU8& img, double x, double y) {
  return img.AtClamped(static_cast<int>(std::lround(y)),
                       static_cast<int>(std::lround(x)));
}

BinaryDescriptor ComputeWithRotation(const ImageU8& smoothed,
                                     const Keypoint& kp, double radians) {
  const auto& pattern = BriefPattern();
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  BinaryDescriptor desc{};
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const BriefPair& p = pattern[i];
    const double x1 = kp.x + c * p.x1 - s * p.y1;
    const double y1 = kp.y + s * p.x1 + c * p.y1;
    const double x2 = kp.x + c * p.x2 - s * p.y2;
    const double y2 = kp.y + s * p.x2 + c * p.y2;
    if (SampleSmoothed(smoothed, x1, y1) < SampleSmoothed(smoothed, x2, y2)) {
      desc[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
    }
  }
  return desc;
}

}  // namespace

const std::array<BriefPair, 256>& BriefPattern() {
  // Leaked on purpose (static-destruction-order safety).
  static const std::array<BriefPair, 256>& pattern =
      *new std::array<BriefPair, 256>(GeneratePattern());  // NOLINT(raw-new-delete)
  return pattern;
}

BinaryDescriptor ComputeBriefDescriptor(const ImageU8& smoothed,
                                        const Keypoint& kp) {
  CountDescriptor();
  return ComputeWithRotation(smoothed, kp, 0.0);
}

BinaryDescriptor ComputeSteeredBriefDescriptor(const ImageU8& smoothed,
                                               const Keypoint& kp) {
  CountDescriptor();
  const double radians =
      kp.angle < 0 ? 0.0 : kp.angle * std::numbers::pi / 180.0;
  return ComputeWithRotation(smoothed, kp, radians);
}

float IntensityCentroidAngle(const ImageU8& gray, int x, int y, int radius) {
  double m01 = 0.0;
  double m10 = 0.0;
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      if (dx * dx + dy * dy > radius * radius) continue;
      const double v = gray.AtClamped(y + dy, x + dx);
      m10 += dx * v;
      m01 += dy * v;
    }
  }
  double angle = std::atan2(m01, m10) * 180.0 / std::numbers::pi;
  if (angle < 0) angle += 360.0;
  return static_cast<float>(angle);
}

}  // namespace snor
