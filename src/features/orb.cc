#include "features/orb.h"

#include <algorithm>
#include <cmath>

#include "features/brief.h"
#include "features/fast.h"
#include "img/color.h"
#include "img/filter.h"
#include "img/pyramid.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace snor {

BinaryFeatures ExtractOrb(const ImageU8& image, const OrbOptions& options) {
  SNOR_TRACE_SPAN("features.orb.extract");
  static obs::Histogram& latency_us =
      obs::MetricsRegistry::Global().histogram("features.orb.latency_us");
  const obs::ScopedLatencyUs latency(latency_us);
  const ImageU8 gray = image.channels() == 3 ? RgbToGray(image) : image;

  struct Candidate {
    Keypoint kp;          // In base-image coordinates.
    Keypoint level_kp;    // In level coordinates (for descriptor sampling).
    int level = 0;
    float harris = 0.0f;
  };

  const auto pyramid = BuildPyramid(gray, options.n_levels,
                                    options.scale_factor, /*min_size=*/32);

  std::vector<Candidate> candidates;
  FastOptions fast_opts;
  fast_opts.threshold = options.fast_threshold;
  fast_opts.nonmax_suppression = true;

  // Keep keypoints whose descriptor patch fits (the steered pattern needs
  // ~13px on the pyramid level; orientation patch needs 15px).
  constexpr int kEdge = 16;

  for (std::size_t level = 0; level < pyramid.size(); ++level) {
    const ImageU8& lvl_img = pyramid[level].image;
    const double scale = pyramid[level].scale;
    for (const Keypoint& kp : DetectFast(lvl_img, fast_opts)) {
      const int x = static_cast<int>(kp.x);
      const int y = static_cast<int>(kp.y);
      if (x < kEdge || y < kEdge || x >= lvl_img.width() - kEdge ||
          y >= lvl_img.height() - kEdge) {
        continue;
      }
      Candidate cand;
      cand.level = static_cast<int>(level);
      cand.level_kp = kp;
      cand.level_kp.angle = IntensityCentroidAngle(lvl_img, x, y);
      cand.kp = kp;
      cand.kp.x = static_cast<float>(kp.x * scale);
      cand.kp.y = static_cast<float>(kp.y * scale);
      cand.kp.angle = cand.level_kp.angle;
      cand.kp.octave = static_cast<int>(level);
      cand.kp.size = static_cast<float>(31.0 * scale);
      cand.harris = HarrisResponse(lvl_img, x, y);
      candidates.push_back(std::move(cand));
    }
  }

  // Rank by Harris response and keep the strongest n_features.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.harris > b.harris;
            });
  if (static_cast<int>(candidates.size()) > options.n_features) {
    candidates.resize(static_cast<std::size_t>(options.n_features));
  }

  // Smooth each used level once for BRIEF sampling.
  std::vector<ImageU8> smoothed(pyramid.size());
  std::vector<bool> smoothed_ready(pyramid.size(), false);

  BinaryFeatures out;
  out.keypoints.reserve(candidates.size());
  out.descriptors.reserve(candidates.size());
  for (const Candidate& cand : candidates) {
    const auto level = static_cast<std::size_t>(cand.level);
    if (!smoothed_ready[level]) {
      smoothed[level] = GaussianBlur(pyramid[level].image, options.blur_sigma);
      smoothed_ready[level] = true;
    }
    Keypoint sample_kp = cand.level_kp;
    out.keypoints.push_back(cand.kp);
    out.descriptors.push_back(
        ComputeSteeredBriefDescriptor(smoothed[level], sample_kp));
  }
  static obs::Counter& keypoints_counter =
      obs::MetricsRegistry::Global().counter("features.orb.keypoints");
  keypoints_counter.Increment(out.keypoints.size());
  return out;
}

}  // namespace snor
