#include "features/fast.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace snor {
namespace {

// Radius-3 Bresenham circle, clockwise from 12 o'clock (OpenCV order).
constexpr int kCircleDx[16] = {0, 1, 2, 3, 3, 3, 2, 1, 0, -1, -2, -3, -3, -3, -2, -1};
constexpr int kCircleDy[16] = {-3, -3, -2, -1, 0, 1, 2, 3, 3, 3, 2, 1, 0, -1, -2, -3};

constexpr int kArc = 9;  // FAST-9.

// Returns the corner score (0 when not a corner): the sum of |p_i - c| - t
// over the best qualifying contiguous arc.
int FastScore(const ImageU8& gray, int x, int y, int threshold) {
  const int c = gray.at(y, x);
  int state[16];  // +1 brighter, -1 darker, 0 similar.
  int diff[16];
  for (int i = 0; i < 16; ++i) {
    const int p = gray.at(y + kCircleDy[i], x + kCircleDx[i]);
    diff[i] = p - c;
    if (diff[i] > threshold) {
      state[i] = 1;
    } else if (diff[i] < -threshold) {
      state[i] = -1;
    } else {
      state[i] = 0;
    }
  }

  int best_score = 0;
  for (int sign : {1, -1}) {
    // Longest run of `sign` on the circular buffer, tracking arc sums.
    int run = 0;
    int run_sum = 0;
    for (int i = 0; i < 16 + kArc; ++i) {
      const int idx = i % 16;
      if (state[idx] == sign) {
        ++run;
        run_sum += std::abs(diff[idx]) - threshold;
        if (run >= kArc) {
          best_score = std::max(best_score, run_sum);
        }
        if (run > 16) break;  // Full circle.
      } else {
        run = 0;
        run_sum = 0;
      }
    }
  }
  return best_score;
}

}  // namespace

std::vector<Keypoint> DetectFast(const ImageU8& gray,
                                 const FastOptions& options) {
  SNOR_CHECK_EQ(gray.channels(), 1);
  const int margin = 3;
  const int w = gray.width();
  const int h = gray.height();
  if (w <= 2 * margin || h <= 2 * margin) return {};

  Image<int> score_map(w, h, 1, 0);
  for (int y = margin; y < h - margin; ++y) {
    for (int x = margin; x < w - margin; ++x) {
      score_map.at(y, x) = FastScore(gray, x, y, options.threshold);
    }
  }

  std::vector<Keypoint> corners;
  for (int y = margin; y < h - margin; ++y) {
    for (int x = margin; x < w - margin; ++x) {
      const int s = score_map.at(y, x);
      if (s <= 0) continue;
      if (options.nonmax_suppression) {
        bool is_max = true;
        for (int dy = -1; dy <= 1 && is_max; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) continue;
            const int ns = score_map.at(y + dy, x + dx);
            // Strict on one side to break ties deterministically.
            if (ns > s || (ns == s && (dy < 0 || (dy == 0 && dx < 0)))) {
              is_max = false;
              break;
            }
          }
        }
        if (!is_max) continue;
      }
      Keypoint kp;
      kp.x = static_cast<float>(x);
      kp.y = static_cast<float>(y);
      kp.response = static_cast<float>(s);
      corners.push_back(kp);
    }
  }
  return corners;
}

float HarrisResponse(const ImageU8& gray, int x, int y, int block_size,
                     float k) {
  const int r = block_size / 2;
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (int dy = -r; dy <= r; ++dy) {
    for (int dx = -r; dx <= r; ++dx) {
      const int cx = x + dx;
      const int cy = y + dy;
      // Central differences with clamped reads.
      const double gx =
          (static_cast<double>(gray.AtClamped(cy, cx + 1)) -
           gray.AtClamped(cy, cx - 1)) /
          2.0;
      const double gy =
          (static_cast<double>(gray.AtClamped(cy + 1, cx)) -
           gray.AtClamped(cy - 1, cx)) /
          2.0;
      sxx += gx * gx;
      syy += gy * gy;
      sxy += gx * gy;
    }
  }
  const double det = sxx * syy - sxy * sxy;
  const double trace = sxx + syy;
  return static_cast<float>(det - k * trace * trace);
}

}  // namespace snor
