#ifndef SNOR_FEATURES_ORB_H_
#define SNOR_FEATURES_ORB_H_

#include "features/keypoint.h"
#include "img/image.h"

namespace snor {

/// \brief ORB extraction parameters (defaults follow OpenCV).
struct OrbOptions {
  /// Maximum number of keypoints retained (ranked by Harris response).
  int n_features = 500;
  /// Pyramid scale step between levels.
  double scale_factor = 1.2;
  /// Number of pyramid levels.
  int n_levels = 8;
  /// FAST threshold used on every level.
  int fast_threshold = 20;
  /// Gaussian smoothing applied before BRIEF sampling.
  double blur_sigma = 2.0;
};

/// Extracts ORB features (Rublee et al.): multi-scale FAST-9 keypoints
/// ranked by Harris response, intensity-centroid orientation, and steered
/// 256-bit BRIEF descriptors. Keypoint coordinates are reported in
/// base-image pixels. Input may be RGB (converted to gray) or gray.
BinaryFeatures ExtractOrb(const ImageU8& image, const OrbOptions& options = {});

}  // namespace snor

#endif  // SNOR_FEATURES_ORB_H_
