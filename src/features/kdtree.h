#ifndef SNOR_FEATURES_KDTREE_H_
#define SNOR_FEATURES_KDTREE_H_

#include <memory>
#include <vector>

#include "features/matcher.h"

namespace snor {

/// \brief Approximate nearest-neighbour matcher over float descriptors
/// (k-d tree with best-bin-first search), our stand-in for FLANN.
///
/// The paper reports that FLANN gave no accuracy gain over brute force at
/// gallery sizes of ~100 descriptors sets; `bench/ablation_sweeps` measures
/// the same trade-off here.
class KdTreeMatcher {
 public:
  /// Builds the index. `max_leaf_checks` bounds the number of points
  /// examined per query during backtracking (higher = more exact).
  explicit KdTreeMatcher(std::vector<FloatDescriptor> train,
                         int max_leaf_checks = 128);
  ~KdTreeMatcher();

  KdTreeMatcher(KdTreeMatcher&&) noexcept;
  KdTreeMatcher& operator=(KdTreeMatcher&&) noexcept;
  KdTreeMatcher(const KdTreeMatcher&) = delete;
  KdTreeMatcher& operator=(const KdTreeMatcher&) = delete;

  /// k-nearest neighbours (L2) for each query descriptor; inner lists are
  /// sorted by ascending distance and always contain exactly
  /// min(k, train size) entries — the leaf-check budget bounds extra
  /// backtracking, never the result count — matching KnnMatchBruteForce.
  /// With `max_leaf_checks >= train size` results are exact.
  std::vector<std::vector<DMatch>> KnnMatch(
      const std::vector<FloatDescriptor>& query, int k) const;

  std::size_t size() const { return train_.size(); }

 private:
  struct Node;

  [[nodiscard]] int BuildNode(std::vector<int>& indices, int begin, int end);
  void Search(int node_idx, const FloatDescriptor& q, int k,
              std::vector<DMatch>& heap, int& checks) const;

  std::vector<FloatDescriptor> train_;
  std::vector<Node> nodes_;
  int root_ = -1;
  int max_leaf_checks_;
};

}  // namespace snor

#endif  // SNOR_FEATURES_KDTREE_H_
