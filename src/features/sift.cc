#include "features/sift.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "img/color.h"
#include "img/filter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace snor {
namespace {

constexpr double kPi = std::numbers::pi;
constexpr int kOriHistBins = 36;
constexpr double kOriSigmaFactor = 1.5;
constexpr double kOriRadiusFactor = 3.0 * kOriSigmaFactor;
constexpr double kOriPeakRatio = 0.8;
constexpr int kDescWidth = 4;       // 4x4 spatial cells.
constexpr int kDescOriBins = 8;     // Orientation bins per cell.
constexpr double kDescSclFactor = 3.0;
constexpr double kDescMagThreshold = 0.2;

// Downsamples by taking every other pixel.
ImageF HalfSample(const ImageF& src) {
  const int w = std::max(1, src.width() / 2);
  const int h = std::max(1, src.height() / 2);
  ImageF dst(w, h, 1);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      dst.at(y, x) = src.at(2 * y, 2 * x);
    }
  }
  return dst;
}

struct ScaleSpace {
  // gaussians[o][i]: octave o, blur level i (n_scales + 3 per octave).
  std::vector<std::vector<ImageF>> gaussians;
  // dogs[o][i] = gaussians[o][i+1] - gaussians[o][i] (n_scales + 2).
  std::vector<std::vector<ImageF>> dogs;
};

ScaleSpace BuildScaleSpace(const ImageF& base, int n_octaves, int n_scales,
                           double sigma) {
  ScaleSpace ss;
  const int levels = n_scales + 3;
  const double k = std::pow(2.0, 1.0 / n_scales);

  // Per-level incremental blur amounts.
  std::vector<double> inc_sigma(static_cast<std::size_t>(levels));
  inc_sigma[0] = sigma;
  double prev_total = sigma;
  for (int i = 1; i < levels; ++i) {
    const double total = sigma * std::pow(k, i);
    inc_sigma[static_cast<std::size_t>(i)] =
        std::sqrt(total * total - prev_total * prev_total);
    prev_total = total;
  }

  ss.gaussians.resize(static_cast<std::size_t>(n_octaves));
  ss.dogs.resize(static_cast<std::size_t>(n_octaves));
  for (int o = 0; o < n_octaves; ++o) {
    auto& gauss = ss.gaussians[static_cast<std::size_t>(o)];
    gauss.reserve(static_cast<std::size_t>(levels));
    if (o == 0) {
      // Assume the input has sigma_init = 0.5; lift it to `sigma`.
      const double add =
          std::sqrt(std::max(sigma * sigma - 0.5 * 0.5, 0.01));
      gauss.push_back(GaussianBlur(base, add));
    } else {
      // Seed with the (s)-th gaussian of the previous octave, halved.
      gauss.push_back(HalfSample(
          ss.gaussians[static_cast<std::size_t>(o - 1)]
                      [static_cast<std::size_t>(n_scales)]));
    }
    for (int i = 1; i < levels; ++i) {
      gauss.push_back(
          GaussianBlur(gauss.back(), inc_sigma[static_cast<std::size_t>(i)]));
    }

    auto& dog = ss.dogs[static_cast<std::size_t>(o)];
    dog.reserve(static_cast<std::size_t>(levels - 1));
    for (int i = 0; i + 1 < levels; ++i) {
      const ImageF& a = gauss[static_cast<std::size_t>(i)];
      const ImageF& b = gauss[static_cast<std::size_t>(i + 1)];
      ImageF d(a.width(), a.height(), 1);
      for (int y = 0; y < a.height(); ++y) {
        for (int x = 0; x < a.width(); ++x) {
          d.at(y, x) = b.at(y, x) - a.at(y, x);
        }
      }
      dog.push_back(std::move(d));
    }
  }
  return ss;
}

// 3-D quadratic refinement; returns false when the candidate is rejected.
bool RefineExtremum(const std::vector<ImageF>& dog, int n_scales,
                    double contrast_threshold, double edge_threshold, int& x,
                    int& y, int& layer, double& off_x, double& off_y,
                    double& off_s, double& contrast) {
  constexpr int kMaxIter = 5;
  for (int iter = 0; iter < kMaxIter; ++iter) {
    const ImageF& cur = dog[static_cast<std::size_t>(layer)];
    const ImageF& prev = dog[static_cast<std::size_t>(layer - 1)];
    const ImageF& next = dog[static_cast<std::size_t>(layer + 1)];

    const double dx = (cur.at(y, x + 1) - cur.at(y, x - 1)) * 0.5;
    const double dy = (cur.at(y + 1, x) - cur.at(y - 1, x)) * 0.5;
    const double ds = (next.at(y, x) - prev.at(y, x)) * 0.5;

    const double v2 = cur.at(y, x) * 2.0;
    const double dxx = cur.at(y, x + 1) + cur.at(y, x - 1) - v2;
    const double dyy = cur.at(y + 1, x) + cur.at(y - 1, x) - v2;
    const double dss = next.at(y, x) + prev.at(y, x) - v2;
    const double dxy = (cur.at(y + 1, x + 1) - cur.at(y + 1, x - 1) -
                        cur.at(y - 1, x + 1) + cur.at(y - 1, x - 1)) *
                       0.25;
    const double dxs = (next.at(y, x + 1) - next.at(y, x - 1) -
                        prev.at(y, x + 1) + prev.at(y, x - 1)) *
                       0.25;
    const double dys = (next.at(y + 1, x) - next.at(y - 1, x) -
                        prev.at(y + 1, x) + prev.at(y - 1, x)) *
                       0.25;

    // Solve H * offset = -g (3x3 via Cramer's rule).
    const double det = dxx * (dyy * dss - dys * dys) -
                       dxy * (dxy * dss - dys * dxs) +
                       dxs * (dxy * dys - dyy * dxs);
    if (std::abs(det) < 1e-30) return false;
    const double inv = 1.0 / det;
    off_x = -inv * (dx * (dyy * dss - dys * dys) -
                    dxy * (dy * dss - dys * ds) +
                    dxs * (dy * dys - dyy * ds));
    off_y = -inv * (dxx * (dy * dss - dys * ds) -
                    dx * (dxy * dss - dys * dxs) +
                    dxs * (dxy * ds - dy * dxs));
    off_s = -inv * (dxx * (dyy * ds - dy * dys) -
                    dxy * (dxy * ds - dy * dxs) +
                    dx * (dxy * dys - dyy * dxs));

    if (std::abs(off_x) < 0.5 && std::abs(off_y) < 0.5 &&
        std::abs(off_s) < 0.5) {
      contrast = cur.at(y, x) +
                 0.5 * (dx * off_x + dy * off_y + ds * off_s);
      // Contrast rejection (OpenCV convention).
      if (std::abs(contrast) * n_scales < contrast_threshold) return false;
      // Edge rejection on the 2x2 spatial Hessian.
      const double tr = dxx + dyy;
      const double det2 = dxx * dyy - dxy * dxy;
      const double r = edge_threshold;
      if (det2 <= 0 || tr * tr * r >= (r + 1) * (r + 1) * det2) return false;
      return true;
    }

    x += static_cast<int>(std::lround(off_x));
    y += static_cast<int>(std::lround(off_y));
    layer += static_cast<int>(std::lround(off_s));
    const int border = 5;
    if (layer < 1 || layer > n_scales ||
        x < border || x >= cur.width() - border || y < border ||
        y >= cur.height() - border) {
      return false;
    }
  }
  return false;
}

// Gradient orientation histogram around (x, y) on a Gaussian image;
// returns the histogram max.
double OrientationHistogram(const ImageF& img, int x, int y, double sigma,
                            int radius, double* hist) {
  for (int i = 0; i < kOriHistBins; ++i) hist[i] = 0.0;
  const double weight_factor = -1.0 / (2.0 * sigma * sigma);
  double raw[kOriHistBins + 4] = {};
  double* raw_hist = raw + 2;

  for (int dy = -radius; dy <= radius; ++dy) {
    const int py = y + dy;
    if (py <= 0 || py >= img.height() - 1) continue;
    for (int dx = -radius; dx <= radius; ++dx) {
      const int px = x + dx;
      if (px <= 0 || px >= img.width() - 1) continue;
      const double gx = img.at(py, px + 1) - img.at(py, px - 1);
      const double gy = img.at(py + 1, px) - img.at(py - 1, px);
      const double mag = std::sqrt(gx * gx + gy * gy);
      double ori = std::atan2(gy, gx);  // [-pi, pi]
      if (ori < 0) ori += 2 * kPi;
      const double w = std::exp((dx * dx + dy * dy) * weight_factor);
      int bin = static_cast<int>(std::lround(kOriHistBins * ori / (2 * kPi)));
      if (bin >= kOriHistBins) bin -= kOriHistBins;
      raw_hist[bin] += w * mag;
    }
  }

  // Circular smoothing (as in OpenCV).
  raw_hist[-2] = raw_hist[kOriHistBins - 2];
  raw_hist[-1] = raw_hist[kOriHistBins - 1];
  raw_hist[kOriHistBins] = raw_hist[0];
  raw_hist[kOriHistBins + 1] = raw_hist[1];
  double max_val = 0.0;
  for (int i = 0; i < kOriHistBins; ++i) {
    hist[i] = (raw_hist[i - 2] + raw_hist[i + 2]) * (1.0 / 16) +
              (raw_hist[i - 1] + raw_hist[i + 1]) * (4.0 / 16) +
              raw_hist[i] * (6.0 / 16);
    max_val = std::max(max_val, hist[i]);
  }
  return max_val;
}

// Computes the 128-dim descriptor for a keypoint on its Gaussian image.
FloatDescriptor ComputeDescriptor(const ImageF& img, double x, double y,
                                  double angle_deg, double scale) {
  const double angle = angle_deg * kPi / 180.0;
  const double cos_t = std::cos(angle);
  const double sin_t = std::sin(angle);
  const double bins_per_rad = kDescOriBins / (2 * kPi);
  const double hist_width = kDescSclFactor * scale;
  const double exp_scale =
      -1.0 / (kDescWidth * kDescWidth * 0.5);
  int radius = static_cast<int>(std::lround(
      hist_width * std::sqrt(2.0) * (kDescWidth + 1) * 0.5));
  radius = std::min(radius,
                    static_cast<int>(std::sqrt(
                        static_cast<double>(img.width()) * img.width() +
                        static_cast<double>(img.height()) * img.height())));

  // (d+2) x (d+2) x (n+2) accumulation grid for trilinear interpolation.
  const int d = kDescWidth;
  const int n = kDescOriBins;
  std::vector<double> grid(static_cast<std::size_t>((d + 2) * (d + 2) *
                                                    (n + 2)),
                           0.0);
  auto grid_at = [&](int r, int c, int o) -> double& {
    return grid[(static_cast<std::size_t>(r) * (d + 2) + c) * (n + 2) + o];
  };

  const int cx = static_cast<int>(std::lround(x));
  const int cy = static_cast<int>(std::lround(y));
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      // Rotate offsets into the keypoint frame.
      const double rx = (cos_t * dx + sin_t * dy) / hist_width;
      const double ry = (-sin_t * dx + cos_t * dy) / hist_width;
      const double rbin = ry + d / 2.0 - 0.5;
      const double cbin = rx + d / 2.0 - 0.5;
      if (rbin <= -1 || rbin >= d || cbin <= -1 || cbin >= d) continue;
      const int px = cx + dx;
      const int py = cy + dy;
      if (px <= 0 || px >= img.width() - 1 || py <= 0 ||
          py >= img.height() - 1) {
        continue;
      }
      const double gx = img.at(py, px + 1) - img.at(py, px - 1);
      const double gy = img.at(py + 1, px) - img.at(py - 1, px);
      double ori = std::atan2(gy, gx);
      if (ori < 0) ori += 2 * kPi;
      const double mag = std::sqrt(gx * gx + gy * gy);
      const double w = std::exp((rx * rx + ry * ry) * exp_scale);

      double obin = (ori - angle) * bins_per_rad;
      while (obin < 0) obin += n;
      while (obin >= n) obin -= n;

      const int r0 = static_cast<int>(std::floor(rbin));
      const int c0 = static_cast<int>(std::floor(cbin));
      const int o0 = static_cast<int>(std::floor(obin));
      const double fr = rbin - r0;
      const double fc = cbin - c0;
      const double fo = obin - o0;
      const double v = w * mag;

      // Trilinear distribution over the 8 surrounding grid cells.
      for (int ir = 0; ir <= 1; ++ir) {
        const int rr = r0 + ir + 1;
        if (rr < 0 || rr >= d + 2) continue;
        const double vr = v * (ir == 0 ? 1 - fr : fr);
        for (int ic = 0; ic <= 1; ++ic) {
          const int cc = c0 + ic + 1;
          if (cc < 0 || cc >= d + 2) continue;
          const double vc = vr * (ic == 0 ? 1 - fc : fc);
          for (int io = 0; io <= 1; ++io) {
            const int oo = (o0 + io) % n;
            grid_at(rr, cc, oo) += vc * (io == 0 ? 1 - fo : fo);
          }
        }
      }
    }
  }

  // Collect interior cells into the final 128-dim vector.
  FloatDescriptor desc;
  desc.reserve(static_cast<std::size_t>(d * d * n));
  for (int r = 1; r <= d; ++r) {
    for (int c = 1; c <= d; ++c) {
      for (int o = 0; o < n; ++o) {
        desc.push_back(static_cast<float>(grid_at(r, c, o)));
      }
    }
  }

  // Normalize, clip, renormalize.
  auto l2 = [&] {
    double acc = 0;
    for (float v : desc) acc += static_cast<double>(v) * v;
    return std::sqrt(acc);
  };
  double norm = l2();
  if (norm < 1e-12) return desc;
  const float clip = static_cast<float>(kDescMagThreshold * norm);
  for (float& v : desc) v = std::min(v, clip);
  norm = l2();
  if (norm < 1e-12) return desc;
  for (float& v : desc) v = static_cast<float>(v / norm);
  return desc;
}

}  // namespace

FloatFeatures ExtractSift(const ImageU8& image, const SiftOptions& options) {
  SNOR_TRACE_SPAN("features.sift.extract");
  static obs::Histogram& latency_us =
      obs::MetricsRegistry::Global().histogram("features.sift.latency_us");
  const obs::ScopedLatencyUs latency(latency_us);
  SNOR_CHECK_GE(options.n_scales, 2);
  const ImageU8 gray_u8 = image.channels() == 3 ? RgbToGray(image) : image;
  ImageF base(gray_u8.width(), gray_u8.height(), 1);
  for (int y = 0; y < base.height(); ++y) {
    for (int x = 0; x < base.width(); ++x) {
      base.at(y, x) = gray_u8.at(y, x) / 255.0f;
    }
  }

  const int min_dim = std::min(base.width(), base.height());
  if (min_dim < 16) return {};
  const int n_octaves = std::max(
      1, static_cast<int>(std::log2(static_cast<double>(min_dim) / 8.0)));

  const ScaleSpace ss =
      BuildScaleSpace(base, n_octaves, options.n_scales, options.sigma);

  struct Raw {
    Keypoint kp;
    int octave;
    int layer;
    double scale_octave;  // Scale relative to the octave.
    double x_oct, y_oct;  // Coordinates on the octave grid.
  };
  std::vector<Raw> raws;

  const double prelim_threshold =
      0.5 * options.contrast_threshold / options.n_scales;
  const int border = 5;

  for (int o = 0; o < n_octaves; ++o) {
    const auto& dog = ss.dogs[static_cast<std::size_t>(o)];
    const int w = dog[0].width();
    const int h = dog[0].height();
    for (int layer = 1; layer <= options.n_scales; ++layer) {
      const ImageF& cur = dog[static_cast<std::size_t>(layer)];
      const ImageF& prev = dog[static_cast<std::size_t>(layer - 1)];
      const ImageF& next = dog[static_cast<std::size_t>(layer + 1)];
      for (int y = border; y < h - border; ++y) {
        for (int x = border; x < w - border; ++x) {
          const float v = cur.at(y, x);
          if (std::abs(v) <= prelim_threshold) continue;

          // 26-neighbour extremum test.
          bool is_max = true;
          bool is_min = true;
          for (int dy = -1; dy <= 1 && (is_max || is_min); ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              for (const ImageF* im : {&prev, &cur, &next}) {
                if (im == &cur && dx == 0 && dy == 0) continue;
                const float nv = im->at(y + dy, x + dx);
                if (nv >= v) is_max = false;
                if (nv <= v) is_min = false;
              }
            }
          }
          if (!is_max && !is_min) continue;

          int rx = x;
          int ry = y;
          int rlayer = layer;
          double off_x = 0, off_y = 0, off_s = 0, contrast = 0;
          if (!RefineExtremum(dog, options.n_scales,
                              options.contrast_threshold,
                              options.edge_threshold, rx, ry, rlayer, off_x,
                              off_y, off_s, contrast)) {
            continue;
          }

          Raw raw;
          raw.octave = o;
          raw.layer = rlayer;
          raw.x_oct = rx + off_x;
          raw.y_oct = ry + off_y;
          raw.scale_octave =
              options.sigma *
              std::pow(2.0, (rlayer + off_s) / options.n_scales);
          raw.kp.x = static_cast<float>(raw.x_oct * (1 << o));
          raw.kp.y = static_cast<float>(raw.y_oct * (1 << o));
          raw.kp.response = static_cast<float>(std::abs(contrast));
          raw.kp.size = static_cast<float>(raw.scale_octave * (1 << o) * 2);
          raw.kp.octave = o;
          raws.push_back(std::move(raw));
        }
      }
    }
  }

  // Orientation assignment (may split keypoints) + descriptors.
  FloatFeatures out;
  for (const Raw& raw : raws) {
    const ImageF& gauss =
        ss.gaussians[static_cast<std::size_t>(raw.octave)]
                    [static_cast<std::size_t>(raw.layer)];
    const double sigma_ori = kOriSigmaFactor * raw.scale_octave;
    const int radius =
        static_cast<int>(std::lround(kOriRadiusFactor * raw.scale_octave));
    double hist[kOriHistBins];
    const double max_val = OrientationHistogram(
        gauss, static_cast<int>(std::lround(raw.x_oct)),
        static_cast<int>(std::lround(raw.y_oct)), sigma_ori, radius, hist);
    if (max_val <= 0) continue;

    const double threshold = kOriPeakRatio * max_val;
    for (int bin = 0; bin < kOriHistBins; ++bin) {
      const int left = (bin + kOriHistBins - 1) % kOriHistBins;
      const int right = (bin + 1) % kOriHistBins;
      if (hist[bin] < threshold || hist[bin] <= hist[left] ||
          hist[bin] <= hist[right]) {
        continue;
      }
      // Parabolic peak interpolation.
      double interp =
          bin + 0.5 * (hist[left] - hist[right]) /
                    (hist[left] - 2 * hist[bin] + hist[right]);
      if (interp < 0) interp += kOriHistBins;
      if (interp >= kOriHistBins) interp -= kOriHistBins;
      const double angle = 360.0 * interp / kOriHistBins;

      Keypoint kp = raw.kp;
      kp.angle = static_cast<float>(angle);
      FloatDescriptor desc = ComputeDescriptor(
          gauss, raw.x_oct, raw.y_oct, angle, raw.scale_octave);
      out.keypoints.push_back(kp);
      out.descriptors.push_back(std::move(desc));
    }
  }

  if (options.max_features > 0 &&
      static_cast<int>(out.keypoints.size()) > options.max_features) {
    // Keep the strongest responses.
    std::vector<std::size_t> order(out.keypoints.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return out.keypoints[a].response > out.keypoints[b].response;
    });
    FloatFeatures trimmed;
    for (int i = 0; i < options.max_features; ++i) {
      trimmed.keypoints.push_back(out.keypoints[order[static_cast<std::size_t>(i)]]);
      trimmed.descriptors.push_back(
          out.descriptors[order[static_cast<std::size_t>(i)]]);
    }
    out = std::move(trimmed);
  }
  static obs::Counter& keypoints_counter =
      obs::MetricsRegistry::Global().counter("features.sift.keypoints");
  keypoints_counter.Increment(out.keypoints.size());
  return out;
}

}  // namespace snor
