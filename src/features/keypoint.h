#ifndef SNOR_FEATURES_KEYPOINT_H_
#define SNOR_FEATURES_KEYPOINT_H_

#include <array>
#include <cstdint>
#include <vector>

namespace snor {

/// \brief A detected interest point in base-image coordinates.
struct Keypoint {
  float x = 0.0f;
  float y = 0.0f;
  /// Detector response (higher = stronger).
  float response = 0.0f;
  /// Dominant orientation in degrees, [0, 360); -1 when not assigned.
  float angle = -1.0f;
  /// Characteristic scale (diameter in base-image pixels).
  float size = 7.0f;
  /// Pyramid level / octave the point was detected on.
  int octave = 0;
};

/// 256-bit binary descriptor (ORB/BRIEF), packed to 32 bytes.
using BinaryDescriptor = std::array<std::uint8_t, 32>;

/// Variable-length float descriptor (SIFT: 128 dims, SURF: 64 dims).
using FloatDescriptor = std::vector<float>;

/// Detected keypoints plus their binary descriptors (parallel arrays).
struct BinaryFeatures {
  std::vector<Keypoint> keypoints;
  std::vector<BinaryDescriptor> descriptors;
};

/// Detected keypoints plus their float descriptors (parallel arrays).
struct FloatFeatures {
  std::vector<Keypoint> keypoints;
  std::vector<FloatDescriptor> descriptors;
};

}  // namespace snor

#endif  // SNOR_FEATURES_KEYPOINT_H_
