#include "features/kdtree.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace snor {

namespace {
constexpr int kLeafSize = 8;
}  // namespace

struct KdTreeMatcher::Node {
  // Interior node fields.
  int split_dim = -1;
  float split_value = 0.0f;
  int left = -1;
  int right = -1;
  // Leaf: indices into train_ (empty for interior nodes).
  std::vector<int> points;
};

KdTreeMatcher::KdTreeMatcher(std::vector<FloatDescriptor> train,
                             int max_leaf_checks)
    : train_(std::move(train)), max_leaf_checks_(max_leaf_checks) {
  SNOR_CHECK_GT(max_leaf_checks_, 0);
  if (train_.empty()) return;
  std::vector<int> indices(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i) {
    indices[i] = static_cast<int>(i);
  }
  root_ = BuildNode(indices, 0, static_cast<int>(indices.size()));
}

KdTreeMatcher::~KdTreeMatcher() = default;
KdTreeMatcher::KdTreeMatcher(KdTreeMatcher&&) noexcept = default;
KdTreeMatcher& KdTreeMatcher::operator=(KdTreeMatcher&&) noexcept = default;

int KdTreeMatcher::BuildNode(std::vector<int>& indices, int begin, int end) {
  Node node;
  if (end - begin <= kLeafSize) {
    node.points.assign(indices.begin() + begin, indices.begin() + end);
    nodes_.push_back(std::move(node));
    return static_cast<int>(nodes_.size()) - 1;
  }

  // Split on the dimension with the largest variance over this subset.
  const std::size_t dim = train_[static_cast<std::size_t>(indices[
      static_cast<std::size_t>(begin)])].size();
  int best_dim = 0;
  double best_var = -1.0;
  for (std::size_t d = 0; d < dim; ++d) {
    double mean = 0.0;
    for (int i = begin; i < end; ++i) {
      mean += train_[static_cast<std::size_t>(
          indices[static_cast<std::size_t>(i)])][d];
    }
    mean /= (end - begin);
    double var = 0.0;
    for (int i = begin; i < end; ++i) {
      const double diff =
          train_[static_cast<std::size_t>(
              indices[static_cast<std::size_t>(i)])][d] -
          mean;
      var += diff * diff;
    }
    if (var > best_var) {
      best_var = var;
      best_dim = static_cast<int>(d);
    }
  }
  if (best_var <= 0.0) {
    // All points identical along every axis: make a leaf.
    node.points.assign(indices.begin() + begin, indices.begin() + end);
    nodes_.push_back(std::move(node));
    return static_cast<int>(nodes_.size()) - 1;
  }

  const int mid = (begin + end) / 2;
  std::nth_element(indices.begin() + begin, indices.begin() + mid,
                   indices.begin() + end, [&](int a, int b) {
                     return train_[static_cast<std::size_t>(a)]
                                  [static_cast<std::size_t>(best_dim)] <
                            train_[static_cast<std::size_t>(b)]
                                  [static_cast<std::size_t>(best_dim)];
                   });
  node.split_dim = best_dim;
  node.split_value = train_[static_cast<std::size_t>(
      indices[static_cast<std::size_t>(mid)])][static_cast<std::size_t>(
      best_dim)];

  const int self = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  const int left = BuildNode(indices, begin, mid);
  const int right = BuildNode(indices, mid, end);
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

namespace {

// Max-heap ordered by distance so the worst of the current k is on top.
bool HeapCmp(const DMatch& a, const DMatch& b) {
  return a.distance < b.distance;
}

}  // namespace

void KdTreeMatcher::Search(int node_idx, const FloatDescriptor& q, int k,
                           std::vector<DMatch>& heap, int& checks) const {
  // The leaf-check budget is only honored once the result heap already
  // holds k candidates. Cutting off earlier truncated result lists below
  // min(k, train size) under small budgets, which diverged from
  // BruteForceMatcher: a truncated 1-element list passes RatioTestFilter
  // unconditionally where the brute-force 2-element list may be dropped
  // as ambiguous.
  const bool budget_spent =
      checks >= max_leaf_checks_ && static_cast<int>(heap.size()) >= k;
  if (node_idx < 0 || budget_spent) return;
  const Node& node = nodes_[static_cast<std::size_t>(node_idx)];

  if (node.split_dim < 0) {  // Leaf.
    for (int idx : node.points) {
      if (checks >= max_leaf_checks_ && static_cast<int>(heap.size()) >= k) {
        return;
      }
      ++checks;
      const float d =
          FloatDistance(q, train_[static_cast<std::size_t>(idx)],
                        FloatNorm::kL2);
      if (static_cast<int>(heap.size()) < k) {
        heap.push_back(DMatch{-1, idx, d});
        std::push_heap(heap.begin(), heap.end(), HeapCmp);
      } else if (d < heap.front().distance) {
        std::pop_heap(heap.begin(), heap.end(), HeapCmp);
        heap.back() = DMatch{-1, idx, d};
        std::push_heap(heap.begin(), heap.end(), HeapCmp);
      }
    }
    return;
  }

  const float qv = q[static_cast<std::size_t>(node.split_dim)];
  const int near = qv <= node.split_value ? node.left : node.right;
  const int far = qv <= node.split_value ? node.right : node.left;
  Search(near, q, k, heap, checks);
  // Visit the far side only if the splitting plane could hide a closer
  // point (or we still need more neighbours).
  const float plane_dist = std::abs(qv - node.split_value);
  if (static_cast<int>(heap.size()) < k ||
      plane_dist < heap.front().distance) {
    Search(far, q, k, heap, checks);
  }
}

std::vector<std::vector<DMatch>> KdTreeMatcher::KnnMatch(
    const std::vector<FloatDescriptor>& query, int k) const {
  SNOR_CHECK_GE(k, 1);
  std::vector<std::vector<DMatch>> all(query.size());
  if (train_.empty()) return all;
  for (std::size_t qi = 0; qi < query.size(); ++qi) {
    std::vector<DMatch> heap;
    int checks = 0;
    Search(root_, query[qi], k, heap, checks);
    std::sort(heap.begin(), heap.end(), HeapCmp);
    for (auto& m : heap) m.query_idx = static_cast<int>(qi);
    all[qi] = std::move(heap);
  }
  return all;
}

}  // namespace snor
