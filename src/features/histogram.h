#ifndef SNOR_FEATURES_HISTOGRAM_H_
#define SNOR_FEATURES_HISTOGRAM_H_

#include <vector>

#include "img/image.h"

namespace snor {

/// \brief Histogram comparison metrics with OpenCV `compareHist` semantics.
///
/// Correlation and Intersection are similarities (higher = more similar);
/// Chi-square and Hellinger (Bhattacharyya) are distances (lower = more
/// similar).
enum class HistCompareMethod {
  kCorrelation,
  kChiSquare,
  kIntersection,
  kHellinger,
};

/// True when larger values of the metric mean more similar histograms.
bool IsSimilarityMetric(HistCompareMethod method);

/// \brief Joint 3-D RGB colour histogram with `bins_per_channel`^3 bins.
///
/// This is the colour representation used by the paper's colour-only and
/// hybrid pipelines (§3.2).
class ColorHistogram {
 public:
  /// Creates an empty (all-zero) histogram.
  explicit ColorHistogram(int bins_per_channel = 8);

  /// Computes the histogram of a 3-channel RGB image. Pixels where `mask`
  /// is zero are skipped; pass nullptr for no mask. The result is not
  /// normalized.
  static ColorHistogram Compute(const ImageU8& rgb,
                                const ImageU8* mask = nullptr,
                                int bins_per_channel = 8);

  int bins_per_channel() const { return bins_per_channel_; }
  std::size_t num_bins() const { return bins_.size(); }

  /// Total mass (sum of all bins).
  double TotalMass() const;

  /// Scales bins so they sum to 1; a zero histogram stays zero.
  void NormalizeL1();

  /// Direct bin access (r, g, b bin indices).
  double& At(int r_bin, int g_bin, int b_bin);
  double At(int r_bin, int g_bin, int b_bin) const;

  const std::vector<double>& bins() const { return bins_; }
  std::vector<double>& bins() { return bins_; }

 private:
  int bins_per_channel_;
  std::vector<double> bins_;
};

/// Compares two histograms (must have equal bin counts) with the given
/// method, using the exact OpenCV formulas:
///  - Correlation: Pearson correlation over bins.
///  - Chi-square: sum (a-b)^2 / a over bins with a > 0.
///  - Intersection: sum min(a, b).
///  - Hellinger: sqrt(max(0, 1 - sum sqrt(a*b) / sqrt(mean_a*mean_b*N^2)));
///    an all-zero operand (fully masked-out crop) yields the worst-case
///    distance 1 instead of a 0/0 perfect match.
double CompareHistograms(const ColorHistogram& a, const ColorHistogram& b,
                         HistCompareMethod method);

/// Raw-pointer core of CompareHistograms, operating on two bin arrays of
/// length `n`. Both the cold classifiers (via CompareHistograms) and the
/// SoA feature-bank batch kernels call this single implementation, which is
/// what makes the warm/batched paths bit-identical to the cold ones by
/// construction.
///
/// Flat-histogram semantics for Correlation (zero variance on a side):
///  - both flat -> 1.0 (identical up to offset, perfectly correlated);
///  - exactly one flat -> -1.0, the worst case for a similarity metric, so
///    a flat (e.g. fully masked-out) operand can never win an argmax
///    against real histograms.
double CompareHistogramsRaw(const double* a, const double* b, std::size_t n,
                            HistCompareMethod method);

}  // namespace snor

#endif  // SNOR_FEATURES_HISTOGRAM_H_
