#ifndef SNOR_FEATURES_MATCHER_H_
#define SNOR_FEATURES_MATCHER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "features/keypoint.h"

namespace snor {

/// \brief A correspondence between a query descriptor and a train
/// descriptor, mirroring `cv::DMatch`.
struct DMatch {
  int query_idx = -1;
  int train_idx = -1;
  float distance = 0.0f;
};

/// Distance used for float descriptors.
enum class FloatNorm { kL1, kL2 };

/// Number of set bits in a XOR of two 256-bit descriptors.
int HammingDistance(const BinaryDescriptor& a, const BinaryDescriptor& b);

/// Hamming distance over `n_words` pre-packed 64-bit words. The binary
/// descriptor banks store descriptors as aligned u64 words so this popcount
/// loop autovectorizes; integer arithmetic makes it trivially bit-identical
/// to HammingDistance on the byte form.
int HammingDistanceWords(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n_words);

/// L1 / L2 distance between equal-length float descriptors.
float FloatDistance(const FloatDescriptor& a, const FloatDescriptor& b,
                    FloatNorm norm);

/// Raw-pointer core of FloatDistance over two arrays of length `n`; the
/// float descriptor banks call this on contiguous rows. Shares one
/// implementation with FloatDistance so batched results are bit-identical.
float FloatDistanceRaw(const float* a, const float* b, std::size_t n,
                       FloatNorm norm);

/// Brute-force best match per query descriptor (empty train set yields an
/// empty result).
std::vector<DMatch> MatchBruteForce(
    const std::vector<FloatDescriptor>& query,
    const std::vector<FloatDescriptor>& train,
    FloatNorm norm = FloatNorm::kL2);
std::vector<DMatch> MatchBruteForce(
    const std::vector<BinaryDescriptor>& query,
    const std::vector<BinaryDescriptor>& train);

/// Brute-force k-nearest-neighbour matching; inner vectors are sorted by
/// ascending distance and contain min(k, train size) entries.
std::vector<std::vector<DMatch>> KnnMatchBruteForce(
    const std::vector<FloatDescriptor>& query,
    const std::vector<FloatDescriptor>& train, int k,
    FloatNorm norm = FloatNorm::kL2);
std::vector<std::vector<DMatch>> KnnMatchBruteForce(
    const std::vector<BinaryDescriptor>& query,
    const std::vector<BinaryDescriptor>& train, int k);

/// Lowe's ratio test: keeps the best match of each kNN list when
/// best.distance < ratio * second_best.distance. A single-neighbour list
/// has no second-best to disambiguate against and is kept (a query whose
/// sole neighbour is an excellent match must not vanish); empty lists are
/// skipped. Ambiguous rejections are counted by the
/// `features.matcher.dropped` metric. Thresholds 0.75 and 0.5 in the
/// paper.
std::vector<DMatch> RatioTestFilter(
    const std::vector<std::vector<DMatch>>& knn_matches, float ratio);

/// Symmetric cross-check filter: keeps query->train matches whose train
/// descriptor's best match points back at the query.
std::vector<DMatch> CrossCheckFilter(const std::vector<DMatch>& forward,
                                     const std::vector<DMatch>& backward);

}  // namespace snor

#endif  // SNOR_FEATURES_MATCHER_H_
