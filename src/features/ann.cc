#include "features/ann.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace snor {

AnnIndex AnnIndex::Build(std::vector<FloatDescriptor> points,
                         std::vector<int> ids, int expected_candidates,
                         const AnnOptions& options) {
  SNOR_TRACE_SPAN("features.ann.build");
  SNOR_CHECK_EQ(points.size(), ids.size());
  int leaf_checks = options.max_leaf_checks;
  if (leaf_checks <= 0) {
    // Default to exact embedding-space search: the tree then only prunes
    // what the triangle inequality proves safe. Kept at least at the
    // requested candidate count so degenerate budgets cannot starve R.
    leaf_checks = std::max(static_cast<int>(points.size()),
                           std::max(expected_candidates, 1));
  }
  static obs::Gauge& points_gauge =
      obs::MetricsRegistry::Global().gauge("features.ann.points");
  points_gauge.Set(static_cast<double>(points.size()));
  return AnnIndex(std::move(points), std::move(ids), leaf_checks);
}

AnnIndex::AnnIndex(std::vector<FloatDescriptor> points, std::vector<int> ids,
                   int max_leaf_checks)
    : ids_(std::move(ids)), tree_(std::move(points), max_leaf_checks) {}

std::vector<int> AnnIndex::Query(const FloatDescriptor& q, int r) const {
  SNOR_TRACE_SPAN("features.ann.query");
  static obs::Counter& candidates_counter =
      obs::MetricsRegistry::Global().counter("features.ann.candidates");
  if (ids_.empty() || r <= 0) return {};
  const auto knn = tree_.KnnMatch({q}, r);
  std::vector<int> out;
  out.reserve(knn.front().size());
  for (const DMatch& m : knn.front()) {
    out.push_back(ids_[static_cast<std::size_t>(m.train_idx)]);
  }
  std::sort(out.begin(), out.end());
  candidates_counter.Increment(out.size());
  return out;
}

}  // namespace snor
