#ifndef SNOR_FEATURES_HOG_H_
#define SNOR_FEATURES_HOG_H_

#include <vector>

#include "img/image.h"

namespace snor {

/// \brief Histogram-of-oriented-gradients options (Dalal & Triggs).
struct HogOptions {
  /// The input is resized to this square before gradient computation.
  int window = 64;
  /// Cell side in pixels.
  int cell = 8;
  /// Orientation bins over [0, 180) (unsigned gradients).
  int bins = 9;
  /// Block side in cells for contrast normalization.
  int block = 2;
};

/// Computes the HOG descriptor of an image (gray or RGB): gradient
/// orientation histograms per cell with bilinear orientation binning,
/// L2-hys block normalization over sliding blocks. A dense global shape
/// representation ablated against Hu moments and Fourier descriptors in
/// `bench/ablation_representations`.
std::vector<float> ComputeHog(const ImageU8& image,
                              const HogOptions& options = {});

/// Expected descriptor length for the given options.
std::size_t HogDescriptorLength(const HogOptions& options);

}  // namespace snor

#endif  // SNOR_FEATURES_HOG_H_
