#ifndef SNOR_FEATURES_SURF_H_
#define SNOR_FEATURES_SURF_H_

#include "features/keypoint.h"
#include "img/image.h"

namespace snor {

/// \brief SURF extraction parameters.
struct SurfOptions {
  /// Minimum determinant-of-Hessian response (the paper uses 400 with
  /// OpenCV's normalization; ours matches the classic OpenSURF scaling).
  double hessian_threshold = 400.0;
  /// Number of octaves of box-filter sizes.
  int n_octaves = 3;
  /// Filter-size intervals per octave.
  int n_intervals = 4;
  /// Maximum keypoints kept (strongest first); 0 = unlimited.
  int max_features = 0;
};

/// Extracts SURF features (Bay et al.): integral-image box-filter
/// approximation of the Hessian determinant (weight 0.9 on Dxy), 3x3x3
/// non-maximum suppression across scales, Haar-wavelet dominant
/// orientation, and the 64-dim (sum dx, sum dy, sum |dx|, sum |dy|) x 4x4
/// descriptor. Input may be RGB or grayscale.
FloatFeatures ExtractSurf(const ImageU8& image,
                          const SurfOptions& options = {});

}  // namespace snor

#endif  // SNOR_FEATURES_SURF_H_
