#ifndef SNOR_FEATURES_BRIEF_H_
#define SNOR_FEATURES_BRIEF_H_

#include <array>
#include <vector>

#include "features/keypoint.h"
#include "img/image.h"

namespace snor {

/// \brief One BRIEF intensity-comparison pair (offsets from the keypoint).
struct BriefPair {
  float x1 = 0.0f;
  float y1 = 0.0f;
  float x2 = 0.0f;
  float y2 = 0.0f;
};

/// The 256-pair sampling pattern shared by BRIEF and ORB. Offsets are
/// drawn from an isotropic Gaussian (sigma = patch/5) clipped to a disc so
/// that any rotation stays inside the 31x31 patch. Deterministic: the same
/// pattern is produced on every call (seeded internally), standing in for
/// OpenCV's learned ORB pattern.
const std::array<BriefPair, 256>& BriefPattern();

/// Computes the (unsteered) 256-bit BRIEF descriptor at a keypoint over a
/// pre-smoothed image. `smoothed` must be single-channel.
BinaryDescriptor ComputeBriefDescriptor(const ImageU8& smoothed,
                                        const Keypoint& kp);

/// Computes the steered (rotation-compensated) BRIEF descriptor used by
/// ORB: the sampling pattern is rotated by `kp.angle` degrees first.
BinaryDescriptor ComputeSteeredBriefDescriptor(const ImageU8& smoothed,
                                               const Keypoint& kp);

/// Intensity-centroid orientation (degrees in [0, 360)) of the patch of
/// the given radius centred on (x, y), as used by ORB.
float IntensityCentroidAngle(const ImageU8& gray, int x, int y,
                             int radius = 15);

}  // namespace snor

#endif  // SNOR_FEATURES_BRIEF_H_
