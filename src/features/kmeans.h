#ifndef SNOR_FEATURES_KMEANS_H_
#define SNOR_FEATURES_KMEANS_H_

#include <cstdint>
#include <vector>

#include "features/keypoint.h"

namespace snor {

/// \brief k-means clustering options.
struct KMeansOptions {
  int k = 64;
  int max_iterations = 25;
  /// Stop when no assignment changes between iterations.
  std::uint64_t seed = 1337;
};

/// \brief Result of a k-means run over float descriptors.
struct KMeansResult {
  /// Cluster centres, `k` rows (fewer when there were fewer points).
  std::vector<FloatDescriptor> centroids;
  /// Index of the assigned centroid per input point.
  std::vector<int> assignments;
  /// Final total within-cluster squared distance.
  double inertia = 0.0;
  int iterations = 0;
};

/// Lloyd's k-means with k-means++ seeding over L2 distance. Deterministic
/// in `options.seed`. Empty clusters are re-seeded from the farthest point.
KMeansResult KMeansCluster(const std::vector<FloatDescriptor>& points,
                           const KMeansOptions& options);

/// Index of the nearest centroid (L2) for a query point; -1 when the
/// vocabulary is empty.
int NearestCentroid(const std::vector<FloatDescriptor>& centroids,
                    const FloatDescriptor& point);

}  // namespace snor

#endif  // SNOR_FEATURES_KMEANS_H_
