#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "obs/json.h"

namespace snor::obs {
namespace {

std::int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread span nesting depth (outermost span = depth 0).
thread_local std::int32_t tls_depth = 0;

void CopyName(const char* name, char (&dest)[kTraceMaxNameLength + 1]) {
  std::size_t n = 0;
  if (name != nullptr) {
    n = std::strlen(name);
    if (n > kTraceMaxNameLength) n = kTraceMaxNameLength;
    std::memcpy(dest, name, n);
  }
  dest[n] = '\0';
}

}  // namespace

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

int CurrentThreadId() {
  static std::atomic<int> next_id{1};
  thread_local const int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// \brief One thread's event ring. Single writer (the owning thread);
/// the mutex only contends with an exporting/resetting reader.
struct TraceRecorder::ThreadBuffer {
  ThreadBuffer(int tid_in, std::size_t capacity_in)
      : tid(tid_in), capacity(capacity_in == 0 ? 1 : capacity_in) {}

  mutable std::mutex mutex;  // LOCK_RANK(30): nests inside registry_mutex_.
  const int tid;
  const std::size_t capacity;
  std::vector<TraceEvent> ring;  // Grows lazily up to `capacity`.
  std::size_t head = 0;          // Oldest slot once the ring is full.
  std::uint64_t overwritten = 0;

  void Push(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mutex);
    if (ring.size() < capacity) {
      ring.push_back(event);
    } else {
      ring[head] = event;
      head = (head + 1) % capacity;
      ++overwritten;
    }
  }

  void AppendInOrder(std::vector<TraceEvent>* out) const {
    std::lock_guard<std::mutex> lock(mutex);
    // Oldest-first: once wrapped, the oldest live event sits at `head`.
    for (std::size_t i = 0; i < ring.size(); ++i) {
      out->push_back(ring[(head + i) % ring.size()]);
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex);
    ring.clear();
    head = 0;
    overwritten = 0;
  }
};

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::Enable() {
  epoch_us_.store(SteadyNowMicros(), std::memory_order_relaxed);
  internal::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  internal::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void TraceRecorder::Reset() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buffer : buffers_) buffer->Clear();
  recorded_.store(0, std::memory_order_relaxed);
}

void TraceRecorder::set_output_path(std::string path) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  output_path_ = std::move(path);
}

std::string TraceRecorder::output_path() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return output_path_;
}

void TraceRecorder::set_buffer_capacity(std::size_t events) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  buffer_capacity_ = events == 0 ? 1 : events;
}

std::uint64_t TraceRecorder::NowMicros() const {
  const std::int64_t now = SteadyNowMicros();
  const std::int64_t epoch = epoch_us_.load(std::memory_order_relaxed);
  return now > epoch ? static_cast<std::uint64_t>(now - epoch) : 0;
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  // Buffers are owned by the recorder and never removed, so the cached
  // pointer stays valid for the thread's lifetime.
  thread_local ThreadBuffer* tls_buffer = nullptr;
  if (tls_buffer != nullptr) return tls_buffer;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  buffers_.push_back(
      std::make_unique<ThreadBuffer>(CurrentThreadId(), buffer_capacity_));
  tls_buffer = buffers_.back().get();
  return tls_buffer;
}

void TraceRecorder::Push(const TraceEvent& event) {
  BufferForThisThread()->Push(event);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

void TraceRecorder::RecordComplete(const char* name, std::uint64_t start_us,
                                   std::uint64_t dur_us, std::int32_t depth) {
  TraceEvent event;
  CopyName(name, event.name);
  event.start_us = start_us;
  event.dur_us = dur_us;
  event.tid = CurrentThreadId();
  event.depth = depth;
  Push(event);
}

void TraceRecorder::RecordInstant(const char* name) {
  TraceEvent event;
  CopyName(name, event.name);
  event.start_us = NowMicros();
  event.tid = CurrentThreadId();
  event.depth = tls_depth;
  event.instant = true;
  Push(event);
}

std::size_t TraceRecorder::thread_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return buffers_.size();
}

std::uint64_t TraceRecorder::recorded_count() const {
  return recorded_.load(std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::dropped_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    dropped += buffer->overwritten;
  }
  return dropped;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers_) buffer->AppendInOrder(&events);
  return events;
}

std::string TraceRecorder::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();
  // Thread-name metadata so Perfetto labels the tracks.
  std::vector<std::int32_t> tids;
  for (const TraceEvent& e : events) {
    bool seen = false;
    for (std::int32_t t : tids) seen = seen || t == e.tid;
    if (!seen) tids.push_back(e.tid);
  }
  for (std::int32_t tid : tids) {
    json.BeginObject();
    json.Key("name");
    json.String("thread_name");
    json.Key("ph");
    json.String("M");
    json.Key("pid");
    json.Int(1);
    json.Key("tid");
    json.Int(tid);
    json.Key("args");
    json.BeginObject();
    json.Key("name");
    char label[32];
    std::snprintf(label, sizeof(label), "snor-thread-%d", tid);
    json.String(label);
    json.EndObject();
    json.EndObject();
  }
  for (const TraceEvent& e : events) {
    json.BeginObject();
    json.Key("name");
    json.String(e.name);
    json.Key("cat");
    json.String("snor");
    json.Key("ph");
    json.String(e.instant ? "i" : "X");
    json.Key("pid");
    json.Int(1);
    json.Key("tid");
    json.Int(e.tid);
    json.Key("ts");
    json.Int(static_cast<std::int64_t>(e.start_us));
    if (e.instant) {
      json.Key("s");
      json.String("t");
    } else {
      json.Key("dur");
      json.Int(static_cast<std::int64_t>(e.dur_us));
    }
    json.Key("args");
    json.BeginObject();
    json.Key("depth");
    json.Int(e.depth);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.Key("displayTimeUnit");
  json.String("ms");
  json.Key("otherData");
  json.BeginObject();
  json.Key("recorded");
  json.Int(static_cast<std::int64_t>(recorded_count()));
  json.Key("dropped");
  json.Int(static_cast<std::int64_t>(dropped_count()));
  json.EndObject();
  json.EndObject();
  return json.str();
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string json = ChromeTraceJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out << '\n';
  return static_cast<bool>(out);
}

namespace {

bool InitTraceFromEnvOnce() {
  const char* env = std::getenv("SNOR_TRACE");
  if (env == nullptr || env[0] == '\0' || std::string(env) == "0") {
    return false;
  }
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.set_output_path(std::string(env) == "1" ? "trace.json" : env);
  recorder.Enable();
  std::atexit([] { (void)FlushTrace(); });
  return true;
}

}  // namespace

void InitTraceFromEnv() {
  // Thread-safe one-shot via function-local static initialization.
  static const bool initialized = InitTraceFromEnvOnce();
  (void)initialized;
}

bool FlushTrace() {
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!TraceEnabled()) return false;
  const std::string path = recorder.output_path();
  if (path.empty()) return false;
  const bool ok = recorder.WriteChromeTrace(path);
  if (!ok) {
    std::fprintf(stderr, "snor trace: failed to write %s\n", path.c_str());
  }
  return ok;
}

void ScopedSpan::Begin(const char* name) {
  name_ = name;
  start_us_ = TraceRecorder::Global().NowMicros();
  depth_ = tls_depth++;
  active_ = true;
}

void ScopedSpan::End() {
  --tls_depth;
  // Tracing may have been disabled mid-span; drop the event then (the
  // depth counter still had to be rewound above).
  if (!TraceEnabled()) return;
  TraceRecorder& recorder = TraceRecorder::Global();
  const std::uint64_t end_us = recorder.NowMicros();
  const std::uint64_t dur = end_us > start_us_ ? end_us - start_us_ : 0;
  recorder.RecordComplete(name_, start_us_, dur, depth_);
}

}  // namespace snor::obs
