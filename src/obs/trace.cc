#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"

namespace snor::obs {
namespace {

std::int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread span nesting depth (outermost span = depth 0).
thread_local std::int32_t tls_depth = 0;

/// Per-thread request scope; inactive (request_id 0) by default.
thread_local TraceContext tls_context;

/// Process-unique, non-zero id for a request-scoped span.
std::uint64_t NextSpanId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void CopyName(const char* name, char (&dest)[kTraceMaxNameLength + 1]) {
  std::size_t n = 0;
  if (name != nullptr) {
    n = std::strlen(name);
    if (n > kTraceMaxNameLength) {
      n = kTraceMaxNameLength;
      static Counter& truncated =
          MetricsRegistry::Global().counter("obs.trace.truncated_names");
      truncated.Increment();
    }
    std::memcpy(dest, name, n);
  }
  dest[n] = '\0';
}

}  // namespace

std::uint64_t NextTraceRequestId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

TraceContext CurrentTraceContext() { return tls_context; }

ScopedTraceContext::ScopedTraceContext(const TraceContext& context)
    : saved_(tls_context) {
  tls_context = context;
}

ScopedTraceContext::~ScopedTraceContext() { tls_context = saved_; }

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

int CurrentThreadId() {
  static std::atomic<int> next_id{1};
  thread_local const int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// \brief One thread's event ring. Single writer (the owning thread);
/// the mutex only contends with an exporting/resetting reader.
struct TraceRecorder::ThreadBuffer {
  ThreadBuffer(int tid_in, std::size_t capacity_in)
      : tid(tid_in), capacity(capacity_in == 0 ? 1 : capacity_in) {}

  mutable std::mutex mutex;  // LOCK_RANK(30): nests inside registry_mutex_.
  const int tid;
  const std::size_t capacity;
  std::vector<TraceEvent> ring;  // Grows lazily up to `capacity`.
  std::size_t head = 0;          // Oldest slot once the ring is full.
  std::uint64_t overwritten = 0;

  void Push(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mutex);
    if (ring.size() < capacity) {
      ring.push_back(event);
    } else {
      ring[head] = event;
      head = (head + 1) % capacity;
      ++overwritten;
    }
  }

  void AppendInOrder(std::vector<TraceEvent>* out) const {
    std::lock_guard<std::mutex> lock(mutex);
    // Oldest-first: once wrapped, the oldest live event sits at `head`.
    for (std::size_t i = 0; i < ring.size(); ++i) {
      out->push_back(ring[(head + i) % ring.size()]);
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex);
    ring.clear();
    head = 0;
    overwritten = 0;
  }
};

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::Enable() {
  epoch_us_.store(SteadyNowMicros(), std::memory_order_relaxed);
  internal::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  internal::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void TraceRecorder::Reset() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buffer : buffers_) buffer->Clear();
  recorded_.store(0, std::memory_order_relaxed);
}

void TraceRecorder::set_output_path(std::string path) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  output_path_ = std::move(path);
}

std::string TraceRecorder::output_path() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return output_path_;
}

void TraceRecorder::set_buffer_capacity(std::size_t events) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  buffer_capacity_ = events == 0 ? 1 : events;
}

std::uint64_t TraceRecorder::NowMicros() const {
  const std::int64_t now = SteadyNowMicros();
  const std::int64_t epoch = epoch_us_.load(std::memory_order_relaxed);
  return now > epoch ? static_cast<std::uint64_t>(now - epoch) : 0;
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  // Buffers are owned by the recorder and never removed, so the cached
  // pointer stays valid for the thread's lifetime.
  thread_local ThreadBuffer* tls_buffer = nullptr;
  if (tls_buffer != nullptr) return tls_buffer;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  buffers_.push_back(
      std::make_unique<ThreadBuffer>(CurrentThreadId(), buffer_capacity_));
  tls_buffer = buffers_.back().get();
  return tls_buffer;
}

void TraceRecorder::Push(const TraceEvent& event) {
  BufferForThisThread()->Push(event);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (event.request_id != 0) RequestTraceStore::Global().Offer(event);
}

void TraceRecorder::RecordComplete(const char* name, std::uint64_t start_us,
                                   std::uint64_t dur_us, std::int32_t depth,
                                   std::uint64_t request_id,
                                   std::uint64_t span_id,
                                   std::uint64_t parent_span) {
  TraceEvent event;
  CopyName(name, event.name);
  event.start_us = start_us;
  event.dur_us = dur_us;
  event.request_id = request_id;
  event.span_id = span_id;
  event.parent_span = parent_span;
  event.tid = CurrentThreadId();
  event.depth = depth;
  Push(event);
}

void TraceRecorder::RecordInstant(const char* name) {
  TraceEvent event;
  CopyName(name, event.name);
  event.start_us = NowMicros();
  event.request_id = tls_context.request_id;
  event.parent_span = tls_context.parent_span;
  event.tid = CurrentThreadId();
  event.depth = tls_depth;
  event.instant = true;
  Push(event);
}

std::size_t TraceRecorder::thread_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return buffers_.size();
}

std::uint64_t TraceRecorder::recorded_count() const {
  return recorded_.load(std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::dropped_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    dropped += buffer->overwritten;
  }
  return dropped;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers_) buffer->AppendInOrder(&events);
  return events;
}

std::string TraceRecorder::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();
  // Thread-name metadata so Perfetto labels the tracks.
  std::vector<std::int32_t> tids;
  for (const TraceEvent& e : events) {
    bool seen = false;
    for (std::int32_t t : tids) seen = seen || t == e.tid;
    if (!seen) tids.push_back(e.tid);
  }
  for (std::int32_t tid : tids) {
    json.BeginObject();
    json.Key("name");
    json.String("thread_name");
    json.Key("ph");
    json.String("M");
    json.Key("pid");
    json.Int(1);
    json.Key("tid");
    json.Int(tid);
    json.Key("args");
    json.BeginObject();
    json.Key("name");
    char label[32];
    std::snprintf(label, sizeof(label), "snor-thread-%d", tid);
    json.String(label);
    json.EndObject();
    json.EndObject();
  }
  for (const TraceEvent& e : events) {
    json.BeginObject();
    json.Key("name");
    json.String(e.name);
    json.Key("cat");
    json.String("snor");
    json.Key("ph");
    json.String(e.instant ? "i" : "X");
    json.Key("pid");
    json.Int(1);
    json.Key("tid");
    json.Int(e.tid);
    json.Key("ts");
    json.Int(static_cast<std::int64_t>(e.start_us));
    if (e.instant) {
      json.Key("s");
      json.String("t");
    } else {
      json.Key("dur");
      json.Int(static_cast<std::int64_t>(e.dur_us));
    }
    json.Key("args");
    json.BeginObject();
    json.Key("depth");
    json.Int(e.depth);
    if (e.request_id != 0) {
      json.Key("request_id");
      json.Int(static_cast<std::int64_t>(e.request_id));
      json.Key("span_id");
      json.Int(static_cast<std::int64_t>(e.span_id));
      json.Key("parent_span");
      json.Int(static_cast<std::int64_t>(e.parent_span));
    }
    json.EndObject();
    json.EndObject();
  }
  // Flow events stitch each request's spans across threads into one
  // causal arrow chain in Perfetto: per request, "s" on the earliest
  // span, "t" steps, "f" on the latest, all sharing the request id.
  std::map<std::uint64_t, std::vector<const TraceEvent*>> by_request;
  for (const TraceEvent& e : events) {
    if (e.request_id != 0 && !e.instant) by_request[e.request_id].push_back(&e);
  }
  for (auto& [request_id, spans] : by_request) {
    if (spans.size() < 2) continue;  // No arrow to draw.
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       return a->start_us < b->start_us;
                     });
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const TraceEvent& e = *spans[i];
      const bool first = i == 0;
      const bool last = i + 1 == spans.size();
      json.BeginObject();
      json.Key("name");
      json.String("obs.trace.flow");
      json.Key("cat");
      json.String("snor");
      json.Key("ph");
      json.String(first ? "s" : (last ? "f" : "t"));
      json.Key("id");
      json.Int(static_cast<std::int64_t>(request_id));
      json.Key("pid");
      json.Int(1);
      json.Key("tid");
      json.Int(e.tid);
      json.Key("ts");
      json.Int(static_cast<std::int64_t>(e.start_us));
      if (!first) {
        // Bind to the enclosing slice rather than the next one.
        json.Key("bp");
        json.String("e");
      }
      json.EndObject();
    }
  }
  json.EndArray();
  json.Key("displayTimeUnit");
  json.String("ms");
  json.Key("otherData");
  json.BeginObject();
  json.Key("recorded");
  json.Int(static_cast<std::int64_t>(recorded_count()));
  json.Key("dropped");
  json.Int(static_cast<std::int64_t>(dropped_count()));
  json.EndObject();
  json.EndObject();
  return json.str();
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string json = ChromeTraceJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out << '\n';
  return static_cast<bool>(out);
}

namespace {

bool InitTraceFromEnvOnce() {
  const char* env = std::getenv("SNOR_TRACE");
  if (env == nullptr || env[0] == '\0' || std::string(env) == "0") {
    return false;
  }
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.set_output_path(std::string(env) == "1" ? "trace.json" : env);
  recorder.Enable();
  std::atexit([] { (void)FlushTrace(); });
  return true;
}

}  // namespace

void InitTraceFromEnv() {
  // Thread-safe one-shot via function-local static initialization.
  static const bool initialized = InitTraceFromEnvOnce();
  (void)initialized;
}

bool FlushTrace() {
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!TraceEnabled()) return false;
  const std::string path = recorder.output_path();
  if (path.empty()) return false;
  const bool ok = recorder.WriteChromeTrace(path);
  if (!ok) {
    std::fprintf(stderr, "snor trace: failed to write %s\n", path.c_str());
  }
  return ok;
}

RequestTraceStore& RequestTraceStore::Global() {
  static RequestTraceStore store;
  return store;
}

void RequestTraceStore::Enable(const RequestTraceOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    options_ = options;
  }
  // Spans are the raw material of request traces, so collection implies
  // recording.
  TraceRecorder::Global().Enable();
  enabled_.store(true, std::memory_order_relaxed);
}

void RequestTraceStore::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void RequestTraceStore::Offer(const TraceEvent& event) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (event.request_id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = pending_.find(event.request_id);
  if (it == pending_.end()) {
    if (pending_.size() >= options_.max_pending && !pending_.empty()) {
      // Request ids are monotonic, so begin() is the oldest request.
      pending_.erase(pending_.begin());
      ++stats_.evicted;
    }
    it = pending_.emplace(event.request_id, std::vector<TraceEvent>()).first;
  }
  if (it->second.size() >= options_.max_spans_per_request) {
    ++stats_.span_overflow;
    return;
  }
  it->second.push_back(event);
}

void RequestTraceStore::Finish(std::uint64_t request_id, bool error,
                               bool deadline_exceeded, double latency_us) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.finished;
  std::vector<TraceEvent> spans;
  auto it = pending_.find(request_id);
  if (it != pending_.end()) {
    spans = std::move(it->second);
    pending_.erase(it);
  }
  bool keep = false;
  bool sampled = false;
  if ((error || deadline_exceeded) && options_.keep_errors) {
    keep = true;
  } else if (options_.latency_keep_threshold_us > 0.0 &&
             latency_us >= options_.latency_keep_threshold_us) {
    keep = true;
  } else if (options_.sample_every > 0) {
    const std::uint64_t n =
        sample_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % options_.sample_every == 0) {
      keep = true;
      sampled = true;
    }
  }
  if (!keep || options_.max_kept == 0) {
    ++stats_.dropped;
    return;
  }
  RequestTrace trace;
  trace.request_id = request_id;
  trace.error = error;
  trace.deadline_exceeded = deadline_exceeded;
  trace.sampled = sampled;
  trace.latency_us = latency_us;
  trace.spans = std::move(spans);
  KeepLocked(std::move(trace));
}

void RequestTraceStore::KeepLocked(RequestTrace trace) {
  while (kept_.size() >= options_.max_kept && !kept_.empty()) {
    kept_.pop_front();
  }
  kept_.push_back(std::move(trace));
  ++stats_.kept;
}

RequestTraceStore::Stats RequestTraceStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<RequestTrace> RequestTraceStore::Kept() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<RequestTrace>(kept_.begin(), kept_.end());
}

std::string RequestTraceStore::TracezJson() const {
  std::vector<RequestTrace> kept;
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    kept.assign(kept_.begin(), kept_.end());
    stats = stats_;
  }
  JsonWriter json;
  json.BeginObject();
  json.Key("finished");
  json.Int(static_cast<std::int64_t>(stats.finished));
  json.Key("kept");
  json.Int(static_cast<std::int64_t>(stats.kept));
  json.Key("dropped");
  json.Int(static_cast<std::int64_t>(stats.dropped));
  json.Key("span_overflow");
  json.Int(static_cast<std::int64_t>(stats.span_overflow));
  json.Key("evicted");
  json.Int(static_cast<std::int64_t>(stats.evicted));
  json.Key("traces");
  json.BeginArray();
  for (const RequestTrace& trace : kept) {
    json.BeginObject();
    json.Key("request_id");
    json.Int(static_cast<std::int64_t>(trace.request_id));
    json.Key("error");
    json.Bool(trace.error);
    json.Key("deadline_exceeded");
    json.Bool(trace.deadline_exceeded);
    json.Key("sampled");
    json.Bool(trace.sampled);
    json.Key("latency_us");
    json.Number(trace.latency_us);
    json.Key("spans");
    json.BeginArray();
    for (const TraceEvent& e : trace.spans) {
      json.BeginObject();
      json.Key("name");
      json.String(e.name);
      json.Key("ts");
      json.Int(static_cast<std::int64_t>(e.start_us));
      json.Key("dur");
      json.Int(static_cast<std::int64_t>(e.dur_us));
      json.Key("span_id");
      json.Int(static_cast<std::int64_t>(e.span_id));
      json.Key("parent_span");
      json.Int(static_cast<std::int64_t>(e.parent_span));
      json.Key("tid");
      json.Int(e.tid);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

void RequestTraceStore::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.clear();
  kept_.clear();
  stats_ = Stats{};
  sample_counter_.store(0, std::memory_order_relaxed);
}

void ScopedSpan::Begin(const char* name) {
  name_ = name;
  start_us_ = TraceRecorder::Global().NowMicros();
  depth_ = tls_depth++;
  if (tls_context.active()) {
    // Attach to the request's causal chain and make nested spans on this
    // thread children of this span.
    request_id_ = tls_context.request_id;
    parent_span_ = tls_context.parent_span;
    span_id_ = NextSpanId();
    tls_context.parent_span = span_id_;
  }
  active_ = true;
}

void ScopedSpan::End() {
  --tls_depth;
  if (request_id_ != 0 && tls_context.request_id == request_id_) {
    tls_context.parent_span = parent_span_;
  }
  // Tracing may have been disabled mid-span; drop the event then (the
  // depth counter still had to be rewound above).
  if (!TraceEnabled()) return;
  TraceRecorder& recorder = TraceRecorder::Global();
  const std::uint64_t end_us = recorder.NowMicros();
  const std::uint64_t dur = end_us > start_us_ ? end_us - start_us_ : 0;
  recorder.RecordComplete(name_, start_us_, dur, depth_, request_id_, span_id_,
                          parent_span_);
}

}  // namespace snor::obs
