#include "obs/introspect.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace snor::obs {
namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 400:
      return "Bad Request";
    default:
      return "Error";
  }
}

/// Writes the full buffer, retrying on short writes; false on error.
bool SendAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void WriteResponse(int fd, const IntrospectResponse& response) {
  char header[256];
  const int n = std::snprintf(header, sizeof(header),
                              "HTTP/1.1 %d %s\r\n"
                              "Content-Type: %s\r\n"
                              "Content-Length: %zu\r\n"
                              "Connection: close\r\n"
                              "\r\n",
                              response.status, StatusText(response.status),
                              response.content_type.c_str(),
                              response.body.size());
  if (n <= 0) return;
  if (!SendAll(fd, header, static_cast<std::size_t>(n))) return;
  (void)SendAll(fd, response.body.data(), response.body.size());
}

}  // namespace

IntrospectServer::IntrospectServer() {
  Register("/healthz", [] {
    IntrospectResponse response;
    response.body = "{\"status\":\"ok\"}";
    return response;
  });
  Register("/metricsz", [] {
    IntrospectResponse response;
    response.body = MetricsRegistry::Global().DumpJson();
    return response;
  });
  Register("/tracez", [] {
    IntrospectResponse response;
    response.body = RequestTraceStore::Global().TracezJson();
    return response;
  });
}

IntrospectServer::~IntrospectServer() { Stop(); }

void IntrospectServer::Register(const std::string& path, Handler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handlers_[path] = std::move(handler);
}

bool IntrospectServer::Start(int port) {
  if (running()) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  port_.store(ntohs(bound.sin_port), std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void IntrospectServer::Stop() {
  if (!running()) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_.store(0, std::memory_order_relaxed);
  running_.store(false, std::memory_order_relaxed);
}

void IntrospectServer::Serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    // Poll-gated accept so Stop() is honored within ~100ms even when no
    // client ever connects.
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    HandleConnection(client);
    ::close(client);
  }
}

IntrospectResponse IntrospectServer::Dispatch(const std::string& path) {
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = handlers_.find(path);
    if (it != handlers_.end()) handler = it->second;
  }
  // Invoked without the lock: handlers serialize registries with their
  // own (higher-rank) mutexes and may be slow.
  if (handler) return handler();
  IntrospectResponse response;
  response.status = 404;
  std::string endpoints;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [known_path, unused] : handlers_) {
      if (!endpoints.empty()) endpoints += ",";
      endpoints += "\"" + known_path + "\"";
    }
  }
  response.body = "{\"error\":\"not found\",\"endpoints\":[" + endpoints + "]}";
  return response;
}

void IntrospectServer::HandleConnection(int fd) {
  static Counter& requests =
      MetricsRegistry::Global().counter("obs.introspect.requests");
  static Counter& errors =
      MetricsRegistry::Global().counter("obs.introspect.errors");
  // One short read is enough for the operator GETs this serves; anything
  // that does not fit or parse is a 400.
  char buffer[2048];
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  if (::poll(&pfd, 1, 1000) <= 0) {
    errors.Increment();
    return;
  }
  const ssize_t n = ::recv(fd, buffer, sizeof(buffer) - 1, 0);
  if (n <= 0) {
    errors.Increment();
    return;
  }
  buffer[n] = '\0';
  requests.Increment();
  // Request line: "GET /path HTTP/1.1".
  const char* line_end = std::strstr(buffer, "\r\n");
  const std::string line(buffer, line_end != nullptr
                                     ? static_cast<std::size_t>(line_end -
                                                                buffer)
                                     : std::strlen(buffer));
  IntrospectResponse response;
  const std::size_t first_space = line.find(' ');
  const std::size_t second_space =
      first_space == std::string::npos ? std::string::npos
                                       : line.find(' ', first_space + 1);
  if (first_space == std::string::npos || second_space == std::string::npos) {
    errors.Increment();
    response.status = 400;
    response.body = "{\"error\":\"malformed request line\"}";
  } else if (line.substr(0, first_space) != "GET") {
    errors.Increment();
    response.status = 405;
    response.body = "{\"error\":\"only GET is supported\"}";
  } else {
    std::string path =
        line.substr(first_space + 1, second_space - first_space - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    response = Dispatch(path);
    if (response.status != 200) errors.Increment();
  }
  WriteResponse(fd, response);
}

}  // namespace snor::obs
