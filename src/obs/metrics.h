#ifndef SNOR_OBS_METRICS_H_
#define SNOR_OBS_METRICS_H_

/// \file
/// Process-wide metrics registry: named counters, gauges, and fixed-bucket
/// latency histograms with p50/p95/p99 summaries, dumpable as text or
/// JSON. Metric names follow the `layer.stage.detail` lowercase dotted
/// convention (enforced by snor_lint's span-metric-name rule).
///
/// Hot-path cost: one relaxed atomic op per Counter::Increment, a CAS
/// loop per Gauge/Histogram update. Registry lookups take a mutex — cache
/// the returned reference at the call site (`static Counter& c = ...`);
/// references stay valid forever (metrics are never unregistered, only
/// reset).
///
/// Must not depend on util/ (obs sits below util in the layering).

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace snor::obs {

/// True when `name` follows the `layer.stage.detail` convention: at least
/// two non-empty dot-separated segments of [a-z0-9_-] characters.
bool IsValidMetricName(std::string_view name);

/// \brief Monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// \brief Last-written instantaneous value (queue depth, worker count).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram with percentile estimation.
///
/// Bucket upper bounds are set at construction (ascending); an implicit
/// overflow bucket catches everything above the last bound. Percentiles
/// interpolate linearly inside the containing bucket and are clamped to
/// the observed [min, max].
class Histogram {
 public:
  /// `bounds` are ascending inclusive upper bucket bounds.
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  double min() const;
  double max() const;

  /// Estimated value at percentile `p` in [0, 100]; 0 when empty.
  double Percentile(double p) const;

  /// \brief Point-in-time summary used by the dumpers and bench telemetry.
  ///
  /// Torn-read tolerant: the per-bucket counts are captured in one pass
  /// and are authoritative — `count` is exactly their sum, percentiles
  /// are computed from the same capture, and `sum`/`min`/`max` are
  /// clamped so no combination of concurrent Records can make the
  /// emitted fields disagree (e.g. `sum` outside [count*min, count*max]).
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /// Ascending bucket upper bounds (copy of bounds()).
    std::vector<double> bounds;
    /// Per-bucket counts; bounds.size() + 1 entries (last = overflow).
    std::vector<std::uint64_t> buckets;
  };

  Snapshot snapshot() const;

  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

  /// Observation count of bucket `i` (i in [0, bounds().size()]; the last
  /// index is the overflow bucket).
  std::uint64_t bucket_count(std::size_t i) const;

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 entries; the last is the overflow bucket.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Default exponential latency bounds in microseconds (1µs .. 5s).
std::vector<double> DefaultLatencyBoundsUs();

/// \brief Registry of all named metrics. Entries are created on first
/// access and never removed; `ResetAll` zeroes values but keeps
/// registrations (cached references stay valid).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Uses DefaultLatencyBoundsUs() when the histogram does not exist yet.
  Histogram& histogram(std::string_view name);
  /// Creates with explicit bounds; `bounds` are ignored when the
  /// histogram already exists.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  void ResetAll();

  /// One metric per line, sorted by name, human-readable.
  std::string DumpText() const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max,p50,p95,p99}}} — sorted keys, valid JSON.
  std::string DumpJson() const;

 private:
  mutable std::mutex mutex_;  // LOCK_RANK(40)
  std::map<std::string, std::unique_ptr<Counter>, std::less<>>
      counters_;  // GUARDED_BY(mutex_)
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>>
      gauges_;  // GUARDED_BY(mutex_)
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;  // GUARDED_BY(mutex_)
};

/// \brief RAII helper recording the scope's wall-clock duration (in
/// microseconds) into a histogram on destruction.
class ScopedLatencyUs {
 public:
  explicit ScopedLatencyUs(Histogram& histogram);
  ~ScopedLatencyUs();

  ScopedLatencyUs(const ScopedLatencyUs&) = delete;
  ScopedLatencyUs& operator=(const ScopedLatencyUs&) = delete;

 private:
  Histogram& histogram_;
  std::int64_t start_us_ = 0;
};

}  // namespace snor::obs

#endif  // SNOR_OBS_METRICS_H_
