#ifndef SNOR_OBS_INTROSPECT_H_
#define SNOR_OBS_INTROSPECT_H_

/// \file
/// Live introspection server: a tiny blocking TCP/HTTP 1.1 endpoint that
/// lets an operator `curl` a running service.
///
/// One background thread accepts connections (poll-gated so `Stop()`
/// returns promptly), reads a single GET request, dispatches to a
/// registered handler, writes the response, and closes. This is an
/// operations surface, not a web server: one request per connection, no
/// keep-alive, no TLS, bind to loopback only.
///
/// Default endpoints (registered by the constructor):
///  - `/healthz`  — liveness: `{"status":"ok"}`.
///  - `/metricsz` — `MetricsRegistry::DumpJson()` (per-bucket histograms).
///  - `/tracez`   — `RequestTraceStore::TracezJson()` (tail-kept traces).
///
/// Richer endpoints (`/statusz` with ServiceStats, breaker state, SLO
/// burn rates) are registered by the owning layer via `Register` — obs
/// sits at the bottom of the stack and cannot see serve types.
///
/// Telemetry: `obs.introspect.requests` counts served requests,
/// `obs.introspect.errors` counts malformed/unroutable ones.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace snor::obs {

/// \brief One endpoint's reply.
struct IntrospectResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// \brief Blocking TCP/HTTP introspection server bound to 127.0.0.1.
class IntrospectServer {
 public:
  using Handler = std::function<IntrospectResponse()>;

  IntrospectServer();
  ~IntrospectServer();

  IntrospectServer(const IntrospectServer&) = delete;
  IntrospectServer& operator=(const IntrospectServer&) = delete;

  /// Registers (or replaces) the handler for `path` (e.g. "/statusz").
  /// Safe to call while the server is running.
  void Register(const std::string& path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  /// accept thread. False if the socket could not be bound.
  bool Start(int port);

  /// Stops accepting, joins the accept thread, closes the socket.
  /// Idempotent; called by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// The bound port (resolved after Start with port 0); 0 when stopped.
  int port() const { return port_.load(std::memory_order_relaxed); }

 private:
  void Serve();
  void HandleConnection(int fd);
  IntrospectResponse Dispatch(const std::string& path);

  mutable std::mutex mutex_;  // LOCK_RANK(15)
  std::map<std::string, Handler> handlers_;  // GUARDED_BY(mutex_)
  std::thread thread_;  // GUARDED_BY(caller): Start/Stop are serialized.
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<int> port_{0};
  int listen_fd_ = -1;  // GUARDED_BY(caller): Start/Stop are serialized.
};

}  // namespace snor::obs

#endif  // SNOR_OBS_INTROSPECT_H_
