#include "obs/slo.h"

#include <algorithm>
#include <chrono>

#include "obs/json.h"

namespace snor::obs {
namespace {

std::uint64_t SteadyNowSeconds() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Burn rate with a guarded denominator: an objective of 1.0 budgets no
/// errors at all, so any error at all reads as a very fast burn instead
/// of dividing by zero (and the result stays finite for JSON).
double BurnRate(double compliance, double objective) {
  const double error_rate = 1.0 - compliance;
  if (error_rate <= 0.0) return 0.0;
  const double budget = std::max(1.0 - objective, 1e-9);
  return std::min(error_rate / budget, 1e9);
}

}  // namespace

SloMonitor::SloMonitor(const SloOptions& options) : options_([&options] {
  SloOptions o = options;
  if (o.bucket_seconds == 0) o.bucket_seconds = 1;
  if (o.num_buckets == 0) o.num_buckets = 1;
  return o;
}()) {
  ring_.resize(options_.num_buckets);
}

SloMonitor::Bucket& SloMonitor::BucketForLocked(std::uint64_t now_s) {
  const std::uint64_t period = now_s / options_.bucket_seconds;
  Bucket& bucket = ring_[period % ring_.size()];
  if (bucket.period != period) {
    bucket = Bucket{};
    bucket.period = period;
  }
  return bucket;
}

void SloMonitor::Record(bool ok, double latency_us) {
  RecordAt(ok, latency_us, SteadyNowSeconds());
}

void SloMonitor::RecordAt(bool ok, double latency_us, std::uint64_t now_s) {
  const bool fast = ok && latency_us <= options_.latency_threshold_us;
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = BucketForLocked(now_s);
  ++bucket.total;
  ++total_;
  if (ok) {
    ++bucket.ok;
    ++ok_;
  }
  if (fast) {
    ++bucket.fast;
    ++fast_;
  }
}

SloMonitor::Snapshot SloMonitor::snapshot() const {
  return SnapshotAt(SteadyNowSeconds());
}

SloMonitor::Snapshot SloMonitor::SnapshotAt(std::uint64_t now_s) const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.total = total_;
  snap.ok = ok_;
  snap.fast = fast_;
  if (total_ > 0) {
    snap.availability =
        static_cast<double>(ok_) / static_cast<double>(total_);
    snap.latency_compliance =
        static_cast<double>(fast_) / static_cast<double>(total_);
  }
  const std::uint64_t current_period = now_s / options_.bucket_seconds;
  for (std::uint64_t window_s : options_.burn_windows_s) {
    WindowBurn burn;
    burn.window_s = window_s;
    // Whole buckets covering the window, clamped to retained history.
    std::uint64_t periods =
        (window_s + options_.bucket_seconds - 1) / options_.bucket_seconds;
    periods = std::max<std::uint64_t>(1, periods);
    periods = std::min<std::uint64_t>(periods, ring_.size());
    const std::uint64_t oldest_period =
        current_period >= periods - 1 ? current_period - (periods - 1) : 0;
    for (const Bucket& bucket : ring_) {
      if (bucket.total == 0 && bucket.period == 0) continue;  // Never used.
      if (bucket.period < oldest_period || bucket.period > current_period) {
        continue;  // Stale slot awaiting reuse, or outside the window.
      }
      burn.total += bucket.total;
      burn.ok += bucket.ok;
      burn.fast += bucket.fast;
    }
    if (burn.total > 0) {
      burn.availability =
          static_cast<double>(burn.ok) / static_cast<double>(burn.total);
      burn.latency_compliance =
          static_cast<double>(burn.fast) / static_cast<double>(burn.total);
    }
    burn.availability_burn_rate =
        BurnRate(burn.availability, options_.availability_objective);
    burn.latency_burn_rate =
        BurnRate(burn.latency_compliance, options_.latency_objective);
    snap.worst_availability_burn =
        std::max(snap.worst_availability_burn, burn.availability_burn_rate);
    snap.worst_latency_burn =
        std::max(snap.worst_latency_burn, burn.latency_burn_rate);
    snap.windows.push_back(burn);
  }
  return snap;
}

void SloMonitor::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(ring_.begin(), ring_.end(), Bucket{});
  total_ = 0;
  ok_ = 0;
  fast_ = 0;
}

std::string SloSnapshotJson(const SloMonitor::Snapshot& snapshot) {
  JsonWriter json;
  json.BeginObject();
  json.Key("total");
  json.Int(static_cast<std::int64_t>(snapshot.total));
  json.Key("ok");
  json.Int(static_cast<std::int64_t>(snapshot.ok));
  json.Key("fast");
  json.Int(static_cast<std::int64_t>(snapshot.fast));
  json.Key("availability");
  json.Number(snapshot.availability);
  json.Key("latency_compliance");
  json.Number(snapshot.latency_compliance);
  json.Key("worst_availability_burn");
  json.Number(snapshot.worst_availability_burn);
  json.Key("worst_latency_burn");
  json.Number(snapshot.worst_latency_burn);
  json.Key("windows");
  json.BeginArray();
  for (const SloMonitor::WindowBurn& burn : snapshot.windows) {
    json.BeginObject();
    json.Key("window_s");
    json.Int(static_cast<std::int64_t>(burn.window_s));
    json.Key("total");
    json.Int(static_cast<std::int64_t>(burn.total));
    json.Key("ok");
    json.Int(static_cast<std::int64_t>(burn.ok));
    json.Key("fast");
    json.Int(static_cast<std::int64_t>(burn.fast));
    json.Key("availability");
    json.Number(burn.availability);
    json.Key("latency_compliance");
    json.Number(burn.latency_compliance);
    json.Key("availability_burn_rate");
    json.Number(burn.availability_burn_rate);
    json.Key("latency_burn_rate");
    json.Number(burn.latency_burn_rate);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace snor::obs
