#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace snor::obs {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!counts_.empty()) {
    if (counts_.back() > 0) out_ += ',';
    ++counts_.back();
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  counts_.push_back(0);
}

void JsonWriter::EndObject() {
  if (!counts_.empty()) counts_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  counts_.push_back(0);
}

void JsonWriter::EndArray() {
  if (!counts_.empty()) counts_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  if (!counts_.empty()) {
    if (counts_.back() > 0) out_ += ',';
    ++counts_.back();
  }
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Number(double value) {
  if (!std::isfinite(value)) {
    Null();
    return;
  }
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
}

void JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const auto it = object_items.find(key);
  return it == object_items.end() ? nullptr : &it->second;
}

namespace {

/// Recursive-descent JSON parser over a string_view, tracking position
/// for error reports. Depth-limited to keep malicious inputs from
/// exhausting the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWhitespace();
    if (!ParseValue(out, 0)) {
      if (error != nullptr) {
        *error = message_ + " at byte " + std::to_string(pos_);
      }
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters at byte " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const char* why) {
    message_ = why;
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char* c) const {
    if (pos_ >= text_.size()) return false;
    *c = text_[pos_];
    return true;
  }

  bool Literal(std::string_view word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    char c = 0;
    if (!Peek(&c)) return Fail("unexpected end of input");
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return Literal("true") || Fail("bad literal");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return Literal("false") || Fail("bad literal");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null") || Fail("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    char c = 0;
    if (Peek(&c) && c == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWhitespace();
      if (!Peek(&c) || c != '"') return Fail("expected object key");
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Peek(&c) || c != ':') return Fail("expected ':'");
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->object_items[key] = std::move(value);
      SkipWhitespace();
      if (!Peek(&c)) return Fail("unterminated object");
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    char c = 0;
    if (Peek(&c) && c == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->array_items.push_back(std::move(value));
      SkipWhitespace();
      if (!Peek(&c)) return Fail("unterminated array");
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // Opening quote.
    std::string result;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        *out = std::move(result);
        return true;
      }
      if (c != '\\') {
        result += c;
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          result += '"';
          break;
        case '\\':
          result += '\\';
          break;
        case '/':
          result += '/';
          break;
        case 'b':
          result += '\b';
          break;
        case 'f':
          result += '\f';
          break;
        case 'n':
          result += '\n';
          break;
        case 'r':
          result += '\r';
          break;
        case 't':
          result += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // UTF-8 encode the basic-plane code point (surrogate pairs are
          // not reassembled; each half encodes independently).
          if (code < 0x80) {
            result += static_cast<char>(code);
          } else if (code < 0x800) {
            result += static_cast<char>(0xC0 | (code >> 6));
            result += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            result += static_cast<char>(0xE0 | (code >> 12));
            result += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            result += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool any_digit = false;
    bool dot = false;
    bool exp = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        any_digit = true;
        ++pos_;
      } else if (c == '.' && !dot && !exp) {
        dot = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && !exp && any_digit) {
        exp = true;
        ++pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    if (!any_digit) return Fail("expected a value");
    out->type = JsonValue::Type::kNumber;
    out->number_value =
        std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                    nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string message_ = "parse error";
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  return JsonParser(text).Parse(out, error);
}

}  // namespace snor::obs
