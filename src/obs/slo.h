#ifndef SNOR_OBS_SLO_H_
#define SNOR_OBS_SLO_H_

/// \file
/// Rolling-window SLO tracking with multi-window burn-rate computation,
/// in the style of SRE error-budget practice.
///
/// An `SloMonitor` tracks two objectives over a ring of fixed-width time
/// buckets:
///  - **availability**: the fraction of requests that succeeded must stay
///    at or above `availability_objective`;
///  - **latency**: the fraction of requests finishing under
///    `latency_threshold_us` must stay at or above `latency_objective`.
///
/// For each configured window (e.g. 1m / 5m / 1h) the monitor reports the
/// observed compliance and the **burn rate**: the ratio of the error rate
/// actually observed in the window to the error rate the objective
/// budgets for. A burn rate of 1.0 means the error budget is being spent
/// exactly as fast as it accrues; sustained multi-window burn above ~1 is
/// the classic page condition (fast-burn alerts use the short window,
/// slow-burn the long one).
///
/// Thread-safe; `Record` is a single short mutex-guarded ring update.
/// Time is taken from steady_clock, with `*At` variants accepting an
/// explicit second timestamp for deterministic tests.
///
/// Sits at the bottom of the dependency stack with the rest of obs: must
/// not include anything from util/ or serve/.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace snor::obs {

/// \brief Objectives and window geometry for an SloMonitor.
struct SloOptions {
  /// Fraction of requests that must succeed (e.g. 0.99 = "two nines").
  double availability_objective = 0.99;
  /// Fraction of requests that must finish under latency_threshold_us.
  double latency_objective = 0.99;
  /// A request at or under this latency counts as "fast".
  double latency_threshold_us = 50000.0;
  /// Ring bucket width; windows are rounded up to whole buckets.
  std::uint64_t bucket_seconds = 1;
  /// Ring length (total retained history = bucket_seconds * num_buckets).
  std::size_t num_buckets = 3600;
  /// Burn-rate windows in seconds, short to long. Windows longer than
  /// the retained history are clamped to it.
  std::vector<std::uint64_t> burn_windows_s = {60, 300, 3600};
};

/// \brief Rolling-window availability + latency-objective tracker.
class SloMonitor {
 public:
  explicit SloMonitor(const SloOptions& options = {});

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  /// Records one finished request ("now" from steady_clock).
  void Record(bool ok, double latency_us);

  /// Test seam: record at an explicit absolute second.
  void RecordAt(bool ok, double latency_us, std::uint64_t now_s);

  /// \brief One burn-rate window's observed state.
  struct WindowBurn {
    std::uint64_t window_s = 0;
    std::uint64_t total = 0;
    std::uint64_t ok = 0;
    std::uint64_t fast = 0;
    /// ok/total (1.0 when the window is empty).
    double availability = 1.0;
    /// fast/total (1.0 when the window is empty).
    double latency_compliance = 1.0;
    /// (1 - availability) / (1 - availability_objective).
    double availability_burn_rate = 0.0;
    /// (1 - latency_compliance) / (1 - latency_objective).
    double latency_burn_rate = 0.0;
  };

  /// \brief Point-in-time SLO state: lifetime totals plus per-window
  /// burn rates.
  struct Snapshot {
    std::uint64_t total = 0;
    std::uint64_t ok = 0;
    std::uint64_t fast = 0;
    /// Lifetime ok/total (1.0 when nothing recorded yet).
    double availability = 1.0;
    /// Lifetime fast/total (1.0 when nothing recorded yet).
    double latency_compliance = 1.0;
    /// Max availability_burn_rate across windows.
    double worst_availability_burn = 0.0;
    /// Max latency_burn_rate across windows.
    double worst_latency_burn = 0.0;
    std::vector<WindowBurn> windows;
  };

  Snapshot snapshot() const;

  /// Test seam: snapshot as of an explicit absolute second.
  Snapshot SnapshotAt(std::uint64_t now_s) const;

  /// Clears all buckets and lifetime totals (options persist).
  void Reset();

  const SloOptions& options() const { return options_; }

 private:
  /// One ring bucket, keyed by its absolute period so stale slots are
  /// detected lazily on reuse.
  struct Bucket {
    std::uint64_t period = 0;
    std::uint64_t total = 0;
    std::uint64_t ok = 0;
    std::uint64_t fast = 0;
  };

  Bucket& BucketForLocked(std::uint64_t now_s);

  mutable std::mutex mutex_;  // LOCK_RANK(35)
  const SloOptions options_;
  std::vector<Bucket> ring_;  // GUARDED_BY(mutex_)
  std::uint64_t total_ = 0;  // GUARDED_BY(mutex_)
  std::uint64_t ok_ = 0;  // GUARDED_BY(mutex_)
  std::uint64_t fast_ = 0;  // GUARDED_BY(mutex_)
};

/// Renders a Snapshot as a JSON object (used by `/statusz` and bench
/// telemetry); snake_case keys.
std::string SloSnapshotJson(const SloMonitor::Snapshot& snapshot);

}  // namespace snor::obs

#endif  // SNOR_OBS_SLO_H_
