#ifndef SNOR_OBS_JSON_H_
#define SNOR_OBS_JSON_H_

/// \file
/// Minimal JSON emitter and parser used by the observability subsystem:
/// Chrome trace export, metrics dumps, and the bench telemetry files.
/// Deliberately tiny — objects parse into std::map (deterministic
/// iteration, matching the project's report-determinism rule).
///
/// Must not depend on util/ (obs sits below util in the layering).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace snor::obs {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// included).
std::string JsonEscape(std::string_view text);

/// \brief Streaming JSON emitter with automatic comma placement.
///
/// Usage: Begin/End Object/Array, Key inside objects, then a value call.
/// The caller is responsible for well-formed nesting (unbalanced use is a
/// programming error and yields invalid JSON, not UB).
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; the next value call attaches to it.
  void Key(std::string_view key);

  void String(std::string_view value);
  /// Finite doubles render with up to 12 significant digits; NaN and
  /// infinities render as null (JSON has no spelling for them).
  void Number(double value);
  void Int(std::int64_t value);
  void Bool(bool value);
  void Null();

  /// Embeds `json` verbatim as one value (must itself be valid JSON).
  void Raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  /// Number of values emitted at each open nesting level.
  std::vector<int> counts_;
  bool after_key_ = false;
};

/// \brief Parsed JSON value (tagged union, std::map for objects).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array_items;
  std::map<std::string, JsonValue> object_items;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses `text` into `*out`. On failure returns false and, when `error`
/// is non-null, stores a short description with the byte offset.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error);

}  // namespace snor::obs

#endif  // SNOR_OBS_JSON_H_
