#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/json.h"

namespace snor::obs {
namespace {

std::int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool IsValidMetricName(std::string_view name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool has_dot = false;
  char prev = '\0';
  for (char c : name) {
    if (c == '.') {
      if (prev == '.') return false;  // Empty segment.
      has_dot = true;
    } else if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                 c == '_' || c == '-')) {
      return false;
    }
    prev = c;
  }
  return has_dot;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t index =
      static_cast<std::size_t>(it - bounds_.begin());  // Overflow at end.
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, value);
  AtomicMinDouble(min_, value);
  AtomicMaxDouble(max_, value);
}

double Histogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return v == std::numeric_limits<double>::infinity() ? 0.0 : v;
}

double Histogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return v == -std::numeric_limits<double>::infinity() ? 0.0 : v;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  return i < buckets_.size() ? buckets_[i].load(std::memory_order_relaxed)
                             : 0;
}

double Histogram::Percentile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target observation (1-based, nearest-rank).
  const double rank = std::max(1.0, p / 100.0 * static_cast<double>(total));
  double seen = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double in_bucket =
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= rank) {
      // Interpolate linearly inside the bucket, then clamp to observed
      // extremes so small samples don't report bucket edges no value hit.
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi =
          i < bounds_.size() ? bounds_[i] : max();  // Overflow bucket.
      const double fraction = (rank - seen) / in_bucket;
      const double estimate = lo + (hi - lo) * fraction;
      return std::clamp(estimate, min(), max());
    }
    seen += in_bucket;
  }
  return max();
}

namespace {

/// Nearest-rank percentile over a captured bucket array (same math as
/// Histogram::Percentile but torn-read safe: every field comes from the
/// one-pass capture, and the result is clamped to the reconciled
/// [min, max]).
double PercentileFromBuckets(const std::vector<std::uint64_t>& buckets,
                             const std::vector<double>& bounds, double p,
                             std::uint64_t total, double mn, double mx) {
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = std::max(1.0, p / 100.0 * static_cast<double>(total));
  double seen = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= rank) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : mx;
      const double fraction = (rank - seen) / in_bucket;
      const double estimate = lo + (hi - lo) * fraction;
      return std::clamp(estimate, mn, mx);
    }
    seen += in_bucket;
  }
  return mx;
}

}  // namespace

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  // One-pass capture of the buckets; everything else is derived from (or
  // reconciled against) this capture so a concurrent Record can never
  // make the emitted fields disagree.
  snap.buckets.resize(buckets_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap.buckets[i];
  }
  snap.count = total;
  if (total == 0) return snap;

  // A concurrent Record may have bumped a bucket before updating
  // min_/max_/sum_; fall back to bucket edges for unset extremes and
  // clamp sum into the only range consistent with count/min/max.
  double mn = min_.load(std::memory_order_relaxed);
  double mx = max_.load(std::memory_order_relaxed);
  if (mn == std::numeric_limits<double>::infinity()) {
    std::size_t first = 0;
    while (snap.buckets[first] == 0) ++first;
    mn = first == 0 ? 0.0 : bounds_[first - 1];
  }
  if (mx == -std::numeric_limits<double>::infinity()) {
    std::size_t last = snap.buckets.size() - 1;
    while (snap.buckets[last] == 0) --last;
    mx = last < bounds_.size() ? bounds_[last] : mn;
  }
  if (mx < mn) mx = mn;
  snap.min = mn;
  snap.max = mx;
  const double total_f = static_cast<double>(total);
  snap.sum = std::clamp(sum_.load(std::memory_order_relaxed), total_f * mn,
                        total_f * mx);
  snap.p50 = PercentileFromBuckets(snap.buckets, bounds_, 50.0, total, mn, mx);
  snap.p95 = PercentileFromBuckets(snap.buckets, bounds_, 95.0, total, mn, mx);
  snap.p99 = PercentileFromBuckets(snap.buckets, bounds_, 99.0, total, mn, mx);
  return snap;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> DefaultLatencyBoundsUs() {
  return {1.0,    2.0,    5.0,    10.0,   20.0,   50.0,   100.0,
          200.0,  500.0,  1e3,    2e3,    5e3,    1e4,    2e4,
          5e4,    1e5,    2e5,    5e5,    1e6,    2e6,    5e6};
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return histogram(name, DefaultLatencyBoundsUs());
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricsRegistry::DumpText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "counter %s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter->value()));
    out += line;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(line, sizeof(line), "gauge %s = %.6g\n", name.c_str(),
                  gauge->value());
    out += line;
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot s = histogram->snapshot();
    std::snprintf(line, sizeof(line),
                  "histogram %s count=%llu sum=%.6g min=%.6g max=%.6g "
                  "p50=%.6g p95=%.6g p99=%.6g\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.sum, s.min, s.max, s.p50, s.p95, s.p99);
    out += line;
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter json;
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.Key(name);
    json.Int(static_cast<std::int64_t>(counter->value()));
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.Key(name);
    json.Number(gauge->value());
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot s = histogram->snapshot();
    json.Key(name);
    json.BeginObject();
    json.Key("count");
    json.Int(static_cast<std::int64_t>(s.count));
    json.Key("sum");
    json.Number(s.sum);
    json.Key("min");
    json.Number(s.min);
    json.Key("max");
    json.Number(s.max);
    json.Key("p50");
    json.Number(s.p50);
    json.Key("p95");
    json.Number(s.p95);
    json.Key("p99");
    json.Number(s.p99);
    json.Key("bounds");
    json.BeginArray();
    for (double bound : s.bounds) json.Number(bound);
    json.EndArray();
    json.Key("buckets");
    json.BeginArray();
    for (std::uint64_t b : s.buckets) json.Int(static_cast<std::int64_t>(b));
    json.EndArray();
    // Running totals; the last entry always equals "count".
    json.Key("cumulative");
    json.BeginArray();
    std::uint64_t running = 0;
    for (std::uint64_t b : s.buckets) {
      running += b;
      json.Int(static_cast<std::int64_t>(running));
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

ScopedLatencyUs::ScopedLatencyUs(Histogram& histogram)
    : histogram_(histogram), start_us_(SteadyNowMicros()) {}

ScopedLatencyUs::~ScopedLatencyUs() {
  const std::int64_t elapsed = SteadyNowMicros() - start_us_;
  histogram_.Record(elapsed > 0 ? static_cast<double>(elapsed) : 0.0);
}

}  // namespace snor::obs
