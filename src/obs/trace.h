#ifndef SNOR_OBS_TRACE_H_
#define SNOR_OBS_TRACE_H_

/// \file
/// Lock-cheap, thread-safe trace recorder with RAII scoped spans and
/// request-scoped distributed tracing.
///
/// Spans are recorded into per-thread ring buffers (one uncontended mutex
/// per thread; the only contention is with an exporting reader) and can be
/// exported as Chrome `trace_event` JSON, loadable in Perfetto or
/// chrome://tracing. Span names follow the `layer.stage.detail` lowercase
/// dotted convention (enforced by snor_lint's span-metric-name rule).
///
/// Request scoping: a `TraceContext` (request id + parent span id)
/// travels with a request across threads — installed with
/// `ScopedTraceContext` (or `SNOR_TRACE_SPAN_CTX`) on whichever thread is
/// currently working on the request. Every span recorded while a context
/// is installed carries the request id plus a fresh span id and its
/// parent's span id, and the Chrome export adds `flow` events keyed by
/// request id so one request's spans across producer, dispatcher, and
/// worker threads render as a single causal chain in Perfetto.
///
/// Tail-keep retention: `RequestTraceStore` buffers the spans of each
/// in-flight request and, at `Finish`, keeps the full span tree only for
/// requests that errored or exceeded a latency threshold (plus an
/// optional 1-in-N sample of healthy requests). Everything else is
/// discarded, which keeps request tracing cheap enough to leave on in a
/// live service; kept traces feed the introspection server's `/tracez`.
///
/// Cost model:
///  - disabled (default): one relaxed atomic load per span site, no
///    allocation, no thread registration;
///  - enabled: two steady_clock reads plus one uncontended mutex-guarded
///    ring write per span;
///  - compiled out (`-DSNOR_TRACE_COMPILED=0`): `SNOR_TRACE_SPAN` expands
///    to nothing.
///
/// Runtime switch: `SNOR_TRACE` environment variable (see
/// `InitTraceFromEnv`). `SNOR_TRACE=trace.json` enables tracing and writes
/// the Chrome trace to `trace.json` at process exit; `SNOR_TRACE=1` uses
/// the default path `trace.json`; unset/empty/`0` keeps tracing off.
///
/// This header lives at the bottom of the dependency stack: it must not
/// include anything from util/ (util links against snor_obs).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef SNOR_TRACE_COMPILED
#define SNOR_TRACE_COMPILED 1
#endif

namespace snor::obs {

/// Span names longer than this are truncated when recorded.
inline constexpr std::size_t kTraceMaxNameLength = 47;

/// \brief One recorded span (or instant event) in trace order.
struct TraceEvent {
  char name[kTraceMaxNameLength + 1] = {};
  /// Microseconds since the recorder's enable() epoch.
  std::uint64_t start_us = 0;
  /// Span duration; 0 for instant events.
  std::uint64_t dur_us = 0;
  /// Request this span belongs to (0 = not request-scoped).
  std::uint64_t request_id = 0;
  /// Process-unique id of this span (0 for non-request-scoped spans).
  std::uint64_t span_id = 0;
  /// Span id of the enclosing span in the request's causal chain
  /// (0 = root of the request).
  std::uint64_t parent_span = 0;
  /// Small sequential id of the recording thread (see CurrentThreadId).
  std::int32_t tid = 0;
  /// Nesting depth at record time (outermost span = 0).
  std::int32_t depth = 0;
  /// True for point-in-time events (fault fires, markers).
  bool instant = false;
};

/// \brief Causal scope of one request: the request id plus the span id
/// the next recorded span should attach to. Copyable and cheap — it is
/// handed across threads inside `QueuedRequest` and installed on each
/// thread that works on the request.
struct TraceContext {
  /// 0 means "no request scope"; real ids come from NextTraceRequestId.
  std::uint64_t request_id = 0;
  /// Span id new child spans attach to (0 = root of the request).
  std::uint64_t parent_span = 0;

  bool active() const { return request_id != 0; }
};

/// Process-unique, non-zero request id for a new TraceContext.
std::uint64_t NextTraceRequestId();

/// The calling thread's currently installed context (inactive when none).
TraceContext CurrentTraceContext();

/// \brief Installs `context` as the calling thread's trace context for
/// the scope, restoring the previous context on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// Small, stable, sequential id for the calling thread (1, 2, 3, ...).
/// Shared by the tracer and the logging prefix so traces and logs
/// correlate.
int CurrentThreadId();

namespace internal {
/// Global runtime switch, read on the span fast path.
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// True when tracing is currently enabled (relaxed load; safe anywhere).
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// \brief Process-wide trace recorder: a registry of per-thread ring
/// buffers plus the export logic.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Enables recording and resets the time epoch to "now".
  void Enable();

  /// Disables recording (already-buffered events are kept).
  void Disable();

  /// Drops every buffered event and clears counters. Thread buffers stay
  /// registered (live threads hold pointers into the registry).
  void Reset();

  /// Where `FlushTrace` writes the Chrome trace; set by InitTraceFromEnv.
  void set_output_path(std::string path);
  std::string output_path() const;

  /// Ring capacity (events per thread) used for buffers registered after
  /// the call. Default: 65536.
  void set_buffer_capacity(std::size_t events);

  /// Records one completed span for the calling thread. The trailing
  /// request/span/parent ids attach the span to a request's causal chain
  /// (all 0 for spans recorded outside any TraceContext).
  void RecordComplete(const char* name, std::uint64_t start_us,
                      std::uint64_t dur_us, std::int32_t depth,
                      std::uint64_t request_id = 0, std::uint64_t span_id = 0,
                      std::uint64_t parent_span = 0);

  /// Records a point-in-time event for the calling thread, tagged with
  /// the thread's current TraceContext when one is installed.
  void RecordInstant(const char* name);

  /// Microseconds since the last Enable().
  std::uint64_t NowMicros() const;

  /// Number of threads that have registered a buffer.
  std::size_t thread_count() const;

  /// Events recorded since the last Reset/Enable (including overwritten).
  std::uint64_t recorded_count() const;

  /// Events lost to ring overwrite since the last Reset/Enable.
  std::uint64_t dropped_count() const;

  /// Copies every buffered event, grouped by thread in record order.
  std::vector<TraceEvent> Snapshot() const;

  /// Renders the buffered events as Chrome trace_event JSON.
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path`; false on IO failure.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  struct ThreadBuffer;

  TraceRecorder() = default;

  ThreadBuffer* BufferForThisThread();
  void Push(const TraceEvent& event);

  mutable std::mutex registry_mutex_;  // LOCK_RANK(20)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;  // GUARDED_BY(registry_mutex_)
  std::string output_path_;  // GUARDED_BY(registry_mutex_)
  std::size_t buffer_capacity_ = 65536;  // GUARDED_BY(registry_mutex_)
  std::atomic<std::int64_t> epoch_us_{0};
  std::atomic<std::uint64_t> recorded_{0};
};

/// Parses the `SNOR_TRACE` environment variable once: non-empty and not
/// "0" enables tracing ("1" = default path `trace.json`, anything else is
/// the output path) and registers an at-exit `FlushTrace`. Safe to call
/// from multiple places; only the first call does work.
void InitTraceFromEnv();

/// Writes the trace to the configured output path when tracing is enabled
/// and a path is set. Returns true when a file was written.
bool FlushTrace();

/// \brief RAII scoped span. Constructed against a *string literal* (the
/// pointer must outlive the span); records on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
#if SNOR_TRACE_COMPILED
    if (TraceEnabled()) Begin(name);
#endif
  }

  ~ScopedSpan() {
    if (active_) End();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Begin(const char* name);
  void End();

  const char* name_ = nullptr;
  std::uint64_t start_us_ = 0;
  std::uint64_t request_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_ = 0;
  std::int32_t depth_ = 0;
  bool active_ = false;
};

/// \brief Installs a TraceContext and opens a span under it in one RAII
/// object (the `SNOR_TRACE_SPAN_CTX` macro). Member order matters: the
/// context must be installed before the span begins.
class ScopedContextSpan {
 public:
  ScopedContextSpan(const char* name, const TraceContext& context)
      : context_(context), span_(name) {}

  ScopedContextSpan(const ScopedContextSpan&) = delete;
  ScopedContextSpan& operator=(const ScopedContextSpan&) = delete;

 private:
  ScopedTraceContext context_;
  ScopedSpan span_;
};

/// \brief Tail-keep retention knobs (see RequestTraceStore).
struct RequestTraceOptions {
  /// Keep the full span tree of every errored request.
  bool keep_errors = true;
  /// Keep requests whose end-to-end latency reaches this threshold;
  /// <= 0 disables latency-triggered keeps.
  double latency_keep_threshold_us = 0.0;
  /// Additionally keep every Nth healthy request (head sampling);
  /// 0 disables sampling.
  std::uint64_t sample_every = 0;
  /// Ring of kept traces (oldest evicted first).
  std::size_t max_kept = 64;
  /// Span cap per in-flight request (overflow spans are counted, not
  /// buffered).
  std::size_t max_spans_per_request = 256;
  /// Cap on concurrently buffered (unfinished) requests; the oldest
  /// pending request is evicted past this.
  std::size_t max_pending = 1024;
};

/// \brief One retained request trace.
struct RequestTrace {
  std::uint64_t request_id = 0;
  bool error = false;
  bool deadline_exceeded = false;
  /// True when kept by 1-in-N sampling rather than the tail policy.
  bool sampled = false;
  double latency_us = 0.0;
  std::vector<TraceEvent> spans;
};

/// \brief Per-request span buffer with tail-keep retention.
///
/// While enabled, every span recorded under an active TraceContext is
/// also copied into the request's pending buffer. `Finish` then either
/// promotes the buffer into the bounded ring of kept traces (errors,
/// slow requests, and a 1-in-N sample) or discards it. All methods are
/// thread-safe; `Offer` is a no-op (one relaxed atomic load) while
/// disabled.
class RequestTraceStore {
 public:
  static RequestTraceStore& Global();

  RequestTraceStore() = default;
  RequestTraceStore(const RequestTraceStore&) = delete;
  RequestTraceStore& operator=(const RequestTraceStore&) = delete;

  /// Enables tail-keep collection (and span recording itself: the
  /// recorder is enabled too, since spans are the raw material).
  void Enable(const RequestTraceOptions& options = {});

  /// Stops collecting; already-kept traces remain readable.
  void Disable();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Buffers one request-scoped span (called by the recorder).
  void Offer(const TraceEvent& event);

  /// Closes out a request: keep or drop its buffered spans per the
  /// tail-keep policy. Safe to call for ids that never recorded a span.
  void Finish(std::uint64_t request_id, bool error, bool deadline_exceeded,
              double latency_us);

  /// \brief Monotonic accounting since the last Enable/Reset.
  struct Stats {
    std::uint64_t finished = 0;
    std::uint64_t kept = 0;
    /// Finished requests whose spans were discarded (healthy + unsampled).
    std::uint64_t dropped = 0;
    /// Spans not buffered because a request hit max_spans_per_request.
    std::uint64_t span_overflow = 0;
    /// Pending requests evicted past max_pending before finishing.
    std::uint64_t evicted = 0;
  };
  Stats stats() const;

  /// Copies the kept traces, oldest first.
  std::vector<RequestTrace> Kept() const;

  /// Kept traces + stats as a JSON object (the `/tracez` payload).
  std::string TracezJson() const;

  /// Drops kept traces, pending buffers, and counters (options persist).
  void Reset();

 private:
  void KeepLocked(RequestTrace trace);

  mutable std::mutex mutex_;  // LOCK_RANK(25)
  RequestTraceOptions options_;  // GUARDED_BY(mutex_)
  std::map<std::uint64_t, std::vector<TraceEvent>>
      pending_;  // GUARDED_BY(mutex_)
  std::deque<RequestTrace> kept_;  // GUARDED_BY(mutex_)
  Stats stats_;  // GUARDED_BY(mutex_)
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> sample_counter_{0};
};

/// Records a point-in-time event (e.g. a fault fire) when enabled.
inline void TraceInstant(const char* name) {
#if SNOR_TRACE_COMPILED
  if (TraceEnabled()) TraceRecorder::Global().RecordInstant(name);
#else
  (void)name;
#endif
}

}  // namespace snor::obs

#define SNOR_OBS_CONCAT_INNER(a, b) a##b
#define SNOR_OBS_CONCAT(a, b) SNOR_OBS_CONCAT_INNER(a, b)

#if SNOR_TRACE_COMPILED
/// Opens a scoped trace span named `name` (a `layer.stage.detail` string
/// literal) that closes at the end of the enclosing scope.
#define SNOR_TRACE_SPAN(name) \
  ::snor::obs::ScopedSpan SNOR_OBS_CONCAT(snor_trace_span_, __COUNTER__)(name)
/// Installs `ctx` (a TraceContext) as the thread's request scope and
/// opens a span named `name` under it, both closing with the scope.
#define SNOR_TRACE_SPAN_CTX(name, ctx)                             \
  ::snor::obs::ScopedContextSpan SNOR_OBS_CONCAT(snor_trace_ctx_, \
                                                 __COUNTER__)(name, ctx)
#else
#define SNOR_TRACE_SPAN(name) static_cast<void>(0)
#define SNOR_TRACE_SPAN_CTX(name, ctx) static_cast<void>(0)
#endif

#endif  // SNOR_OBS_TRACE_H_
