#ifndef SNOR_OBS_TRACE_H_
#define SNOR_OBS_TRACE_H_

/// \file
/// Lock-cheap, thread-safe trace recorder with RAII scoped spans.
///
/// Spans are recorded into per-thread ring buffers (one uncontended mutex
/// per thread; the only contention is with an exporting reader) and can be
/// exported as Chrome `trace_event` JSON, loadable in Perfetto or
/// chrome://tracing. Span names follow the `layer.stage.detail` lowercase
/// dotted convention (enforced by snor_lint's span-metric-name rule).
///
/// Cost model:
///  - disabled (default): one relaxed atomic load per span site, no
///    allocation, no thread registration;
///  - enabled: two steady_clock reads plus one uncontended mutex-guarded
///    ring write per span;
///  - compiled out (`-DSNOR_TRACE_COMPILED=0`): `SNOR_TRACE_SPAN` expands
///    to nothing.
///
/// Runtime switch: `SNOR_TRACE` environment variable (see
/// `InitTraceFromEnv`). `SNOR_TRACE=trace.json` enables tracing and writes
/// the Chrome trace to `trace.json` at process exit; `SNOR_TRACE=1` uses
/// the default path `trace.json`; unset/empty/`0` keeps tracing off.
///
/// This header lives at the bottom of the dependency stack: it must not
/// include anything from util/ (util links against snor_obs).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef SNOR_TRACE_COMPILED
#define SNOR_TRACE_COMPILED 1
#endif

namespace snor::obs {

/// Span names longer than this are truncated when recorded.
inline constexpr std::size_t kTraceMaxNameLength = 47;

/// \brief One recorded span (or instant event) in trace order.
struct TraceEvent {
  char name[kTraceMaxNameLength + 1] = {};
  /// Microseconds since the recorder's enable() epoch.
  std::uint64_t start_us = 0;
  /// Span duration; 0 for instant events.
  std::uint64_t dur_us = 0;
  /// Small sequential id of the recording thread (see CurrentThreadId).
  std::int32_t tid = 0;
  /// Nesting depth at record time (outermost span = 0).
  std::int32_t depth = 0;
  /// True for point-in-time events (fault fires, markers).
  bool instant = false;
};

/// Small, stable, sequential id for the calling thread (1, 2, 3, ...).
/// Shared by the tracer and the logging prefix so traces and logs
/// correlate.
int CurrentThreadId();

namespace internal {
/// Global runtime switch, read on the span fast path.
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// True when tracing is currently enabled (relaxed load; safe anywhere).
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// \brief Process-wide trace recorder: a registry of per-thread ring
/// buffers plus the export logic.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Enables recording and resets the time epoch to "now".
  void Enable();

  /// Disables recording (already-buffered events are kept).
  void Disable();

  /// Drops every buffered event and clears counters. Thread buffers stay
  /// registered (live threads hold pointers into the registry).
  void Reset();

  /// Where `FlushTrace` writes the Chrome trace; set by InitTraceFromEnv.
  void set_output_path(std::string path);
  std::string output_path() const;

  /// Ring capacity (events per thread) used for buffers registered after
  /// the call. Default: 65536.
  void set_buffer_capacity(std::size_t events);

  /// Records one completed span for the calling thread.
  void RecordComplete(const char* name, std::uint64_t start_us,
                      std::uint64_t dur_us, std::int32_t depth);

  /// Records a point-in-time event for the calling thread.
  void RecordInstant(const char* name);

  /// Microseconds since the last Enable().
  std::uint64_t NowMicros() const;

  /// Number of threads that have registered a buffer.
  std::size_t thread_count() const;

  /// Events recorded since the last Reset/Enable (including overwritten).
  std::uint64_t recorded_count() const;

  /// Events lost to ring overwrite since the last Reset/Enable.
  std::uint64_t dropped_count() const;

  /// Copies every buffered event, grouped by thread in record order.
  std::vector<TraceEvent> Snapshot() const;

  /// Renders the buffered events as Chrome trace_event JSON.
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path`; false on IO failure.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  struct ThreadBuffer;

  TraceRecorder() = default;

  ThreadBuffer* BufferForThisThread();
  void Push(const TraceEvent& event);

  mutable std::mutex registry_mutex_;  // LOCK_RANK(20)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;  // GUARDED_BY(registry_mutex_)
  std::string output_path_;  // GUARDED_BY(registry_mutex_)
  std::size_t buffer_capacity_ = 65536;  // GUARDED_BY(registry_mutex_)
  std::atomic<std::int64_t> epoch_us_{0};
  std::atomic<std::uint64_t> recorded_{0};
};

/// Parses the `SNOR_TRACE` environment variable once: non-empty and not
/// "0" enables tracing ("1" = default path `trace.json`, anything else is
/// the output path) and registers an at-exit `FlushTrace`. Safe to call
/// from multiple places; only the first call does work.
void InitTraceFromEnv();

/// Writes the trace to the configured output path when tracing is enabled
/// and a path is set. Returns true when a file was written.
bool FlushTrace();

/// \brief RAII scoped span. Constructed against a *string literal* (the
/// pointer must outlive the span); records on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
#if SNOR_TRACE_COMPILED
    if (TraceEnabled()) Begin(name);
#endif
  }

  ~ScopedSpan() {
    if (active_) End();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Begin(const char* name);
  void End();

  const char* name_ = nullptr;
  std::uint64_t start_us_ = 0;
  std::int32_t depth_ = 0;
  bool active_ = false;
};

/// Records a point-in-time event (e.g. a fault fire) when enabled.
inline void TraceInstant(const char* name) {
#if SNOR_TRACE_COMPILED
  if (TraceEnabled()) TraceRecorder::Global().RecordInstant(name);
#else
  (void)name;
#endif
}

}  // namespace snor::obs

#define SNOR_OBS_CONCAT_INNER(a, b) a##b
#define SNOR_OBS_CONCAT(a, b) SNOR_OBS_CONCAT_INNER(a, b)

#if SNOR_TRACE_COMPILED
/// Opens a scoped trace span named `name` (a `layer.stage.detail` string
/// literal) that closes at the end of the enclosing scope.
#define SNOR_TRACE_SPAN(name) \
  ::snor::obs::ScopedSpan SNOR_OBS_CONCAT(snor_trace_span_, __COUNTER__)(name)
#else
#define SNOR_TRACE_SPAN(name) static_cast<void>(0)
#endif

#endif  // SNOR_OBS_TRACE_H_
