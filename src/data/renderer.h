#ifndef SNOR_DATA_RENDERER_H_
#define SNOR_DATA_RENDERER_H_

#include <cstdint>

#include "data/object_class.h"
#include "img/image.h"

namespace snor {

/// \brief Controls how one synthetic object view is rendered.
///
/// The renderer is the repository's stand-in for ShapeNet 2D model views
/// and NYU Depth V2 segmented crops (see DESIGN.md §2). A *model* is a
/// deterministic parametrization of a class archetype (`model_id` seeds the
/// geometry/colour parameters), so two views of the same model look like
/// the same object from different viewpoints.
struct RenderOptions {
  /// Output canvas is canvas_size x canvas_size RGB.
  int canvas_size = 96;
  /// true: white background (ShapeNet-style 2D views);
  /// false: black background (NYU-style segmented crops).
  bool white_background = true;
  /// In-plane view rotation in degrees (the paper derives extra views by
  /// rotating existing ones).
  double view_angle_deg = 0.0;
  /// Object scale relative to the canvas (1.0 fills ~75%).
  double scale = 1.0;
  /// Std-dev of additive per-pixel Gaussian RGB noise (sensor noise).
  double noise_stddev = 0.0;
  /// Brightness multiplier (illumination variation), 1.0 = neutral.
  double illumination = 1.0;
  /// Fraction [0, 0.5] of the object hidden by a background-coloured
  /// occluder (NYU segmentation imperfections).
  double occlusion_fraction = 0.0;
  /// Vertical/horizontal aspect multiplier (!= 1 squashes or stretches
  /// the silhouette, standing in for out-of-plane 3-D viewpoint change,
  /// to which Hu moments are *not* invariant).
  double aspect = 1.0;
  /// Seed for pixel-level nuisance (noise/occluder placement).
  std::uint64_t nuisance_seed = 0;
};

/// Renders one view of the `model_id`-th model of class `cls`.
/// Deterministic: same (cls, model_id, options) always yields the same
/// image.
ImageU8 RenderObjectView(ObjectClass cls, int model_id,
                         const RenderOptions& options);

}  // namespace snor

#endif  // SNOR_DATA_RENDERER_H_
