#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace snor {

std::array<int, kNumClasses> Dataset::ClassCounts() const {
  std::array<int, kNumClasses> counts{};
  for (const auto& item : items) {
    ++counts[static_cast<std::size_t>(ClassIndex(item.label))];
  }
  return counts;
}

const std::array<int, kNumClasses>& ShapeNetSet1Counts() {
  // Chair, Bottle, Paper, Book, Table, Box, Window, Door, Sofa, Lamp.
  static constexpr std::array<int, kNumClasses> kCounts = {
      14, 12, 8, 8, 8, 8, 6, 4, 8, 6};
  return kCounts;
}

const std::array<int, kNumClasses>& ShapeNetSet2Counts() {
  static constexpr std::array<int, kNumClasses> kCounts = {
      10, 10, 10, 10, 10, 10, 10, 10, 10, 10};
  return kCounts;
}

const std::array<int, kNumClasses>& NyuSetCounts() {
  static constexpr std::array<int, kNumClasses> kCounts = {
      1000, 920, 790, 760, 726, 637, 617, 511, 495, 478};
  return kCounts;
}

namespace {

int ScaledCount(int nominal, double fraction) {
  SNOR_CHECK_GT(fraction, 0.0);
  SNOR_CHECK_LE(fraction, 1.0);
  return std::max(1, static_cast<int>(std::lround(nominal * fraction)));
}

}  // namespace

Dataset MakeShapeNetSet1(const DatasetOptions& options) {
  Dataset ds;
  ds.name = "ShapeNetSet1";
  for (ObjectClass cls : AllClasses()) {
    const int total =
        ScaledCount(ShapeNetSet1Counts()[static_cast<std::size_t>(
                        ClassIndex(cls))],
                    options.sample_fraction);
    // Two models per class (ids 0 and 1); views alternate between models.
    // Views are rotations in 90-degree steps (the paper derives missing
    // views by rotating existing ones), with a mild scale variant past
    // the fourth view.
    for (int v = 0; v < total; ++v) {
      const int model_id = v % 2;
      const int view_of_model = v / 2;
      RenderOptions ro;
      ro.canvas_size = options.canvas_size;
      ro.white_background = true;
      ro.view_angle_deg = 90.0 * (view_of_model % 4);
      ro.scale = view_of_model < 4 ? 1.0 : 0.85;
      LabeledImage item;
      item.image = RenderObjectView(cls, model_id, ro);
      item.label = cls;
      item.model_id = model_id;
      item.view_id = view_of_model;
      ds.items.push_back(std::move(item));
    }
  }
  return ds;
}

Dataset MakeShapeNetSet2(const DatasetOptions& options) {
  Dataset ds;
  ds.name = "ShapeNetSet2";
  for (ObjectClass cls : AllClasses()) {
    const int total =
        ScaledCount(ShapeNetSet2Counts()[static_cast<std::size_t>(
                        ClassIndex(cls))],
                    options.sample_fraction);
    for (int v = 0; v < total; ++v) {
      const int model_id = 2 + (v % 2);  // Models 2 and 3: unseen in SNS1.
      const int view_of_model = v / 2;
      RenderOptions ro;
      ro.canvas_size = options.canvas_size;
      ro.white_background = true;
      // Denser angular coverage than SNS1 plus scale and elevation
      // (aspect) spread — 2D views of a 3D model from varied viewpoints.
      ro.view_angle_deg = 45.0 * view_of_model;
      ro.scale = 1.0 - 0.05 * (view_of_model % 3);
      ro.aspect = 1.0 + 0.15 * ((view_of_model % 3) - 1);
      // SNS2 views come from a different collection run than SNS1: mild
      // rendering noise breaks pixel-exact local patches across the sets.
      ro.noise_stddev = 5.0;
      ro.nuisance_seed = options.seed * 977 + static_cast<std::uint64_t>(v);
      LabeledImage item;
      item.image = RenderObjectView(cls, model_id, ro);
      item.label = cls;
      item.model_id = model_id;
      item.view_id = view_of_model;
      ds.items.push_back(std::move(item));
    }
  }
  return ds;
}

Dataset MakeNyuSet(const DatasetOptions& options) {
  Dataset ds;
  ds.name = "NYUSet";
  Rng rng(options.seed);
  for (ObjectClass cls : AllClasses()) {
    const int total = ScaledCount(
        NyuSetCounts()[static_cast<std::size_t>(ClassIndex(cls))],
        options.sample_fraction);
    for (int i = 0; i < total; ++i) {
      // Wide intra-class variety: 24 distinct "real world" object models,
      // none of which coincide with the ShapeNet gallery models (ids >= 4).
      const int model_id = 4 + static_cast<int>(rng.Index(24));
      RenderOptions ro;
      ro.canvas_size = options.canvas_size;
      ro.white_background = false;  // NYU crops are black-masked.
      ro.view_angle_deg = rng.Uniform(-35.0, 35.0);
      ro.scale = rng.Uniform(0.65, 1.1);
      // Out-of-plane viewpoint stand-in: real crops are photographed from
      // arbitrary elevations, which Hu moments are not invariant to.
      ro.aspect = rng.Uniform(0.6, 1.35);
      ro.illumination = rng.Uniform(0.55, 1.15);
      ro.noise_stddev = rng.Uniform(4.0, 14.0);
      // Real NYU masks are frequently truncated by furniture/frame edges.
      ro.occlusion_fraction = rng.Bernoulli(0.5) ? rng.Uniform(0.08, 0.4)
                                                 : 0.0;
      ro.nuisance_seed = rng.NextU64();
      LabeledImage item;
      item.image = RenderObjectView(cls, model_id, ro);
      item.label = cls;
      item.model_id = model_id;
      item.view_id = i;
      ds.items.push_back(std::move(item));
    }
  }
  return ds;
}

}  // namespace snor
