#ifndef SNOR_DATA_PAIRS_H_
#define SNOR_DATA_PAIRS_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "nn/trainer.h"

namespace snor {

/// \brief An image-pair example referencing dataset indices.
struct PairExample {
  /// Index into the first (query) dataset.
  int index_a = 0;
  /// Index into the second (gallery) dataset (may be the same dataset).
  int index_b = 0;
  /// 1 when both items share the object class ("similar"), else 0.
  int label = 0;
};

/// All unordered pairs {i, j}, i < j, within one dataset, labelled by
/// class equality. For the 82-view SNS1 this yields exactly the paper's
/// 3,321 test pairs (§3.4).
[[nodiscard]] std::vector<PairExample> MakeAllUnorderedPairs(
    const Dataset& dataset);

/// Cartesian product pairs between a query and a gallery dataset,
/// labelled by class equality (used for the NYU x SNS1 test set).
[[nodiscard]] std::vector<PairExample> MakeCrossProductPairs(
    const Dataset& query, const Dataset& gallery);

/// Samples `n_pairs` ordered pairs from `dataset` with the requested
/// positive fraction (the paper's SNS2 training set: 9,450 pairs, 52%
/// similar). Positives repeat when the dataset has too few same-class
/// permutations; sampling is deterministic in `seed`.
[[nodiscard]] std::vector<PairExample> MakeBalancedPairSet(
    const Dataset& dataset, int n_pairs, double positive_fraction,
    std::uint64_t seed);

/// Subsamples `pairs` to `n_pairs` with the given positive fraction
/// (used to mirror the paper's 8,200-pair NYU+SNS1 support split of
/// 4,160 similar / 4,040 dissimilar).
std::vector<PairExample> ResamplePairs(const std::vector<PairExample>& pairs,
                                       int n_pairs, double positive_fraction,
                                       std::uint64_t seed);

/// Converts pair examples into the tensors consumed by `XCorrModel`:
/// both images are resized to (width, height) and scaled to [0, 1].
/// `gallery` may equal `query` for within-set pairs.
PairTensorDataset PairsToTensors(const std::vector<PairExample>& pairs,
                                 const Dataset& query, const Dataset& gallery,
                                 int width, int height);

}  // namespace snor

#endif  // SNOR_DATA_PAIRS_H_
