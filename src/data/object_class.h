#ifndef SNOR_DATA_OBJECT_CLASS_H_
#define SNOR_DATA_OBJECT_CLASS_H_

#include <array>
#include <string_view>

namespace snor {

/// \brief The ten indoor object categories studied in the paper (Table 1).
enum class ObjectClass {
  kChair = 0,
  kBottle,
  kPaper,
  kBook,
  kTable,
  kBox,
  kWindow,
  kDoor,
  kSofa,
  kLamp,
};

/// Number of object categories.
inline constexpr int kNumClasses = 10;

/// All classes in Table-1 order.
const std::array<ObjectClass, kNumClasses>& AllClasses();

/// Human-readable class name ("Chair", ...).
std::string_view ObjectClassName(ObjectClass cls);

/// Integer index of a class (0..9).
inline int ClassIndex(ObjectClass cls) { return static_cast<int>(cls); }

/// Class for an index in [0, kNumClasses).
ObjectClass ClassFromIndex(int index);

}  // namespace snor

#endif  // SNOR_DATA_OBJECT_CLASS_H_
