#include "data/scene.h"

#include "util/check.h"
#include "util/rng.h"

namespace snor {

ObjectClass Scene::TruthAt(const Point& p) const {
  for (const auto& obj : objects) {
    const Rect canvas{obj.x, obj.y, obj.render.canvas_size,
                      obj.render.canvas_size};
    if (canvas.Contains(p)) return obj.cls;
  }
  return ObjectClass::kChair;
}

bool Scene::Covers(const Point& p) const {
  for (const auto& obj : objects) {
    const Rect canvas{obj.x, obj.y, obj.render.canvas_size,
                      obj.render.canvas_size};
    if (canvas.Contains(p)) return true;
  }
  return false;
}

Scene ComposeScene(const std::vector<ScenePlacement>& placements,
                   int frame_width, int frame_height) {
  SNOR_CHECK_GT(frame_width, 0);
  SNOR_CHECK_GT(frame_height, 0);
  Scene scene;
  scene.frame = ImageU8(frame_width, frame_height, 3, 0);
  scene.objects = placements;

  for (const auto& placement : placements) {
    RenderOptions render = placement.render;
    render.white_background = false;  // Composition needs black masks.
    const ImageU8 crop =
        RenderObjectView(placement.cls, placement.model_id, render);
    for (int y = 0; y < crop.height(); ++y) {
      const int fy = placement.y + y;
      if (fy < 0 || fy >= frame_height) continue;
      for (int x = 0; x < crop.width(); ++x) {
        const int fx = placement.x + x;
        if (fx < 0 || fx >= frame_width) continue;
        if (crop.at(y, x, 0) || crop.at(y, x, 1) || crop.at(y, x, 2)) {
          for (int c = 0; c < 3; ++c) {
            scene.frame.at(fy, fx, c) = crop.at(y, x, c);
          }
        }
      }
    }
  }
  return scene;
}

Scene RandomScene(const SceneOptions& options) {
  SNOR_CHECK_GT(options.objects_per_frame, 0);
  Rng rng(options.seed);
  std::vector<ScenePlacement> placements;
  // Horizontal slots keep objects disjoint.
  const int slot_width = options.frame_width / options.objects_per_frame;
  for (int s = 0; s < options.objects_per_frame; ++s) {
    ScenePlacement placement;
    placement.cls =
        ClassFromIndex(static_cast<int>(rng.Index(kNumClasses)));
    placement.model_id = 4 + static_cast<int>(rng.Index(16));
    placement.render.canvas_size = options.object_canvas;
    placement.render.white_background = false;
    placement.render.view_angle_deg = rng.Uniform(-20, 20);
    placement.render.scale = rng.Uniform(0.75, 1.0);
    placement.render.noise_stddev = options.noise_stddev;
    placement.render.illumination = rng.Uniform(0.7, 1.05);
    placement.render.nuisance_seed = rng.NextU64();
    const int margin_x =
        std::max(0, slot_width - options.object_canvas - 4);
    const int margin_y =
        std::max(0, options.frame_height - options.object_canvas - 4);
    placement.x = s * slot_width + 2 +
                  static_cast<int>(margin_x > 0 ? rng.Index(
                                                      static_cast<std::size_t>(
                                                          margin_x))
                                                : 0);
    placement.y = 2 + static_cast<int>(
                          margin_y > 0
                              ? rng.Index(static_cast<std::size_t>(margin_y))
                              : 0);
    placements.push_back(std::move(placement));
  }
  return ComposeScene(placements, options.frame_width,
                      options.frame_height);
}

}  // namespace snor
