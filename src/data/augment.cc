#include "data/augment.h"

#include <algorithm>
#include <cmath>

#include "img/transform.h"
#include "util/check.h"
#include "util/rng.h"

namespace snor {

ImageU8 AugmentImage(const ImageU8& image, const AugmentOptions& options,
                     Rng& rng) {
  ImageU8 out = image;
  const std::uint8_t bg = image.at(0, 0, 0);

  if (options.allow_horizontal_flip && rng.Bernoulli(0.5)) {
    out = FlipHorizontal(out);
  }
  if (options.max_rotation_deg > 0.0) {
    const double angle =
        rng.Uniform(-options.max_rotation_deg, options.max_rotation_deg);
    out = Rotate(out, angle, bg);
  }

  const double illum =
      1.0 + rng.Uniform(-options.illumination_jitter,
                        options.illumination_jitter);
  const double noise =
      options.max_noise_stddev > 0
          ? rng.Uniform(0.0, options.max_noise_stddev)
          : 0.0;
  if (illum != 1.0 || noise > 0.0) {
    for (int y = 0; y < out.height(); ++y) {
      for (int x = 0; x < out.width(); ++x) {
        const bool is_bg = out.at(y, x, 0) == bg && out.at(y, x, 1) == bg &&
                           out.at(y, x, 2) == bg;
        if (is_bg) continue;
        for (int c = 0; c < out.channels(); ++c) {
          double v = out.at(y, x, c) * illum;
          if (noise > 0.0) v += rng.Normal(0.0, noise);
          out.at(y, x, c) =
              static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
        }
      }
    }
  }
  return out;
}

Dataset AugmentDataset(const Dataset& dataset, int copies_per_item,
                       const AugmentOptions& options) {
  SNOR_CHECK_GE(copies_per_item, 0);
  Dataset out;
  out.name = dataset.name + "+aug";
  out.items.reserve(dataset.size() * (1 + static_cast<std::size_t>(
                                              copies_per_item)));
  Rng rng(options.seed);
  for (const auto& item : dataset.items) {
    out.items.push_back(item);
    for (int k = 0; k < copies_per_item; ++k) {
      LabeledImage copy = item;
      copy.image = AugmentImage(item.image, options, rng);
      copy.view_id = item.view_id * 1000 + k + 1;
      out.items.push_back(std::move(copy));
    }
  }
  return out;
}

}  // namespace snor
