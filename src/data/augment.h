#ifndef SNOR_DATA_AUGMENT_H_
#define SNOR_DATA_AUGMENT_H_

#include <cstdint>

#include "data/dataset.h"
#include "util/rng.h"

namespace snor {

/// \brief Augmentation knobs: which transforms may be applied and how
/// strongly. Supports the paper's future-work plan of "increasing the
/// heterogeneity of our datasets ... by augmenting the cardinality of
/// each class".
struct AugmentOptions {
  bool allow_horizontal_flip = true;
  /// Max |rotation| in degrees.
  double max_rotation_deg = 20.0;
  /// Illumination multiplier range [1 - x, 1 + x].
  double illumination_jitter = 0.25;
  /// Additive Gaussian pixel noise upper bound.
  double max_noise_stddev = 8.0;
  std::uint64_t seed = 404;
};

/// Returns a dataset containing the originals plus `copies_per_item`
/// randomly transformed variants of each item (labels preserved). The
/// background colour for rotation fill is inferred from the corner pixel.
Dataset AugmentDataset(const Dataset& dataset, int copies_per_item,
                       const AugmentOptions& options = {});

/// Applies one random augmentation to a single image (exposed for tests).
ImageU8 AugmentImage(const ImageU8& image, const AugmentOptions& options,
                     Rng& rng);

}  // namespace snor

#endif  // SNOR_DATA_AUGMENT_H_
