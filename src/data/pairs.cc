#include "data/pairs.h"

#include <algorithm>
#include <cmath>

#include "img/resize.h"
#include "nn/model.h"
#include "util/check.h"
#include "util/rng.h"

namespace snor {

std::vector<PairExample> MakeAllUnorderedPairs(const Dataset& dataset) {
  std::vector<PairExample> pairs;
  const int n = static_cast<int>(dataset.size());
  pairs.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      PairExample p;
      p.index_a = i;
      p.index_b = j;
      p.label = dataset.items[static_cast<std::size_t>(i)].label ==
                        dataset.items[static_cast<std::size_t>(j)].label
                    ? 1
                    : 0;
      pairs.push_back(p);
    }
  }
  return pairs;
}

std::vector<PairExample> MakeCrossProductPairs(const Dataset& query,
                                               const Dataset& gallery) {
  std::vector<PairExample> pairs;
  pairs.reserve(query.size() * gallery.size());
  for (std::size_t i = 0; i < query.size(); ++i) {
    for (std::size_t j = 0; j < gallery.size(); ++j) {
      PairExample p;
      p.index_a = static_cast<int>(i);
      p.index_b = static_cast<int>(j);
      p.label = query.items[i].label == gallery.items[j].label ? 1 : 0;
      pairs.push_back(p);
    }
  }
  return pairs;
}

std::vector<PairExample> MakeBalancedPairSet(const Dataset& dataset,
                                             int n_pairs,
                                             double positive_fraction,
                                             std::uint64_t seed) {
  SNOR_CHECK_GT(n_pairs, 0);
  SNOR_CHECK(positive_fraction >= 0.0 && positive_fraction <= 1.0);
  SNOR_CHECK_GE(dataset.size(), 2u);

  // Bucket item indices by class.
  std::vector<std::vector<int>> by_class(kNumClasses);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    by_class[static_cast<std::size_t>(ClassIndex(dataset.items[i].label))]
        .push_back(static_cast<int>(i));
  }

  Rng rng(seed);
  const int n_pos = static_cast<int>(std::lround(n_pairs * positive_fraction));
  std::vector<PairExample> pairs;
  pairs.reserve(static_cast<std::size_t>(n_pairs));

  // Positive pairs: two distinct items of a random non-singleton class.
  std::vector<int> usable_classes;
  for (int c = 0; c < kNumClasses; ++c) {
    if (by_class[static_cast<std::size_t>(c)].size() >= 2) {
      usable_classes.push_back(c);
    }
  }
  SNOR_CHECK(!usable_classes.empty());
  for (int i = 0; i < n_pos; ++i) {
    const auto& bucket =
        by_class[static_cast<std::size_t>(
            usable_classes[rng.Index(usable_classes.size())])];
    const int a = bucket[rng.Index(bucket.size())];
    int b = bucket[rng.Index(bucket.size())];
    while (b == a) b = bucket[rng.Index(bucket.size())];
    pairs.push_back(PairExample{a, b, 1});
  }
  // Negative pairs: items of two different classes.
  while (static_cast<int>(pairs.size()) < n_pairs) {
    const int a = static_cast<int>(rng.Index(dataset.size()));
    const int b = static_cast<int>(rng.Index(dataset.size()));
    if (dataset.items[static_cast<std::size_t>(a)].label ==
        dataset.items[static_cast<std::size_t>(b)].label) {
      continue;
    }
    pairs.push_back(PairExample{a, b, 0});
  }
  rng.Shuffle(pairs);
  return pairs;
}

std::vector<PairExample> ResamplePairs(const std::vector<PairExample>& pairs,
                                       int n_pairs, double positive_fraction,
                                       std::uint64_t seed) {
  SNOR_CHECK_GT(n_pairs, 0);
  std::vector<PairExample> positives;
  std::vector<PairExample> negatives;
  for (const auto& p : pairs) {
    (p.label == 1 ? positives : negatives).push_back(p);
  }
  SNOR_CHECK(!positives.empty());
  SNOR_CHECK(!negatives.empty());

  Rng rng(seed);
  const int n_pos = static_cast<int>(std::lround(n_pairs * positive_fraction));
  std::vector<PairExample> out;
  out.reserve(static_cast<std::size_t>(n_pairs));
  for (int i = 0; i < n_pos; ++i) {
    out.push_back(positives[rng.Index(positives.size())]);
  }
  for (int i = n_pos; i < n_pairs; ++i) {
    out.push_back(negatives[rng.Index(negatives.size())]);
  }
  rng.Shuffle(out);
  return out;
}

PairTensorDataset PairsToTensors(const std::vector<PairExample>& pairs,
                                 const Dataset& query, const Dataset& gallery,
                                 int width, int height) {
  PairTensorDataset data;
  data.a.reserve(pairs.size());
  data.b.reserve(pairs.size());
  data.labels.reserve(pairs.size());

  // Resize each referenced image once (cache by index).
  std::vector<Tensor> query_cache(query.size());
  std::vector<bool> query_ready(query.size(), false);
  std::vector<Tensor> gallery_cache(gallery.size());
  std::vector<bool> gallery_ready(gallery.size(), false);

  auto tensor_of = [&](const Dataset& ds, std::vector<Tensor>& cache,
                       std::vector<bool>& ready, int idx) -> const Tensor& {
    auto i = static_cast<std::size_t>(idx);
    if (!ready[i]) {
      cache[i] =
          ImageToTensor(Resize(ds.items[i].image, width, height));
      ready[i] = true;
    }
    return cache[i];
  };

  for (const auto& p : pairs) {
    data.a.push_back(tensor_of(query, query_cache, query_ready, p.index_a));
    data.b.push_back(
        tensor_of(gallery, gallery_cache, gallery_ready, p.index_b));
    data.labels.push_back(p.label);
  }
  return data;
}

}  // namespace snor
