#ifndef SNOR_DATA_DATASET_H_
#define SNOR_DATA_DATASET_H_

#include <array>
#include <string>
#include <vector>

#include "data/object_class.h"
#include "data/renderer.h"
#include "img/image.h"

namespace snor {

/// \brief One dataset item: a rendered view/crop with its ground truth.
struct LabeledImage {
  ImageU8 image;
  ObjectClass label = ObjectClass::kChair;
  /// Which model archetype the item was rendered from.
  int model_id = 0;
  /// View index within the model (rotation/scale variant).
  int view_id = 0;
};

/// \brief A named collection of labelled images.
struct Dataset {
  std::string name;
  std::vector<LabeledImage> items;

  std::size_t size() const { return items.size(); }

  /// Number of items per class, Table-1 order.
  std::array<int, kNumClasses> ClassCounts() const;
};

/// Per-class view counts of ShapeNetSet1 (Table 1): 82 views total across
/// two models per class.
const std::array<int, kNumClasses>& ShapeNetSet1Counts();

/// Per-class view counts of ShapeNetSet2 (Table 1): 10 per class.
const std::array<int, kNumClasses>& ShapeNetSet2Counts();

/// Per-class instance counts of the NYUSet (Table 1): 6,934 total.
const std::array<int, kNumClasses>& NyuSetCounts();

/// Options shared by the dataset builders.
struct DatasetOptions {
  /// Canvas size of rendered images.
  int canvas_size = 96;
  /// Deterministic generation seed.
  std::uint64_t seed = 2019;
  /// Fraction of the nominal per-class cardinality to generate (the NYU
  /// set is large; benches may subsample). Counts are rounded up to >= 1.
  double sample_fraction = 1.0;
};

/// Builds the synthetic ShapeNetSet1: two models per class, white
/// background, views at multiples of 90 degrees (per the paper, extra
/// views are derived by rotating existing ones). Class cardinalities match
/// Table 1 exactly at sample_fraction = 1.
[[nodiscard]] Dataset MakeShapeNetSet1(const DatasetOptions& options = {});

/// Builds the synthetic ShapeNetSet2: ten views per class over two
/// *different* models (ids 2 and 3), with denser angle/scale coverage.
[[nodiscard]] Dataset MakeShapeNetSet2(const DatasetOptions& options = {});

/// Builds the synthetic NYUSet: black-background segmented crops with
/// sensor noise, illumination changes, partial occlusion, and wide
/// intra-class variation (many model ids). Class cardinalities match
/// Table 1 at sample_fraction = 1 (6,934 items).
[[nodiscard]] Dataset MakeNyuSet(const DatasetOptions& options = {});

}  // namespace snor

#endif  // SNOR_DATA_DATASET_H_
