#ifndef SNOR_DATA_SCENE_H_
#define SNOR_DATA_SCENE_H_

#include <cstdint>
#include <vector>

#include "data/renderer.h"
#include "geometry/types.h"

namespace snor {

/// \brief One object placed in a composed camera frame.
struct ScenePlacement {
  ObjectClass cls = ObjectClass::kChair;
  int model_id = 0;
  /// Top-left corner of the object's canvas inside the frame.
  int x = 0;
  int y = 0;
  RenderOptions render;
};

/// \brief A composed frame plus its ground truth.
struct Scene {
  ImageU8 frame;
  std::vector<ScenePlacement> objects;

  /// Ground-truth class of the placement whose canvas contains `p`
  /// (first match); kChair when none does — callers should check
  /// `Covers` first.
  ObjectClass TruthAt(const Point& p) const;
  bool Covers(const Point& p) const;
};

/// \brief Options for the random scene generator.
struct SceneOptions {
  int frame_width = 420;
  int frame_height = 140;
  int objects_per_frame = 3;
  /// Canvas size of each placed object.
  int object_canvas = 110;
  /// NYU-style nuisance strength.
  double noise_stddev = 7.0;
  std::uint64_t seed = 1;
};

/// Composes a frame from explicit placements: objects are rendered on
/// black background and alpha-composited (non-black pixels win) onto a
/// black frame, mimicking a segmented RGB capture.
Scene ComposeScene(const std::vector<ScenePlacement>& placements,
                   int frame_width, int frame_height);

/// Generates a random patrol frame with `objects_per_frame` objects at
/// non-overlapping slots; deterministic in `options.seed`.
Scene RandomScene(const SceneOptions& options);

}  // namespace snor

#endif  // SNOR_DATA_SCENE_H_
