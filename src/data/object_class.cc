#include "data/object_class.h"

#include "util/check.h"

namespace snor {

const std::array<ObjectClass, kNumClasses>& AllClasses() {
  static constexpr std::array<ObjectClass, kNumClasses> kAll = {
      ObjectClass::kChair, ObjectClass::kBottle, ObjectClass::kPaper,
      ObjectClass::kBook,  ObjectClass::kTable,  ObjectClass::kBox,
      ObjectClass::kWindow, ObjectClass::kDoor,  ObjectClass::kSofa,
      ObjectClass::kLamp,
  };
  return kAll;
}

std::string_view ObjectClassName(ObjectClass cls) {
  switch (cls) {
    case ObjectClass::kChair:
      return "Chair";
    case ObjectClass::kBottle:
      return "Bottle";
    case ObjectClass::kPaper:
      return "Paper";
    case ObjectClass::kBook:
      return "Book";
    case ObjectClass::kTable:
      return "Table";
    case ObjectClass::kBox:
      return "Box";
    case ObjectClass::kWindow:
      return "Window";
    case ObjectClass::kDoor:
      return "Door";
    case ObjectClass::kSofa:
      return "Sofa";
    case ObjectClass::kLamp:
      return "Lamp";
  }
  return "Unknown";
}

ObjectClass ClassFromIndex(int index) {
  SNOR_CHECK(index >= 0 && index < kNumClasses);
  return static_cast<ObjectClass>(index);
}

}  // namespace snor
