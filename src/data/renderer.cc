#include "data/renderer.h"

#include <algorithm>
#include <cmath>

#include "img/color.h"
#include "img/draw.h"
#include "img/resize.h"
#include "img/transform.h"
#include "util/check.h"
#include "util/rng.h"

namespace snor {
namespace {

// Maps the 100x100 design box used by the archetype functions onto the
// canvas (centred, ~75% coverage at scale 1).
struct Frame {
  double cx;
  double cy;
  double u;  // Canvas pixels per design unit.

  double X(double x) const { return cx + (x - 50.0) * u; }
  double Y(double y) const { return cy + (y - 50.0) * u; }
  double L(double v) const { return v * u; }
};

// Deterministic per-model seed.
std::uint64_t ModelSeed(ObjectClass cls, int model_id) {
  return 0x5EEDULL * 2654435761ULL +
         static_cast<std::uint64_t>(ClassIndex(cls)) * 1000003ULL +
         static_cast<std::uint64_t>(model_id) * 7919ULL;
}

Rgb Jitter(Rng& rng, const Rgb& base, int amount) {
  auto j = [&](int v) {
    return static_cast<std::uint8_t>(std::clamp(
        v + static_cast<int>(rng.UniformInt(-amount, amount)), 0, 255));
  };
  return Rgb{j(base.r), j(base.g), j(base.b)};
}

template <std::size_t N>
Rgb PickColor(Rng& rng, const std::array<Rgb, N>& palette, int jitter = 18) {
  return Jitter(rng, palette[rng.Index(N)], jitter);
}

// --------------------------------------------------------------- Chair --
// Variants: 0 = dining chair, 1 = stool, 2 = office chair (pedestal).

void DrawChair(ImageU8& img, const Frame& f, Rng& rng) {
  static constexpr std::array<Rgb, 4> kPalette = {
      Rgb{120, 72, 40}, Rgb{90, 50, 30}, Rgb{110, 30, 30}, Rgb{70, 70, 75}};
  const Rgb wood = PickColor(rng, kPalette);
  const Rgb seat_color = Jitter(rng, wood, 12);
  const int variant = static_cast<int>(rng.UniformInt(0, 2));
  const double seat_w = rng.Uniform(34, 54);
  const double seat_h = rng.Uniform(6, 12);
  const double left = 50 - seat_w / 2;

  switch (variant) {
    case 0: {  // Dining chair: backrest + seat + two legs.
      const double seat_y = rng.Uniform(50, 60);
      const double back_h = rng.Uniform(26, 42);
      const double leg_w = rng.Uniform(3.5, 7);
      const double leg_h = 92 - (seat_y + seat_h);
      if (rng.Bernoulli(0.5)) {
        // Slatted backrest.
        FillRect(img, f.X(left), f.Y(seat_y - back_h), f.L(leg_w),
                 f.L(back_h), wood);
        FillRect(img, f.X(left + seat_w - leg_w), f.Y(seat_y - back_h),
                 f.L(leg_w), f.L(back_h), wood);
        const int slats = 2 + static_cast<int>(rng.UniformInt(0, 1));
        for (int s = 0; s < slats; ++s) {
          const double sy =
              seat_y - back_h + (s + 0.5) * back_h / (slats + 0.5);
          FillRect(img, f.X(left), f.Y(sy), f.L(seat_w), f.L(4.0), wood);
        }
      } else {
        FillRect(img, f.X(left), f.Y(seat_y - back_h), f.L(seat_w),
                 f.L(back_h), wood);
      }
      FillRect(img, f.X(left - 2), f.Y(seat_y), f.L(seat_w + 4),
               f.L(seat_h), seat_color);
      FillRect(img, f.X(left), f.Y(seat_y + seat_h), f.L(leg_w), f.L(leg_h),
               wood);
      FillRect(img, f.X(left + seat_w - leg_w), f.Y(seat_y + seat_h),
               f.L(leg_w), f.L(leg_h), wood);
      break;
    }
    case 1: {  // Stool: thick seat, splayed legs, no backrest.
      const double seat_y = rng.Uniform(34, 46);
      FillEllipse(img, f.X(50), f.Y(seat_y), f.L(seat_w / 2),
                  f.L(seat_h * 0.8), seat_color);
      const double leg_t = rng.Uniform(3, 5.5);
      DrawLine(img, {f.X(50 - seat_w * 0.32), f.Y(seat_y + 2)},
               {f.X(50 - seat_w * 0.45), f.Y(90)}, f.L(leg_t), wood);
      DrawLine(img, {f.X(50 + seat_w * 0.32), f.Y(seat_y + 2)},
               {f.X(50 + seat_w * 0.45), f.Y(90)}, f.L(leg_t), wood);
      if (rng.Bernoulli(0.7)) {
        // Foot ring.
        DrawLine(img, {f.X(50 - seat_w * 0.4), f.Y(72)},
                 {f.X(50 + seat_w * 0.4), f.Y(72)}, f.L(2.5), wood);
      }
      break;
    }
    default: {  // Office chair: backrest, seat, pedestal, base bar.
      const double seat_y = rng.Uniform(48, 56);
      const double back_h = rng.Uniform(28, 40);
      FillRect(img, f.X(left + 4), f.Y(seat_y - back_h), f.L(seat_w - 8),
               f.L(back_h), seat_color);
      FillRect(img, f.X(left), f.Y(seat_y), f.L(seat_w), f.L(seat_h + 2),
               seat_color);
      FillRect(img, f.X(50 - 2.5), f.Y(seat_y + seat_h), f.L(5),
               f.L(86 - seat_y - seat_h), wood);
      FillRect(img, f.X(50 - seat_w * 0.45), f.Y(86), f.L(seat_w * 0.9),
               f.L(4), wood);
      FillCircle(img, f.X(50 - seat_w * 0.42), f.Y(91), f.L(2.6), wood);
      FillCircle(img, f.X(50 + seat_w * 0.42), f.Y(91), f.L(2.6), wood);
      break;
    }
  }
}

// -------------------------------------------------------------- Bottle --
// Variants: 0 = wine bottle, 1 = jug, 2 = flask.

void DrawBottle(ImageU8& img, const Frame& f, Rng& rng) {
  static constexpr std::array<Rgb, 4> kPalette = {
      Rgb{30, 110, 60}, Rgb{40, 80, 140}, Rgb{130, 90, 40},
      Rgb{150, 150, 155}};
  const Rgb glass = PickColor(rng, kPalette);
  const Rgb cap = Jitter(rng, Rgb{60, 60, 60}, 20);
  const int variant = static_cast<int>(rng.UniformInt(0, 2));

  switch (variant) {
    case 0: {  // Wine bottle: tall body, long neck.
      const double body_w = rng.Uniform(16, 24);
      const double body_top = rng.Uniform(38, 46);
      const double neck_w = rng.Uniform(5, 8);
      const double neck_top = rng.Uniform(12, 20);
      FillRect(img, f.X(50 - body_w / 2), f.Y(body_top), f.L(body_w),
               f.L(90 - body_top), glass);
      FillEllipse(img, f.X(50), f.Y(body_top), f.L(body_w / 2), f.L(6),
                  glass);
      FillRect(img, f.X(50 - neck_w / 2), f.Y(neck_top), f.L(neck_w),
               f.L(body_top - neck_top + 2), glass);
      FillRect(img, f.X(50 - neck_w / 2 - 1), f.Y(neck_top - 5),
               f.L(neck_w + 2), f.L(6), cap);
      if (rng.Bernoulli(0.7)) {
        FillRect(img, f.X(50 - body_w / 2), f.Y(body_top + 18), f.L(body_w),
                 f.L(14), Jitter(rng, Rgb{225, 225, 215}, 15));
      }
      break;
    }
    case 1: {  // Jug: wide body, short neck, side handle.
      const double body_w = rng.Uniform(30, 42);
      const double body_top = rng.Uniform(38, 46);
      FillEllipse(img, f.X(50), f.Y((body_top + 90) / 2), f.L(body_w / 2),
                  f.L((90 - body_top) / 2), glass);
      const double neck_w = rng.Uniform(10, 15);
      FillRect(img, f.X(50 - neck_w / 2), f.Y(body_top - 12), f.L(neck_w),
               f.L(16), glass);
      FillRect(img, f.X(50 - neck_w / 2 - 1.5), f.Y(body_top - 16),
               f.L(neck_w + 3), f.L(5), cap);
      // Handle loop.
      DrawLine(img, {f.X(50 + body_w / 2 - 2), f.Y(body_top + 4)},
               {f.X(50 + body_w / 2 + 7), f.Y(body_top + 16)}, f.L(3),
               glass);
      DrawLine(img, {f.X(50 + body_w / 2 + 7), f.Y(body_top + 16)},
               {f.X(50 + body_w / 2 - 2), f.Y(body_top + 28)}, f.L(3),
               glass);
      break;
    }
    default: {  // Flask: short wide body, tiny neck.
      const double body_w = rng.Uniform(26, 36);
      const double body_top = rng.Uniform(52, 60);
      FillRect(img, f.X(50 - body_w / 2), f.Y(body_top), f.L(body_w),
               f.L(88 - body_top), glass);
      FillEllipse(img, f.X(50), f.Y(body_top), f.L(body_w / 2), f.L(5),
                  glass);
      const double neck_w = rng.Uniform(6, 9);
      FillRect(img, f.X(50 - neck_w / 2), f.Y(body_top - 14), f.L(neck_w),
               f.L(16), glass);
      FillRect(img, f.X(50 - neck_w / 2 - 1), f.Y(body_top - 18),
               f.L(neck_w + 2), f.L(5), cap);
      break;
    }
  }
}

// --------------------------------------------------------------- Paper --
// Variants: 0 = single sheet, 1 = sheet stack, 2 = curled sheet.

void DrawPaper(ImageU8& img, const Frame& f, Rng& rng) {
  const Rgb sheet = Jitter(rng, Rgb{240, 240, 232}, 8);
  const Rgb line = Jitter(rng, Rgb{170, 170, 180}, 15);
  const int variant = static_cast<int>(rng.UniformInt(0, 2));
  auto jit = [&](double v, double a) { return v + rng.Uniform(-a, a); };

  switch (variant) {
    case 1: {  // Stack: three offset sheets.
      for (int s = 2; s >= 0; --s) {
        const double off = s * rng.Uniform(2.0, 4.0);
        FillPolygon(img,
                    {{f.X(26 + off), f.Y(16 + off)},
                     {f.X(74 + off), f.Y(18 + off)},
                     {f.X(72 + off), f.Y(84 + off)},
                     {f.X(28 + off), f.Y(82 + off)}},
                    ScaleRgb(sheet, 1.0 - 0.06 * s));
      }
      break;
    }
    case 2: {  // Curled: trapezoid with a folded corner.
      FillPolygon(img,
                  {{f.X(jit(28, 4)), f.Y(jit(20, 4))},
                   {f.X(jit(76, 4)), f.Y(jit(14, 4))},
                   {f.X(jit(70, 4)), f.Y(jit(86, 4))},
                   {f.X(jit(24, 4)), f.Y(jit(80, 4))}},
                  sheet);
      FillPolygon(img,
                  {{f.X(76), f.Y(14)},
                   {f.X(66), f.Y(16)},
                   {f.X(74), f.Y(26)}},
                  ScaleRgb(sheet, 0.85));
      break;
    }
    default: {  // Single lined sheet.
      FillPolygon(img,
                  {{f.X(jit(25, 3)), f.Y(jit(15, 3))},
                   {f.X(jit(75, 3)), f.Y(jit(17, 3))},
                   {f.X(jit(73, 3)), f.Y(jit(85, 3))},
                   {f.X(jit(27, 3)), f.Y(jit(83, 3))}},
                  sheet);
      const int lines = 4 + static_cast<int>(rng.UniformInt(0, 3));
      for (int i = 0; i < lines; ++i) {
        const double y = 26 + i * 56.0 / lines;
        FillRect(img, f.X(32), f.Y(y), f.L(36 + rng.Uniform(-6, 2)),
                 f.L(1.6), line);
      }
      break;
    }
  }
}

// ---------------------------------------------------------------- Book --
// Variants: 0 = front cover, 1 = open book, 2 = spine-on.

void DrawBook(ImageU8& img, const Frame& f, Rng& rng) {
  static constexpr std::array<Rgb, 5> kPalette = {
      Rgb{150, 40, 40}, Rgb{40, 70, 140}, Rgb{30, 110, 70},
      Rgb{140, 100, 30}, Rgb{90, 40, 110}};
  const Rgb cover = PickColor(rng, kPalette);
  const Rgb spine = ScaleRgb(cover, 0.6);
  const Rgb pages = Jitter(rng, Rgb{235, 232, 220}, 8);
  const int variant = static_cast<int>(rng.UniformInt(0, 2));

  switch (variant) {
    case 1: {  // Open book: two page quads meeting at a spine valley.
      FillPolygon(img,
                  {{f.X(50), f.Y(30)},
                   {f.X(14), f.Y(24)},
                   {f.X(16), f.Y(74)},
                   {f.X(50), f.Y(82)}},
                  pages);
      FillPolygon(img,
                  {{f.X(50), f.Y(30)},
                   {f.X(86), f.Y(24)},
                   {f.X(84), f.Y(74)},
                   {f.X(50), f.Y(82)}},
                  ScaleRgb(pages, 0.94));
      FillRect(img, f.X(49), f.Y(30), f.L(2), f.L(52), spine);
      const int lines = 3 + static_cast<int>(rng.UniformInt(0, 2));
      for (int i = 0; i < lines; ++i) {
        const double y = 36 + i * 34.0 / lines;
        FillRect(img, f.X(22), f.Y(y), f.L(22), f.L(1.4),
                 Jitter(rng, Rgb{180, 180, 185}, 10));
        FillRect(img, f.X(56), f.Y(y), f.L(22), f.L(1.4),
                 Jitter(rng, Rgb{180, 180, 185}, 10));
      }
      break;
    }
    case 2: {  // Spine-on: tall thin block with title bands.
      const double w = rng.Uniform(12, 20);
      const double h = rng.Uniform(56, 72);
      FillRect(img, f.X(50 - w / 2), f.Y(50 - h / 2), f.L(w), f.L(h),
               cover);
      FillRect(img, f.X(50 - w / 2 + 1.5), f.Y(50 - h / 2 + 8),
               f.L(w - 3), f.L(6), Jitter(rng, Rgb{220, 210, 190}, 12));
      FillRect(img, f.X(50 - w / 2 + 1.5), f.Y(50 + h / 2 - 16),
               f.L(w - 3), f.L(6), Jitter(rng, Rgb{220, 210, 190}, 12));
      break;
    }
    default: {  // Front cover with spine and page block.
      const double w = rng.Uniform(34, 50);
      const double h = rng.Uniform(46, 66);
      const double left = 50 - w / 2;
      const double top = 50 - h / 2;
      FillRect(img, f.X(left), f.Y(top), f.L(w), f.L(h), cover);
      FillRect(img, f.X(left), f.Y(top), f.L(7), f.L(h), spine);
      FillRect(img, f.X(left + w - 4), f.Y(top + 2), f.L(4), f.L(h - 4),
               pages);
      FillRect(img, f.X(left + 12), f.Y(top + h * 0.22), f.L(w - 20),
               f.L(7), Jitter(rng, Rgb{220, 210, 190}, 12));
      break;
    }
  }
}

// --------------------------------------------------------------- Table --
// Variants: 0 = side view 2 legs, 1 = pedestal table, 2 = desk (4 legs).

void DrawTable(ImageU8& img, const Frame& f, Rng& rng) {
  static constexpr std::array<Rgb, 3> kPalette = {
      Rgb{130, 85, 45}, Rgb{100, 65, 35}, Rgb{160, 130, 95}};
  const Rgb wood = PickColor(rng, kPalette);
  const Rgb leg_color = ScaleRgb(wood, 0.85);
  const int variant = static_cast<int>(rng.UniformInt(0, 2));
  const double top_w = rng.Uniform(56, 80);
  const double top_h = rng.Uniform(5, 11);
  const double top_y = rng.Uniform(34, 46);
  const double left = 50 - top_w / 2;

  FillRect(img, f.X(left), f.Y(top_y), f.L(top_w), f.L(top_h), wood);
  switch (variant) {
    case 1: {  // Pedestal: centre pole + foot.
      FillRect(img, f.X(50 - 3), f.Y(top_y + top_h), f.L(6),
               f.L(84 - top_y - top_h), leg_color);
      FillEllipse(img, f.X(50), f.Y(86), f.L(top_w * 0.25), f.L(4),
                  leg_color);
      break;
    }
    case 2: {  // Desk: outer legs + two inner (far) legs.
      const double leg_w = rng.Uniform(4, 6);
      const double leg_h = 88 - top_y - top_h;
      FillRect(img, f.X(left + 1), f.Y(top_y + top_h), f.L(leg_w),
               f.L(leg_h), leg_color);
      FillRect(img, f.X(left + top_w - leg_w - 1), f.Y(top_y + top_h),
               f.L(leg_w), f.L(leg_h), leg_color);
      FillRect(img, f.X(left + top_w * 0.28), f.Y(top_y + top_h),
               f.L(leg_w * 0.7), f.L(leg_h * 0.8), ScaleRgb(leg_color, 0.8));
      FillRect(img, f.X(left + top_w * 0.66), f.Y(top_y + top_h),
               f.L(leg_w * 0.7), f.L(leg_h * 0.8), ScaleRgb(leg_color, 0.8));
      break;
    }
    default: {  // Side view with two legs and optional brace.
      const double leg_w = rng.Uniform(4.5, 7);
      FillRect(img, f.X(left + 2), f.Y(top_y + top_h), f.L(leg_w),
               f.L(88 - top_y - top_h), leg_color);
      FillRect(img, f.X(left + top_w - leg_w - 2), f.Y(top_y + top_h),
               f.L(leg_w), f.L(88 - top_y - top_h), leg_color);
      if (rng.Bernoulli(0.5)) {
        FillRect(img, f.X(left + leg_w + 2), f.Y(74),
                 f.L(top_w - 2 * leg_w - 8), f.L(3.5), leg_color);
      }
      break;
    }
  }
}

// ----------------------------------------------------------------- Box --
// Variants: 0 = taped carton, 1 = open box, 2 = oblique 3-D view.

void DrawBox(ImageU8& img, const Frame& f, Rng& rng) {
  const Rgb cardboard = Jitter(rng, Rgb{185, 145, 95}, 18);
  const Rgb tape = ScaleRgb(cardboard, 0.75);
  const int variant = static_cast<int>(rng.UniformInt(0, 2));
  const double w = rng.Uniform(40, 62);
  const double h = rng.Uniform(30, 52);
  const double left = 50 - w / 2;
  const double top = 50 - h / 2 + 6;

  switch (variant) {
    case 1: {  // Open box: body + upright flaps.
      FillRect(img, f.X(left), f.Y(top), f.L(w), f.L(h), cardboard);
      FillPolygon(img,
                  {{f.X(left), f.Y(top)},
                   {f.X(left - 8), f.Y(top - 14)},
                   {f.X(left + w * 0.28), f.Y(top)}},
                  ScaleRgb(cardboard, 0.9));
      FillPolygon(img,
                  {{f.X(left + w), f.Y(top)},
                   {f.X(left + w + 8), f.Y(top - 14)},
                   {f.X(left + w * 0.72), f.Y(top)}},
                  ScaleRgb(cardboard, 0.85));
      FillRect(img, f.X(left + w * 0.3), f.Y(top - 2), f.L(w * 0.4),
               f.L(4), ScaleRgb(cardboard, 0.6));
      break;
    }
    case 2: {  // Oblique: front face + skewed top and side faces.
      const double depth = rng.Uniform(8, 16);
      FillRect(img, f.X(left), f.Y(top), f.L(w * 0.8), f.L(h), cardboard);
      FillPolygon(img,
                  {{f.X(left), f.Y(top)},
                   {f.X(left + depth), f.Y(top - depth)},
                   {f.X(left + w * 0.8 + depth), f.Y(top - depth)},
                   {f.X(left + w * 0.8), f.Y(top)}},
                  ScaleRgb(cardboard, 1.12));
      FillPolygon(img,
                  {{f.X(left + w * 0.8), f.Y(top)},
                   {f.X(left + w * 0.8 + depth), f.Y(top - depth)},
                   {f.X(left + w * 0.8 + depth), f.Y(top + h - depth)},
                   {f.X(left + w * 0.8), f.Y(top + h)}},
                  ScaleRgb(cardboard, 0.8));
      break;
    }
    default: {  // Closed carton with tape and flap creases.
      FillRect(img, f.X(left), f.Y(top), f.L(w), f.L(h), cardboard);
      FillPolygon(img,
                  {{f.X(left), f.Y(top)},
                   {f.X(left + w / 2), f.Y(top)},
                   {f.X(left + 4), f.Y(top - 10)}},
                  ScaleRgb(cardboard, 0.9));
      FillPolygon(img,
                  {{f.X(left + w / 2), f.Y(top)},
                   {f.X(left + w), f.Y(top)},
                   {f.X(left + w - 4), f.Y(top - 10)}},
                  ScaleRgb(cardboard, 0.85));
      FillRect(img, f.X(50 - 3), f.Y(top), f.L(6), f.L(h), tape);
      break;
    }
  }
}

// -------------------------------------------------------------- Window --
// Variants: 0 = cross mullion, 1 = two-pane slider, 2 = arched window.

void DrawWindow(ImageU8& img, const Frame& f, Rng& rng) {
  const Rgb frame = Jitter(rng, Rgb{235, 235, 235}, 10);
  const Rgb pane = Jitter(rng, Rgb{160, 200, 230}, 14);
  const int variant = static_cast<int>(rng.UniformInt(0, 2));
  const double w = rng.Uniform(46, 66);
  const double h = rng.Uniform(52, 76);
  const double t = rng.Uniform(3.5, 6.5);
  const double left = 50 - w / 2;
  const double top = 50 - h / 2;

  switch (variant) {
    case 1: {  // Horizontal slider: single vertical divider.
      FillRect(img, f.X(left), f.Y(top), f.L(w), f.L(h), frame);
      FillRect(img, f.X(left + t), f.Y(top + t), f.L(w - 2 * t),
               f.L(h - 2 * t), pane);
      FillRect(img, f.X(50 - t / 2), f.Y(top), f.L(t), f.L(h), frame);
      break;
    }
    case 2: {  // Arched top.
      FillEllipse(img, f.X(50), f.Y(top + h * 0.3), f.L(w / 2),
                  f.L(h * 0.3), frame);
      FillRect(img, f.X(left), f.Y(top + h * 0.3), f.L(w), f.L(h * 0.7),
               frame);
      FillEllipse(img, f.X(50), f.Y(top + h * 0.3), f.L(w / 2 - t),
                  f.L(h * 0.3 - t), pane);
      FillRect(img, f.X(left + t), f.Y(top + h * 0.3), f.L(w - 2 * t),
               f.L(h * 0.7 - t), pane);
      FillRect(img, f.X(50 - t / 2), f.Y(top), f.L(t), f.L(h), frame);
      break;
    }
    default: {  // Cross mullion.
      FillRect(img, f.X(left), f.Y(top), f.L(w), f.L(h), frame);
      FillRect(img, f.X(left + t), f.Y(top + t), f.L(w - 2 * t),
               f.L(h - 2 * t), pane);
      FillRect(img, f.X(50 - t / 2), f.Y(top), f.L(t), f.L(h), frame);
      FillRect(img, f.X(left), f.Y(50 - t / 2), f.L(w), f.L(t), frame);
      break;
    }
  }
}

// ---------------------------------------------------------------- Door --
// Variants: 0 = panel door, 1 = glazed door, 2 = flat door w/ push bar.

void DrawDoor(ImageU8& img, const Frame& f, Rng& rng) {
  static constexpr std::array<Rgb, 3> kPalette = {
      Rgb{140, 95, 55}, Rgb{225, 222, 215}, Rgb{95, 60, 35}};
  const Rgb door = PickColor(rng, kPalette);
  const Rgb panel = ScaleRgb(door, 0.8);
  const Rgb knob = Jitter(rng, Rgb{200, 180, 90}, 20);
  const int variant = static_cast<int>(rng.UniformInt(0, 2));
  const double w = rng.Uniform(28, 44);
  const double h = rng.Uniform(64, 84);
  const double left = 50 - w / 2;
  const double top = 50 - h / 2;

  FillRect(img, f.X(left), f.Y(top), f.L(w), f.L(h), door);
  switch (variant) {
    case 1: {  // Glazed: top half window.
      FillRect(img, f.X(left + 5), f.Y(top + 6), f.L(w - 10),
               f.L(h * 0.38), Jitter(rng, Rgb{165, 200, 225}, 12));
      FillRect(img, f.X(left + 6), f.Y(top + h * 0.58), f.L(w - 12),
               f.L(h * 0.3), panel);
      FillCircle(img, f.X(left + w - 5), f.Y(top + h * 0.52), f.L(2.2),
                 knob);
      break;
    }
    case 2: {  // Flat with horizontal push bar.
      FillRect(img, f.X(left + 4), f.Y(top + h * 0.48), f.L(w - 8),
               f.L(3.5), knob);
      break;
    }
    default: {  // Two inset panels + knob.
      FillRect(img, f.X(left + 6), f.Y(top + 8), f.L(w - 12),
               f.L(h * 0.32), panel);
      FillRect(img, f.X(left + 6), f.Y(top + h * 0.52), f.L(w - 12),
               f.L(h * 0.36), panel);
      FillCircle(img, f.X(left + w - 5), f.Y(top + h * 0.5), f.L(2.4),
                 knob);
      break;
    }
  }
}

// ---------------------------------------------------------------- Sofa --
// Variants: 0 = standard 2-seater, 1 = L-sectional, 2 = high-back loveseat.

void DrawSofa(ImageU8& img, const Frame& f, Rng& rng) {
  static constexpr std::array<Rgb, 4> kPalette = {
      Rgb{150, 50, 50}, Rgb{80, 85, 95}, Rgb{60, 90, 130}, Rgb{120, 100, 70}};
  const Rgb fabric = PickColor(rng, kPalette);
  const Rgb cushion = ScaleRgb(fabric, 1.15);
  const int variant = static_cast<int>(rng.UniformInt(0, 2));
  const double w = rng.Uniform(58, 80);
  const double body_h = rng.Uniform(20, 30);
  const double arm_w = rng.Uniform(7, 12);
  const double left = 50 - w / 2;
  const double body_top = 78 - body_h;

  switch (variant) {
    case 1: {  // L-sectional: low chaise extending right.
      const double back_h = rng.Uniform(14, 20);
      FillRect(img, f.X(left + arm_w - 2), f.Y(body_top - back_h),
               f.L(w * 0.6), f.L(back_h + 4), fabric);
      FillRect(img, f.X(left), f.Y(body_top), f.L(w), f.L(body_h), fabric);
      FillRect(img, f.X(left + w * 0.62), f.Y(body_top - 4), f.L(w * 0.38),
               f.L(body_h + 4), ScaleRgb(fabric, 0.92));
      FillRect(img, f.X(left), f.Y(body_top - 8), f.L(arm_w),
               f.L(body_h + 8), fabric);
      FillRect(img, f.X(left + arm_w + 1), f.Y(body_top + 2),
               f.L(w * 0.5 - arm_w), f.L(8), cushion);
      break;
    }
    case 2: {  // Loveseat with rounded high back.
      const double back_h = rng.Uniform(22, 30);
      FillEllipse(img, f.X(50), f.Y(body_top - back_h * 0.3), f.L(w * 0.45),
                  f.L(back_h), fabric);
      FillRect(img, f.X(left), f.Y(body_top), f.L(w), f.L(body_h), fabric);
      FillCircle(img, f.X(left + arm_w / 2 + 1), f.Y(body_top), f.L(arm_w * 0.7),
                 fabric);
      FillCircle(img, f.X(left + w - arm_w / 2 - 1), f.Y(body_top),
                 f.L(arm_w * 0.7), fabric);
      FillRect(img, f.X(left + arm_w + 1), f.Y(body_top + 2),
               f.L(w - 2 * arm_w - 2), f.L(8), cushion);
      break;
    }
    default: {  // Standard: backrest, body, armrests, two cushions.
      const double back_h = rng.Uniform(16, 22);
      FillRect(img, f.X(left + arm_w - 2), f.Y(body_top - back_h),
               f.L(w - 2 * arm_w + 4), f.L(back_h + 4), fabric);
      FillRect(img, f.X(left), f.Y(body_top), f.L(w), f.L(body_h), fabric);
      FillRect(img, f.X(left), f.Y(body_top - 8), f.L(arm_w),
               f.L(body_h + 8), fabric);
      FillRect(img, f.X(left + w - arm_w), f.Y(body_top - 8), f.L(arm_w),
               f.L(body_h + 8), fabric);
      FillCircle(img, f.X(left + arm_w / 2), f.Y(body_top - 8),
                 f.L(arm_w / 2), fabric);
      FillCircle(img, f.X(left + w - arm_w / 2), f.Y(body_top - 8),
                 f.L(arm_w / 2), fabric);
      FillRect(img, f.X(left + arm_w + 1), f.Y(body_top + 2),
               f.L((w - 2 * arm_w) / 2 - 2), f.L(8), cushion);
      FillRect(img, f.X(50 + 1), f.Y(body_top + 2),
               f.L((w - 2 * arm_w) / 2 - 2), f.L(8), cushion);
      break;
    }
  }
}

// ---------------------------------------------------------------- Lamp --
// Variants: 0 = floor lamp, 1 = desk lamp, 2 = table lamp.

void DrawLamp(ImageU8& img, const Frame& f, Rng& rng) {
  static constexpr std::array<Rgb, 3> kShade = {
      Rgb{230, 215, 170}, Rgb{220, 190, 150}, Rgb{200, 200, 205}};
  const Rgb shade = PickColor(rng, kShade);
  const Rgb metal = Jitter(rng, Rgb{70, 70, 75}, 15);
  const int variant = static_cast<int>(rng.UniformInt(0, 2));

  switch (variant) {
    case 1: {  // Desk lamp: jointed arm + tilted head.
      FillEllipse(img, f.X(42), f.Y(86), f.L(13), f.L(4), metal);
      DrawLine(img, {f.X(42), f.Y(84)}, {f.X(34), f.Y(52)}, f.L(3), metal);
      DrawLine(img, {f.X(34), f.Y(52)}, {f.X(58), f.Y(30)}, f.L(3), metal);
      FillPolygon(img,
                  {{f.X(52), f.Y(22)},
                   {f.X(70), f.Y(30)},
                   {f.X(60), f.Y(44)},
                   {f.X(46), f.Y(33)}},
                  shade);
      break;
    }
    case 2: {  // Table lamp: wide shade, squat body.
      const double shade_w = rng.Uniform(30, 40);
      FillPolygon(img,
                  {{f.X(50 - shade_w * 0.32), f.Y(28)},
                   {f.X(50 + shade_w * 0.32), f.Y(28)},
                   {f.X(50 + shade_w / 2), f.Y(52)},
                   {f.X(50 - shade_w / 2), f.Y(52)}},
                  shade);
      FillEllipse(img, f.X(50), f.Y(66), f.L(9), f.L(12), metal);
      FillEllipse(img, f.X(50), f.Y(82), f.L(13), f.L(4), metal);
      break;
    }
    default: {  // Floor lamp: tall pole, trapezoid shade, base.
      const double shade_top_w = rng.Uniform(12, 22);
      const double shade_bot_w = rng.Uniform(26, 40);
      const double shade_h = rng.Uniform(16, 26);
      const double shade_top = rng.Uniform(14, 24);
      FillPolygon(img,
                  {{f.X(50 - shade_top_w / 2), f.Y(shade_top)},
                   {f.X(50 + shade_top_w / 2), f.Y(shade_top)},
                   {f.X(50 + shade_bot_w / 2), f.Y(shade_top + shade_h)},
                   {f.X(50 - shade_bot_w / 2), f.Y(shade_top + shade_h)}},
                  shade);
      FillRect(img, f.X(50 - 1.8), f.Y(shade_top + shade_h), f.L(3.6),
               f.L(82 - shade_top - shade_h), metal);
      FillEllipse(img, f.X(50), f.Y(84), f.L(rng.Uniform(12, 17)), f.L(4.5),
                  metal);
      break;
    }
  }
}

void DrawArchetype(ObjectClass cls, ImageU8& img, const Frame& f, Rng& rng) {
  switch (cls) {
    case ObjectClass::kChair:
      DrawChair(img, f, rng);
      return;
    case ObjectClass::kBottle:
      DrawBottle(img, f, rng);
      return;
    case ObjectClass::kPaper:
      DrawPaper(img, f, rng);
      return;
    case ObjectClass::kBook:
      DrawBook(img, f, rng);
      return;
    case ObjectClass::kTable:
      DrawTable(img, f, rng);
      return;
    case ObjectClass::kBox:
      DrawBox(img, f, rng);
      return;
    case ObjectClass::kWindow:
      DrawWindow(img, f, rng);
      return;
    case ObjectClass::kDoor:
      DrawDoor(img, f, rng);
      return;
    case ObjectClass::kSofa:
      DrawSofa(img, f, rng);
      return;
    case ObjectClass::kLamp:
      DrawLamp(img, f, rng);
      return;
  }
  SNOR_CHECK_MSG(false, "unknown class");
}

// Anisotropically rescales the canvas content about its centre (background
// uniform), standing in for out-of-plane viewpoint change.
ImageU8 ApplyAspect(const ImageU8& img, double aspect, std::uint8_t bg) {
  const int s = img.height();
  const int new_h = std::clamp(static_cast<int>(std::lround(s * aspect)),
                               8, 2 * s);
  ImageU8 squashed = Resize(img, img.width(), new_h, Interp::kBilinear);
  ImageU8 out(img.width(), s, 3, bg);
  const int off = (s - new_h) / 2;
  for (int y = 0; y < new_h; ++y) {
    const int oy = y + off;
    if (oy < 0 || oy >= s) continue;
    for (int x = 0; x < img.width(); ++x) {
      for (int c = 0; c < 3; ++c) {
        out.at(oy, x, c) = squashed.at(y, x, c);
      }
    }
  }
  return out;
}

}  // namespace

ImageU8 RenderObjectView(ObjectClass cls, int model_id,
                         const RenderOptions& options) {
  SNOR_CHECK_GE(options.canvas_size, 16);
  SNOR_CHECK_GE(options.scale, 0.1);
  const std::uint8_t bg = options.white_background ? 255 : 0;
  const int s = options.canvas_size;
  ImageU8 img(s, s, 3, bg);

  Frame frame;
  frame.cx = (s - 1) / 2.0;
  frame.cy = (s - 1) / 2.0;
  frame.u = s / 100.0 * 0.75 * options.scale;

  Rng model_rng(ModelSeed(cls, model_id));
  DrawArchetype(cls, img, frame, model_rng);

  // Per-model surface texture: a low-amplitude oriented sinusoidal
  // modulation of the object pixels. Real ShapeNet renders are textured,
  // which makes local keypoint descriptors model-specific rather than
  // class-generic; this reproduces that property for the SIFT/SURF/ORB
  // pipelines without materially moving the colour histograms.
  {
    const double amplitude = model_rng.Uniform(0.10, 0.22);
    const double freq = model_rng.Uniform(0.15, 0.55);
    const double ori = model_rng.Uniform(0.0, 3.14159);
    const double phase = model_rng.Uniform(0.0, 6.28318);
    const double fx = freq * std::cos(ori);
    const double fy = freq * std::sin(ori);
    for (int y = 0; y < s; ++y) {
      for (int x = 0; x < s; ++x) {
        const bool is_bg = img.at(y, x, 0) == bg &&
                           img.at(y, x, 1) == bg && img.at(y, x, 2) == bg;
        if (is_bg) continue;
        const double m =
            1.0 + amplitude * std::sin(fx * x + fy * y + phase);
        for (int c = 0; c < 3; ++c) {
          img.at(y, x, c) = static_cast<std::uint8_t>(
              std::clamp(img.at(y, x, c) * m, 0.0, 254.0));
        }
      }
    }
  }

  if (options.aspect != 1.0) {
    img = ApplyAspect(img, options.aspect, bg);
  }
  if (options.view_angle_deg != 0.0) {
    img = Rotate(img, options.view_angle_deg, bg);
  }

  const bool needs_nuisance = options.illumination != 1.0 ||
                              options.noise_stddev > 0.0 ||
                              options.occlusion_fraction > 0.0;
  if (!needs_nuisance) return img;

  Rng nuisance_rng(options.nuisance_seed ^ ModelSeed(cls, model_id));

  // Object mask: pixels that differ from the background.
  auto is_object = [&](int y, int x) {
    return img.at(y, x, 0) != bg || img.at(y, x, 1) != bg ||
           img.at(y, x, 2) != bg;
  };

  // Occluder: paint a background-coloured rotated bar across the object.
  // If the bar would erase (almost) the whole object the un-occluded
  // render is kept — a real segmented crop always contains some object.
  if (options.occlusion_fraction > 0.0) {
    auto count_object = [&](const ImageU8& im) {
      int count = 0;
      for (int y = 0; y < s; ++y) {
        for (int x = 0; x < s; ++x) {
          if (im.at(y, x, 0) != bg || im.at(y, x, 1) != bg ||
              im.at(y, x, 2) != bg) {
            ++count;
          }
        }
      }
      return count;
    };
    const int before = count_object(img);
    ImageU8 occluded = img;
    const double fraction = std::min(options.occlusion_fraction, 0.5);
    const double bar_w = s * std::sqrt(fraction);
    const double angle = nuisance_rng.Uniform(0, 3.14159);
    const double off = nuisance_rng.Uniform(-s / 4.0, s / 4.0);
    FillRotatedRect(occluded, frame.cx + off, frame.cy + off / 2, bar_w,
                    s * 1.5, angle, Rgb{bg, bg, bg});
    if (count_object(occluded) >= std::max(25, before / 5)) {
      img = std::move(occluded);
    }
  }

  for (int y = 0; y < s; ++y) {
    for (int x = 0; x < s; ++x) {
      if (!is_object(y, x)) continue;
      for (int c = 0; c < 3; ++c) {
        double v = img.at(y, x, c) * options.illumination;
        if (options.noise_stddev > 0.0) {
          v += nuisance_rng.Normal(0.0, options.noise_stddev);
        }
        img.at(y, x, c) =
            static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
      }
    }
  }
  return img;
}

}  // namespace snor
