#include "lexer.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace snor_analyze {

namespace fs = std::filesystem;

const std::string kGuardedByMarker = std::string("GUARDED") + "_BY(";
const std::string kLockRankMarker = std::string("LOCK") + "_RANK(";
const std::string kLifetimeBoundMarker = std::string("LIFETIME") + "_BOUND";
const std::string kOwnsViewsMarker = std::string("OWNS") + "_VIEWS";
const std::string kExpectMarker = std::string("EXPECT") + "-ANALYZE:";
const std::string kAnalyzeAsMarker = std::string("ANALYZE") + "-AS:";
const std::string kNolintNextMarker = std::string("NOLINT") + "NEXTLINE";
const std::string kNolintMarker = "NOLINT";

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

namespace {

// Two-character punctuators the analyses care about. Longer operators
// (`<<=`, `...`) are irrelevant here and lex as two tokens.
bool IsTwoCharPunct(char a, char b) {
  static const char* kPairs[] = {"::", "->", "++", "--", "==", "!=", "<=",
                                 ">=", "+=", "-=", "*=", "/=", "%=", "&=",
                                 "|=", "^=", "&&", "||", "<<", ">>"};
  for (const char* p : kPairs) {
    if (p[0] == a && p[1] == b) return true;
  }
  return false;
}

}  // namespace

Lexer::Lexer(std::string text) : text_(std::move(text)) {}

void Lexer::Run(SourceFile* out) {
  while (i_ < text_.size()) {
    const char c = text_[i_];
    if (c == '\n') {
      ++line_;
      at_line_start_ = true;
      ++i_;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i_;
      continue;
    }
    if (c == '#' && at_line_start_) {
      LexDirective(out);
      continue;
    }
    at_line_start_ = false;
    if (c == '/' && Peek(1) == '/') {
      LexLineComment(out);
      continue;
    }
    if (c == '/' && Peek(1) == '*') {
      LexBlockComment(out);
      continue;
    }
    if (c == 'R' && Peek(1) == '"' && !PrevIsIdentChar()) {
      LexRawString(out);
      continue;
    }
    if (c == '"') {
      LexString(out);
      continue;
    }
    if (c == '\'') {
      LexChar(out);
      continue;
    }
    if (IsIdentStart(c)) {
      LexIdent(out);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      LexNumber(out);
      continue;
    }
    LexPunct(out);
  }
}

char Lexer::Peek(std::size_t ahead) const {
  return i_ + ahead < text_.size() ? text_[i_ + ahead] : '\0';
}

bool Lexer::PrevIsIdentChar() const {
  return i_ > 0 && IsIdentChar(text_[i_ - 1]);
}

void Lexer::Emit(SourceFile* out, Tok kind, std::string text, int line) {
  out->tokens.push_back({kind, std::move(text), line});
}

// A user-defined literal suffix ("batch"s, 10ms-style string/char forms)
// binds to the literal; left in the stream it would surface as a phantom
// identifier and collide with tracked variable names.
void Lexer::ConsumeLiteralSuffix() {
  if (i_ < text_.size() && IsIdentStart(text_[i_])) {
    while (i_ < text_.size() && IsIdentChar(text_[i_])) ++i_;
  }
}

// Consumes a whole preprocessor directive (with \-continuations),
// recording #include "..." paths. Angle-bracket system includes are
// outside the project graph and are skipped. A continuation backslash
// may be followed by blanks or a \r before the newline (editors leave
// them; the compiler still continues the line), and block comments
// inside the directive body must not hide a continuation.
void Lexer::LexDirective(SourceFile* out) {
  const int start_line = line_;
  std::string body;
  while (i_ < text_.size()) {
    const char c = text_[i_];
    if (c == '\n') {
      const std::size_t last = body.find_last_not_of(" \t\r");
      if (last != std::string::npos && body[last] == '\\') {
        body.erase(last);
        ++line_;
        ++i_;
        continue;
      }
      break;  // Newline stays for the main loop to count.
    }
    // A trailing // comment is lexed normally so NOLINT directives on
    // include lines still register.
    if (c == '/' && Peek(1) == '/') {
      LexLineComment(out);
      break;
    }
    if (c == '/' && Peek(1) == '*') {
      LexBlockComment(out);
      body.push_back(' ');
      continue;
    }
    body.push_back(c);
    ++i_;
  }
  std::size_t p = body.find_first_not_of("# \t");
  if (p == std::string::npos) return;
  if (body.compare(p, 7, "include") != 0) return;
  const std::size_t open = body.find('"', p + 7);
  if (open == std::string::npos) return;
  const std::size_t close = body.find('"', open + 1);
  if (close == std::string::npos) return;
  out->includes.push_back(
      {body.substr(open + 1, close - open - 1), start_line});
}

void Lexer::LexLineComment(SourceFile* out) {
  const int start_line = line_;
  std::string text;
  while (i_ < text_.size() && text_[i_] != '\n') {
    text.push_back(text_[i_]);
    ++i_;
  }
  Emit(out, Tok::kComment, std::move(text), start_line);
}

void Lexer::LexBlockComment(SourceFile* out) {
  const int start_line = line_;
  std::string text;
  i_ += 2;
  text += "/*";
  while (i_ < text_.size()) {
    if (text_[i_] == '*' && Peek(1) == '/') {
      i_ += 2;
      text += "*/";
      break;
    }
    if (text_[i_] == '\n') ++line_;
    text.push_back(text_[i_]);
    ++i_;
  }
  Emit(out, Tok::kComment, std::move(text), start_line);
}

void Lexer::LexRawString(SourceFile* out) {
  const int start_line = line_;
  std::size_t open = text_.find('(', i_ + 2);
  if (open == std::string::npos) {
    i_ = text_.size();
    return;
  }
  // Built with append() rather than operator+: GCC 12's -Wrestrict emits a
  // bogus "accessing 9223372036854775810 bytes" diagnostic when it inlines
  // operator+(const char*, basic_string&&) here, which is fatal under the
  // -Werror check preset.
  std::string delim = ")";
  delim.append(text_, i_ + 2, open - i_ - 2);
  delim.push_back('"');
  std::size_t end = text_.find(delim, open + 1);
  if (end == std::string::npos) end = text_.size();
  for (std::size_t j = i_; j < end && j < text_.size(); ++j) {
    if (text_[j] == '\n') ++line_;
  }
  i_ = std::min(end + delim.size(), text_.size());
  ConsumeLiteralSuffix();
  Emit(out, Tok::kString, "", start_line);
}

void Lexer::LexString(SourceFile* out) {
  const int start_line = line_;
  ++i_;
  while (i_ < text_.size() && text_[i_] != '"') {
    if (text_[i_] == '\\') ++i_;
    if (i_ < text_.size() && text_[i_] == '\n') ++line_;
    ++i_;
  }
  if (i_ < text_.size()) ++i_;  // Closing quote.
  ConsumeLiteralSuffix();
  Emit(out, Tok::kString, "", start_line);
}

void Lexer::LexChar(SourceFile* out) {
  const int start_line = line_;
  ++i_;
  while (i_ < text_.size() && text_[i_] != '\'') {
    if (text_[i_] == '\\') ++i_;
    ++i_;
  }
  if (i_ < text_.size()) ++i_;
  ConsumeLiteralSuffix();
  Emit(out, Tok::kChar, "", start_line);
}

void Lexer::LexIdent(SourceFile* out) {
  const int start_line = line_;
  std::string text;
  while (i_ < text_.size() && IsIdentChar(text_[i_])) {
    text.push_back(text_[i_]);
    ++i_;
  }
  // String literal prefixes (u8"...", L"...") would mis-lex the quote.
  if (i_ < text_.size() && text_[i_] == '"') {
    LexString(out);
    return;
  }
  Emit(out, Tok::kIdent, std::move(text), start_line);
}

void Lexer::LexNumber(SourceFile* out) {
  const int start_line = line_;
  std::string text;
  while (i_ < text_.size()) {
    const char c = text_[i_];
    // A digit separator (1'000'000) is part of the number; without this
    // the `'` would open a bogus char literal and eat real code.
    if (c == '\'' && IsIdentChar(Peek(1))) {
      ++i_;
      continue;
    }
    if (IsIdentChar(c) || c == '.' ||
        ((c == '+' || c == '-') && i_ > 0 &&
         (text_[i_ - 1] == 'e' || text_[i_ - 1] == 'E'))) {
      text.push_back(c);
      ++i_;
      continue;
    }
    break;
  }
  Emit(out, Tok::kNumber, std::move(text), start_line);
}

void Lexer::LexPunct(SourceFile* out) {
  const int start_line = line_;
  if (i_ + 1 < text_.size() && IsTwoCharPunct(text_[i_], text_[i_ + 1])) {
    Emit(out, Tok::kPunct, text_.substr(i_, 2), start_line);
    i_ += 2;
    return;
  }
  Emit(out, Tok::kPunct, std::string(1, text_[i_]), start_line);
  ++i_;
}

void CollectNolint(SourceFile* file) {
  for (const Token& tok : file->tokens) {
    if (tok.kind != Tok::kComment) continue;
    const std::string& text = tok.text;
    const bool next_line = text.find(kNolintNextMarker) != std::string::npos;
    const std::size_t pos = text.find(kNolintMarker);
    if (pos == std::string::npos) continue;
    std::set<std::string> rules;
    std::size_t after =
        pos + (next_line ? kNolintNextMarker.size() : kNolintMarker.size());
    if (after < text.size() && text[after] == '(') {
      const std::size_t close = text.find(')', after);
      if (close != std::string::npos) {
        std::stringstream ss(text.substr(after + 1, close - after - 1));
        std::string rule;
        while (std::getline(ss, rule, ',')) {
          rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                     rule.end());
          if (!rule.empty()) rules.insert(rule);
        }
      }
    }
    const int target = tok.line + (next_line ? 1 : 0);
    auto it = file->nolint.find(target);
    if (rules.empty()) {
      file->nolint[target].clear();  // Bare NOLINT: suppress everything.
    } else if (it == file->nolint.end()) {
      file->nolint[target] = std::move(rules);
    } else if (!it->second.empty()) {
      it->second.insert(rules.begin(), rules.end());
    }
  }
}

void LoadFromString(std::string text, const std::string& disk_path,
                    SourceFile* out) {
  out->real_path = disk_path;
  out->path = out->real_path;
  Lexer(std::move(text)).Run(out);
  // Honour an ANALYZE-AS virtual path in an early comment (fixtures use
  // it to exercise the path-scoped analyses).
  for (const Token& tok : out->tokens) {
    if (tok.line > 5) break;
    if (tok.kind != Tok::kComment) continue;
    const std::size_t pos = tok.text.find(kAnalyzeAsMarker);
    if (pos == std::string::npos) continue;
    std::size_t s = pos + kAnalyzeAsMarker.size();
    while (s < tok.text.size() &&
           std::isspace(static_cast<unsigned char>(tok.text[s])) != 0) {
      ++s;
    }
    std::size_t e = s;
    while (e < tok.text.size() &&
           std::isspace(static_cast<unsigned char>(tok.text[e])) == 0) {
      ++e;
    }
    if (e > s) out->path = tok.text.substr(s, e - s);
  }
  CollectNolint(out);
}

bool LoadFile(const fs::path& disk_path, SourceFile* out) {
  std::ifstream in(disk_path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  LoadFromString(buffer.str(), disk_path.generic_string(), out);
  return true;
}

std::uint64_t Fnv1aMix(std::uint64_t seed, const std::string& data) {
  std::uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t Fnv1a(const std::string& data) {
  return Fnv1aMix(14695981039346656037ull, data);
}

}  // namespace snor_analyze
