#ifndef SNOR_TOOLS_ANALYZE_CALLGRAPH_H_
#define SNOR_TOOLS_ANALYZE_CALLGRAPH_H_

// Pass 2, step 1: links per-TU summaries (summary.h) into a whole-
// program view. Call edges are resolved by unqualified callee name.
// A uniquely-named callee keeps full may-semantics (anything it might
// do is attributed to the caller). When several definitions share a
// name the link is ambiguous, and only behaviour ALL candidates agree
// on propagates: a call may-blocks only if every same-named definition
// may block, and contributes only the intersection of the candidates'
// transitive lock acquisitions. Without this rule a single collision
// (e.g. an atomic `Counter::Reset` sharing its name with a locking
// `TraceRecorder::Reset`) would attribute unrelated locking to every
// caller and bury the real findings.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "summary.h"

namespace snor_analyze {

/// A function definition in the linked program: (TU index, fn index).
struct FunctionRef {
  std::size_t tu = 0;
  std::size_t fn = 0;

  bool operator<(const FunctionRef& o) const {
    return tu != o.tu ? tu < o.tu : fn < o.fn;
  }
  bool operator==(const FunctionRef& o) const {
    return tu == o.tu && fn == o.fn;
  }
};

/// A program-wide mutex identity. Unresolved local spellings (e.g. a
/// mutex received by reference) keep their spelling with `resolved` =
/// false; they participate in blocking-under-lock but not lock ranking.
struct MutexId {
  std::string qualified;  // "Cls::name" or bare name.
  int rank = -1;
  bool resolved = false;

  bool operator<(const MutexId& o) const { return qualified < o.qualified; }
  bool operator==(const MutexId& o) const {
    return qualified == o.qualified;
  }
};

class CallGraph {
 public:
  explicit CallGraph(const std::vector<TuSummary>& tus);

  const std::vector<TuSummary>& tus() const { return tus_; }
  const FunctionSummary& Fn(const FunctionRef& ref) const {
    return tus_[ref.tu].functions[ref.fn];
  }

  /// All definitions whose unqualified name is `name`.
  const std::vector<FunctionRef>* DefsByName(const std::string& name) const;

  /// Resolves a mutex spelling at a use site inside `site` to a global
  /// identity: exact (class, name) match against the site's class
  /// first, then a unique bare-name match anywhere in the program,
  /// otherwise an unresolved identity carrying the spelling.
  MutexId ResolveMutex(const FunctionRef& site,
                       const std::string& spelling) const;

  /// True if the function may block (directly or through any callee).
  bool MayBlock(const FunctionRef& ref) const;

  /// Human-readable chain "f → g → <primitive>" explaining why `ref`
  /// may block ("" when it cannot).
  std::string BlockingChain(const FunctionRef& ref) const;

  /// True if calling `callee_name` fulfils (set_value) the promise
  /// carried by argument `arg_index`, directly or transitively.
  bool Fulfils(const std::string& callee_name, int arg_index) const;

  /// Mutex identities `ref` may acquire, including through callees
  /// (only resolved identities participate — ranking needs a decl).
  const std::set<MutexId>& TransitiveAcquires(const FunctionRef& ref) const;

  /// Ambiguity-aware view of one call edge from `caller`: true iff
  /// every same-named definition (excluding `caller` itself) may
  /// block; `*blocking_def` then names one of them for chain
  /// rendering. False (no edge) when no definition is known.
  bool CalleeMayBlock(const std::string& callee, const FunctionRef& caller,
                      FunctionRef* blocking_def) const;

  /// Mutexes every same-named definition of `callee` (excluding
  /// `caller`) transitively acquires — the intersection across the
  /// candidates; empty when no definition is known.
  std::set<MutexId> CalleeAcquires(const std::string& callee,
                                   const FunctionRef& caller) const;

  /// True iff calling `name` yields a borrowed view: a builtin view
  /// method (data/c_str/begin/…), or every known same-named definition
  /// has a view-shaped return type (unanimity, like CalleeMayBlock).
  bool ReturnsView(const std::string& name) const;

  /// True iff calling `name` kills the generation of argument
  /// `arg_index` (swap/reset/Load*/reassignment), directly or through
  /// the generic param-pass edges (closure like ComputeFulfils).
  bool KillsParam(const std::string& name, int arg_index) const;

  /// Program-wide OWNS_VIEWS class-head annotations.
  bool IsOwnerClass(const std::string& cls) const {
    return owner_classes_.count(cls) > 0;
  }

  /// Program-wide OWNS_VIEWS member sanctioning (the decl usually lives
  /// in a different TU than the store).
  bool IsSanctionedMember(const std::string& member) const {
    return view_members_.count(member) > 0;
  }

 private:
  void BuildMutexIndex();
  void ComputeMayBlock();
  void ComputeFulfils();
  void ComputeTransitiveAcquires();
  void ComputeBorrowFacts();

  const std::vector<TuSummary>& tus_;
  std::vector<FunctionRef> all_;
  std::map<std::string, std::vector<FunctionRef>> by_name_;
  // (class, field) -> rank; bare name -> {qualified candidates}.
  std::map<std::pair<std::string, std::string>, int> mutex_by_cls_;
  std::map<std::string, std::set<MutexId>> mutex_by_name_;
  std::map<FunctionRef, std::string> blocks_;  // Direct/inherited cause.
  std::map<FunctionRef, FunctionRef> block_via_;
  std::set<std::pair<std::string, int>> fulfils_;
  std::map<FunctionRef, std::set<MutexId>> trans_acquires_;
  std::set<std::pair<std::string, int>> kills_;
  std::set<std::string> owner_classes_;
  std::set<std::string> view_members_;
};

}  // namespace snor_analyze

#endif  // SNOR_TOOLS_ANALYZE_CALLGRAPH_H_
