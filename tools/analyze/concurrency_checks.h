#ifndef SNOR_TOOLS_ANALYZE_CONCURRENCY_CHECKS_H_
#define SNOR_TOOLS_ANALYZE_CONCURRENCY_CHECKS_H_

// Pass 2, step 2: the four interprocedural concurrency checks over a
// linked CallGraph. All findings honour per-line NOLINT suppressions
// recorded in the TU summaries.
//
//  lock-order-cycle    Lock-acquisition-order graph: an edge H -> M is
//                      added whenever M is acquired (directly, or by a
//                      callee reached with H held) while H is held.
//                      Reports rank inversions against LOCK_RANK(n)
//                      annotations (lower rank = acquired first) and
//                      cycles among the edges (deadlock potential).
//  blocking-under-lock Blocking primitive (sleep, file/stream IO,
//                      thread join, waits) reached — directly or
//                      through any call chain — while holding a lock.
//                      A condvar wait is exempt for the mutex it
//                      atomically releases, but not for any other.
//  condvar-predicate   Condition-variable wait with neither a
//                      predicate overload nor an enclosing re-check
//                      loop (spurious/lost wakeup hazard).
//  promise-exactly-once Abstract interpretation of promise-routing
//                      loops: every path of a loop iteration must
//                      fulfil or forward each promise-carrying value
//                      exactly once. Only definite violations report
//                      (paths that may have fulfilled stay silent).

#include <vector>

#include "callgraph.h"
#include "lexer.h"

namespace snor_analyze {

void CheckLockOrder(const CallGraph& graph, std::vector<Finding>* out);
void CheckBlockingUnderLock(const CallGraph& graph,
                            std::vector<Finding>* out);
void CheckCondvarPredicate(const CallGraph& graph,
                           std::vector<Finding>* out);
void CheckPromiseExactlyOnce(const CallGraph& graph,
                             std::vector<Finding>* out);

/// Runs all four checks.
void RunConcurrencyChecks(const CallGraph& graph, std::vector<Finding>* out);

}  // namespace snor_analyze

#endif  // SNOR_TOOLS_ANALYZE_CONCURRENCY_CHECKS_H_
