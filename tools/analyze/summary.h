#ifndef SNOR_TOOLS_ANALYZE_SUMMARY_H_
#define SNOR_TOOLS_ANALYZE_SUMMARY_H_

// Pass 1 of the whole-program analyzer: one TuSummary per translation
// unit, holding everything pass 2 (callgraph.h, concurrency_checks.h)
// needs to reason across files — functions defined, calls made (with
// the set of locks held at the call site), lock acquisitions and their
// nesting, blocking primitives, condition-variable waits, and
// promise-fulfilment flow events.
//
// Summaries serialize to a line-oriented text format and are cached on
// disk keyed by file content hash (tools/analyze cache dir), so a warm
// incremental run never re-tokenizes an unchanged TU. The cache header
// carries the summary-format version plus a user salt; either changing
// invalidates every entry (analyzer upgrades must never reuse stale
// summaries).

#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace snor_analyze {

// Bumped whenever the summary format or extraction semantics change;
// cached summaries from older versions are rejected wholesale.
// v2: borrow/escape facts (view returns, LIFETIME_BOUND / OWNS_VIEWS
// annotations, kill params, borrow candidates).
inline constexpr int kSummaryFormatVersion = 2;

/// A mutex (or other lockable) declaration. `rank` comes from a
/// `LOCK_RANK(n)` comment on the declaration line; -1 = unranked.
/// Lower ranks must be acquired first (outer locks).
struct MutexDecl {
  std::string name;  // Field or variable name, e.g. "mutex_".
  std::string cls;   // Enclosing class, "" for free/local mutexes.
  int rank = -1;
  int line = 0;

  std::string QualifiedName() const {
    return cls.empty() ? name : cls + "::" + name;
  }
};

/// A lock acquisition: `held` is the (local-name) set of locks already
/// held when this one is taken — the raw material of the lock-order
/// graph.
struct AcquireSite {
  std::string mutex;  // Local spelling, resolved against decls in pass 2.
  int line = 0;
  std::vector<std::string> held;
};

/// A call made by a function, with the locks held at the call site.
struct CallSite {
  std::string callee;  // Unqualified name; linked by name in pass 2.
  int line = 0;
  std::vector<std::string> held;
};

/// A direct blocking primitive: sleep, file/stream IO, thread join,
/// condvar wait. For waits, `released` names the mutex the wait
/// atomically releases (exempt from blocking-under-lock for itself).
struct BlockingSite {
  std::string what;  // Human-readable primitive, e.g. "std::getline".
  int line = 0;
  std::vector<std::string> held;
  std::string released;
};

/// A condition_variable wait site.
struct WaitSite {
  std::string cv;
  int line = 0;
  bool has_predicate = false;  // wait(lock, pred) overload.
  bool in_loop = false;        // Bare wait re-checked by an enclosing loop.
};

/// Promise-flow events, recorded per loop in source order with branch
/// structure, and abstractly interpreted in pass 2 (exactly-once check).
enum class PEv {
  kBranchOpen,    // if (...) {
  kBranchElse,    // } else {
  kBranchClose,   // }  (end of if/else)
  kLoopOpen,      // nested loop body begins (join semantics)
  kLoopClose,
  kFulfilDirect,  // var.reply.set_value(...) / var->...set_value(...)
  kFulfilCall,    // Callee(var) — fulfils iff callee fulfils that param
  kForward,       // container.push_back(var) — ownership moves on
  kContinue,      // terminal edge of this loop iteration
  kBreakOrReturn, // leaves the loop entirely; not a per-item terminal
  kEnd            // end of loop body (implicit terminal)
};

struct PEvent {
  PEv kind = PEv::kEnd;
  std::string var;     // Flow variable, empty for structural events.
  std::string callee;  // For kFulfilCall.
  int arg_index = -1;  // For kFulfilCall.
  int line = 0;
};

/// One loop whose body routes promise-carrying values.
struct PromiseLoop {
  int line = 0;
  std::vector<PEvent> events;
};

/// How a function's return value relates to borrowed storage
/// (syntactic classification of the return type at the definition).
enum class ViewReturn {
  kNone,        // Returns by value (or nothing).
  kPointer,     // Raw pointer return.
  kSpan,        // std::span return.
  kStringView,  // std::string_view return.
  kIterator,    // iterator / const_iterator return.
};

/// One potential borrow hazard recorded by pass 1. Pass 2 resolves
/// whether the bound value really is a view (via `view_callee` and the
/// cross-TU ReturnsView relation), whether a helper call really kills
/// the owner (`kill_callee`/`kill_arg` via the kills-closure), and
/// whether a member store is sanctioned (OWNS_VIEWS member), then
/// reports the survivors as view-escape / view-generation /
/// view-invalidation findings.
struct BorrowCandidate {
  enum Kind {
    kEscapeMember,   // View stored into a class member.
    kEscapeStatic,   // View stored into a static/global.
    kEscapeCapture,  // Outer view referenced inside a worker lambda.
    kGeneration,     // Owner swap/reset/Load*/reassigned under a live view.
    kInvalidation,   // Owner container mutated under a live view.
  };
  Kind kind = Kind::kEscapeMember;
  std::string var;          // View variable ("" for direct member stores).
  std::string owner;        // Owner the view was taken from ("" unknown).
  std::string view_callee;  // Producing call; "" = definitely a view.
  std::string detail;       // Member name / kill method / dispatcher name.
  std::string kill_callee;  // kGeneration via helper: resolved in pass 2.
  int kill_arg = -1;
  int bind_line = 0;  // Where the view was taken.
  int line = 0;       // Where the finding reports (store/use site).
};

/// Everything pass 2 needs to know about one function definition.
struct FunctionSummary {
  std::string name;
  std::string cls;  // Enclosing (or `Cls::` qualified) class, "" = free.
  int line = 0;
  // `[[noreturn]]` at the definition: the function never returns, so it
  // can never return to a caller still holding a lock — pass 2 excludes
  // it from may-block propagation (abort paths are not blocking).
  bool is_noreturn = false;
  std::vector<std::string> params;  // Parameter names, in order.
  std::vector<AcquireSite> acquires;
  std::vector<CallSite> calls;
  std::vector<BlockingSite> blocking;
  std::vector<WaitSite> waits;
  std::vector<PromiseLoop> promise_loops;
  // Parameter indices this function directly fulfils (set_value).
  std::vector<int> fulfils_params;
  // Parameters forwarded to other calls: fulfils-closure in pass 2.
  struct ParamPass {
    int param = -1;
    std::string callee;
    int arg_index = -1;
  };
  std::vector<ParamPass> passes;
  // --- borrow facts (summary format v2) ---
  // Syntactic classification of the return type at the definition.
  ViewReturn view_return = ViewReturn::kNone;
  // `// LIFETIME_BOUND` on the signature: the returned view is tied to
  // a parameter (or *this) — callers take responsibility for lifetime.
  bool lifetime_bound = false;
  // Parameter indices whose generation this function kills (swap /
  // reset / Load* / whole-object reassignment); closed transitively in
  // pass 2 through the generic `passes` edges.
  std::vector<int> kill_params;
  // Potential borrow hazards in this body, resolved by pass 2.
  std::vector<BorrowCandidate> borrows;
};

/// A finding from the intra-procedural analyses, cached alongside the
/// summary so a warm run can replay them without re-tokenizing. Only
/// valid while the whole-tree fingerprint (fallible registry + layer
/// config) matches.
struct CachedFinding {
  int line = 0;
  std::string rule;
  std::string message;
};

/// Per-translation-unit summary: the unit of caching.
struct TuSummary {
  std::string path;       // Virtual path (ANALYZE-AS aware).
  std::string real_path;  // Path on disk.
  std::uint64_t content_hash = 0;
  std::vector<IncludeDirective> includes;
  std::map<int, std::set<std::string>> nolint;
  std::set<std::string> fallible;  // Status/Result-returning decl names.
  std::vector<MutexDecl> mutexes;
  std::set<std::string> condvars;  // condition_variable member/local names.
  // Classes whose head line carries `// OWNS_VIEWS`: their pointer- and
  // iterator-returning methods yield borrowed views and must be
  // LIFETIME_BOUND-annotated (view-return check).
  std::set<std::string> owner_classes;
  // Member names whose declaration line carries `// OWNS_VIEWS`: the
  // member is sanctioned to hold views (generation-managed storage),
  // exempt from the view-escape check. Program-wide union in pass 2.
  std::set<std::string> view_members;
  std::vector<FunctionSummary> functions;
  std::vector<CachedFinding> intra_findings;
  // Fingerprint of cross-file inputs the intra findings depended on.
  std::uint64_t intra_fingerprint = 0;

  bool Suppressed(int line, const std::string& rule) const {
    auto it = nolint.find(line);
    if (it == nolint.end()) return false;
    return it->second.empty() || it->second.count(rule) > 0;
  }
};

/// Extracts a summary from a tokenized file (pass 1). `content_hash`
/// and `intra_findings` are filled in by the driver.
[[nodiscard]] TuSummary BuildTuSummary(const SourceFile& file);

/// Serializes to the line-oriented cache format (also used by tests to
/// diff summaries).
std::string SerializeSummary(const TuSummary& summary);

/// Parses a serialized summary; false on any malformed input (the
/// caller treats that as a cache miss, never an error).
bool ParseSummary(const std::string& text, TuSummary* out);

/// Cache file name for a TU path (path-shaped bytes flattened + hash).
std::string CacheEntryName(const std::string& tu_path);

/// Loads a cached summary; true only when the entry exists, parses, and
/// matches `expected_hash` + the current format version + `salt`.
/// Read failures (including injected io-read/truncated-file faults)
/// are cache misses.
[[nodiscard]] bool LoadCachedSummary(const std::filesystem::path& cache_dir,
                                     std::uint64_t salt,
                                     const std::string& tu_path,
                                     std::uint64_t expected_hash,
                                     TuSummary* out);

/// Writes a summary to the cache (best-effort; failures are ignored —
/// the next run just re-summarizes).
void StoreCachedSummary(const std::filesystem::path& cache_dir,
                        std::uint64_t salt, const TuSummary& summary);

/// Bounds the on-disk cache: evicts least-recently-used `.sum` entries
/// (by mtime — LoadCachedSummary bumps it on every hit, ties broken by
/// name) until the directory's total entry size is at or below
/// `max_bytes`. Eviction can only make a later run colder (evicted TUs
/// re-summarize), never change its findings. 0 = unbounded, no-op.
void EnforceCacheBudget(const std::filesystem::path& cache_dir,
                        std::uint64_t max_bytes);

}  // namespace snor_analyze

#endif  // SNOR_TOOLS_ANALYZE_SUMMARY_H_
