#!/bin/sh
# Incremental summary-cache behaviour test for snor_analyze (tier-1
# ctest snor_analyze_cache):
#   1. cold run populates the cache (everything re-summarized);
#   2. warm run re-summarizes nothing;
#   3. editing one TU re-summarizes exactly that TU;
#   4. a --cache-salt bump (simulated format-version change) invalidates
#      everything;
#   5. a corrupted cache entry (truncated / garbage) is rejected and
#      rebuilt, never trusted or crashed on;
#   6. io-read / truncated-file fault injection on every cache read
#      degrades to a full re-summarize with correct findings;
#   7. --cache-max-bytes LRU eviction: an over-budget cache is trimmed
#      oldest-first, and eviction only ever makes the next run colder —
#      never changes findings.
#
# Usage: cache_test.sh <snor_analyze-binary> <scratch-dir>
set -eu

BIN="$1"
SCRATCH="$2"

rm -rf "$SCRATCH"
mkdir -p "$SCRATCH/tree/src/util"
TREE="$SCRATCH/tree"
CACHE="$SCRATCH/cache"

cat > "$TREE/layers.toml" <<'EOF'
[layers]
util = []
EOF

cat > "$TREE/src/util/alpha.cc" <<'EOF'
void AlphaWork() {
  int total = 0;
  total += 1;
}
EOF

cat > "$TREE/src/util/beta.cc" <<'EOF'
void BetaWork() {
  int count = 0;
  count += 2;
}
EOF

cat > "$TREE/src/util/gamma.cc" <<'EOF'
void GammaWork() {
  int sum = 0;
  sum += 3;
}
EOF

run() {
  # shellcheck disable=SC2086
  "$BIN" --root "$TREE" --config "$TREE/layers.toml" \
    --baseline "$TREE/absent-baseline.txt" --cache-dir "$CACHE" $1
}

fail() {
  echo "CACHE-TEST FAIL: $1" >&2
  exit 1
}

expect() {
  step="$1"
  pattern="$2"
  out="$3"
  case "$out" in
    *"$pattern"*) ;;
    *) fail "$step: expected '$pattern' in: $out" ;;
  esac
}

# 1. Cold: everything re-summarized, cache populated.
out=$(run "") || fail "cold run exited non-zero"
expect "cold" "3 file(s) (3 re-summarized, 0 cached)" "$out"
[ -n "$(ls "$CACHE" 2>/dev/null)" ] || fail "cold run wrote no cache entries"

# 2. Warm: nothing re-summarized.
out=$(run "") || fail "warm run exited non-zero"
expect "warm" "3 file(s) (0 re-summarized, 3 cached)" "$out"

# 3. Edit one TU: exactly one re-summarize (content-hash invalidation).
printf '\nvoid BetaExtra() {\n  int more = 4;\n  more += 1;\n}\n' \
  >> "$TREE/src/util/beta.cc"
out=$(run "") || fail "edited run exited non-zero"
expect "edit" "3 file(s) (1 re-summarized, 2 cached)" "$out"

# 4. Salt bump (simulated cache-format version change): everything
#    stale, everything rebuilt.
out=$(run "--cache-salt 7") || fail "salt-bump run exited non-zero"
expect "salt-bump" "3 file(s) (3 re-summarized, 0 cached)" "$out"
out=$(run "--cache-salt 7") || fail "salt-bump warm run exited non-zero"
expect "salt-bump-warm" "3 file(s) (0 re-summarized, 3 cached)" "$out"

# 5a. Truncated cache entry: rejected (summaries must end with their
#     terminator line), TU re-summarized, file repaired.
entry=$(ls "$CACHE" | head -n 1)
[ -n "$entry" ] || fail "no cache entry to corrupt"
size=$(wc -c < "$CACHE/$entry")
dd if="$CACHE/$entry" of="$CACHE/$entry.tmp" bs=1 count=$((size / 2)) \
  2>/dev/null
mv "$CACHE/$entry.tmp" "$CACHE/$entry"
out=$(run "--cache-salt 7") || fail "truncated-cache run exited non-zero"
expect "truncated" "3 file(s) (1 re-summarized, 2 cached)" "$out"

# 5b. Garbage cache entry: same story.
printf 'not a summary at all\n' > "$CACHE/$entry"
out=$(run "--cache-salt 7") || fail "garbage-cache run exited non-zero"
expect "garbage" "3 file(s) (1 re-summarized, 2 cached)" "$out"

# 6. Fault injection on cache reads (io-read + truncated-file fault
#    points fire on every read): every lookup misses, the analyzer
#    degrades to a cold run and still succeeds.
out=$(run "--cache-salt 7 --fault-rate 1.0 --fault-seed 11") ||
  fail "fault-injected run exited non-zero"
expect "fault-injected" "3 file(s) (3 re-summarized, 0 cached)" "$out"

# And the faults must not have poisoned the cache for the next run.
out=$(run "--cache-salt 7") || fail "post-fault warm run exited non-zero"
expect "post-fault-warm" "3 file(s) (0 re-summarized, 3 cached)" "$out"

# 7a. LRU eviction, total wipe: a 1-byte budget evicts every entry. The
#     run that evicted still used its warm cache (eviction happens after
#     the store pass), the next run is fully cold, and findings are
#     identical — eviction makes runs colder, never incorrect.
out=$(run "--cache-salt 7 --cache-max-bytes 1") ||
  fail "evict-all run exited non-zero"
expect "evict-all" "3 file(s) (0 re-summarized, 3 cached)" "$out"
expect "evict-all-findings" "0 finding(s)" "$out"
[ -z "$(ls "$CACHE" 2>/dev/null)" ] || fail "1-byte budget left cache entries"
out=$(run "--cache-salt 7") || fail "post-evict cold run exited non-zero"
expect "post-evict-cold" "3 file(s) (3 re-summarized, 0 cached)" "$out"
expect "post-evict-findings" "0 finding(s)" "$out"

# 7b. LRU order: warm every entry, then set the budget one byte below
#     the total. Exactly one entry — the least-recently-used one — is
#     evicted, so the next run re-summarizes exactly one TU.
out=$(run "--cache-salt 7") || fail "pre-evict warm run exited non-zero"
expect "pre-evict-warm" "3 file(s) (0 re-summarized, 3 cached)" "$out"
total=$(cat "$CACHE"/* | wc -c)
out=$(run "--cache-salt 7 --cache-max-bytes $((total - 1))") ||
  fail "evict-one run exited non-zero"
[ "$(ls "$CACHE" | wc -l)" -eq 2 ] || fail "expected exactly one eviction"
out=$(run "--cache-salt 7") || fail "post-evict-one run exited non-zero"
expect "post-evict-one" "3 file(s) (1 re-summarized, 2 cached)" "$out"

echo "cache_test: all checks passed"
