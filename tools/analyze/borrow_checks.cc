#include "borrow_checks.h"

#include <string>
#include <utility>

namespace snor_analyze {

namespace {

const char kRuleViewReturn[] = "view-return";
const char kRuleViewEscape[] = "view-escape";
const char kRuleViewGeneration[] = "view-generation";
const char kRuleViewInvalidation[] = "view-invalidation";

void Report(const CallGraph& graph, const FunctionRef& site, int line,
            const char* rule, std::string message,
            std::vector<Finding>* out) {
  const TuSummary& tu = graph.tus()[site.tu];
  if (tu.Suppressed(line, rule)) return;
  out->push_back({tu.path, line, rule, std::move(message), false});
}

const char* ViewReturnName(ViewReturn vr) {
  switch (vr) {
    case ViewReturn::kNone: return "value";
    case ViewReturn::kPointer: return "raw pointer";
    case ViewReturn::kSpan: return "std::span";
    case ViewReturn::kStringView: return "std::string_view";
    case ViewReturn::kIterator: return "iterator";
  }
  return "value";
}

// The provenance fragment of a finding message: how we know the bound
// value is a view, and of what.
std::string Provenance(const BorrowCandidate& b) {
  std::string out;
  if (!b.var.empty()) {
    out += "view '" + b.var + "'";
  } else {
    out += "a view";
  }
  if (!b.owner.empty()) out += " of '" + b.owner + "'";
  if (!b.view_callee.empty()) {
    out += " (via " + b.view_callee + "())";
  }
  return out;
}

std::string BindSuffix(const BorrowCandidate& b) {
  if (b.bind_line <= 0 || b.bind_line == b.line) return std::string();
  return " [borrowed at line " + std::to_string(b.bind_line) + "]";
}

}  // namespace

void CheckViewReturns(const CallGraph& graph, std::vector<Finding>* out) {
  const std::vector<TuSummary>& tus = graph.tus();
  for (std::size_t t = 0; t < tus.size(); ++t) {
    for (std::size_t f = 0; f < tus[t].functions.size(); ++f) {
      const FunctionRef ref{t, f};
      const FunctionSummary& fn = graph.Fn(ref);
      if (fn.view_return == ViewReturn::kNone || fn.lifetime_bound) {
        continue;
      }
      // span/string_view are views by type, anywhere. Raw pointers and
      // iterators are only borrows when the class hands out views of
      // owned storage (OWNS_VIEWS) — flagging every pointer return
      // tree-wide would bury the signal in factory/tag lookups.
      const bool typed_view = fn.view_return == ViewReturn::kSpan ||
                              fn.view_return == ViewReturn::kStringView;
      if (!typed_view && !graph.IsOwnerClass(fn.cls)) continue;
      std::string name = fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
      Report(graph, ref, fn.line, kRuleViewReturn,
             name + " returns a borrowed view (" +
                 ViewReturnName(fn.view_return) +
                 ") without a LIFETIME_BOUND annotation tying it to its "
                 "owner",
             out);
    }
  }
}

void CheckBorrowCandidates(const CallGraph& graph,
                           std::vector<Finding>* out) {
  const std::vector<TuSummary>& tus = graph.tus();
  for (std::size_t t = 0; t < tus.size(); ++t) {
    for (std::size_t f = 0; f < tus[t].functions.size(); ++f) {
      const FunctionRef ref{t, f};
      const FunctionSummary& fn = graph.Fn(ref);
      for (const BorrowCandidate& b : fn.borrows) {
        // Is the bound value actually a view? Definite when pass 1 saw
        // data()/&v[i]/span-typed binds; otherwise resolved against the
        // cross-TU ReturnsView relation.
        if (!b.view_callee.empty() && !graph.ReturnsView(b.view_callee)) {
          continue;
        }
        switch (b.kind) {
          case BorrowCandidate::kEscapeMember: {
            if (graph.IsSanctionedMember(b.detail)) break;
            Report(graph, ref, b.line, kRuleViewEscape,
                   Provenance(b) + " stored into member '" + b.detail +
                       "' outlives the borrow; copy the data or mark "
                       "the member OWNS_VIEWS with generation discipline" +
                       BindSuffix(b),
                   out);
            break;
          }
          case BorrowCandidate::kEscapeStatic: {
            Report(graph, ref, b.line, kRuleViewEscape,
                   Provenance(b) + " stored into '" + b.detail +
                       "' outlives every borrow; copy the data instead" +
                       BindSuffix(b),
                   out);
            break;
          }
          case BorrowCandidate::kEscapeCapture: {
            Report(graph, ref, b.line, kRuleViewEscape,
                   Provenance(b) + " captured by a lambda handed to " +
                       b.detail + "; take the view inside the worker so "
                       "it cannot cross a snapshot swap" +
                       BindSuffix(b),
                   out);
            break;
          }
          case BorrowCandidate::kGeneration: {
            // Helper-mediated kills must be confirmed against the
            // kills-closure; direct swap/reset/Load* already are kills.
            std::string via = b.detail;
            if (!b.kill_callee.empty()) {
              if (!graph.KillsParam(b.kill_callee, b.kill_arg)) break;
              via = b.kill_callee + "() -> generation kill of '" +
                    b.owner + "'";
            } else {
              via = "'" + b.owner + "." + b.detail + "'";
              if (b.detail == "operator=") via = "reassignment of '" + b.owner + "'";
              if (b.detail == "std::swap") via = "std::swap of '" + b.owner + "'";
            }
            Report(graph, ref, b.line, kRuleViewGeneration,
                   Provenance(b) + " used after " + via +
                       " replaced the owner's generation" + BindSuffix(b),
                   out);
            break;
          }
          case BorrowCandidate::kInvalidation: {
            Report(graph, ref, b.line, kRuleViewInvalidation,
                   Provenance(b) + " used after '" + b.owner + "." +
                       b.detail + "()' may have reallocated the storage "
                       "it points into" + BindSuffix(b),
                   out);
            break;
          }
        }
      }
    }
  }
}

void RunBorrowChecks(const CallGraph& graph, std::vector<Finding>* out) {
  CheckViewReturns(graph, out);
  CheckBorrowCandidates(graph, out);
}

}  // namespace snor_analyze
