// snor_analyze: dependency-DAG + dataflow static analyzer for the snor
// tree.
//
// Where snor_lint (tools/lint) is a single-line token scanner, this tool
// runs a real C++ tokenizer over every translation unit under src/,
// bench/, examples/, tests/ and tools/ and performs three analysis
// families the line scanner cannot express:
//
// Layering (tools/analyze/layers.toml declares the module DAG):
//   layer-violation   A file in src/<module>/ includes a header from a
//                     module that is not among the module's declared
//                     dependencies (e.g. `core` including `serve`, or
//                     `serve` including the isolated `nn` stack).
//   include-cycle     The project include graph contains a cycle.
//
// Intra-procedural dataflow:
//   use-after-move    A local is read after being passed to std::move
//                     and before being reassigned or re-initialised.
//   unchecked-status  The payload of a `Result<T>` local (.value(),
//                     MoveValue(), *r, r->) or the error details of a
//                     `Status` local (.code(), .message(), .ToString())
//                     are consumed before any `.ok()` / `.status()`
//                     check.
//   lock-temporary    A statement-position `std::lock_guard` /
//                     `std::unique_lock` / `std::scoped_lock` temporary:
//                     the lock is destroyed at the end of the full
//                     expression, guarding nothing.
//
// Concurrency annotations:
//   guarded-by        A member or local annotated `// GUARDED_BY(x)` is
//                     written inside a `ParallelFor` lambda body in the
//                     same file without honouring its guard. Guards:
//                       GUARDED_BY(some_mutex)     write requires a
//                         lock_guard/unique_lock/scoped_lock on
//                         `some_mutex` in scope at the write;
//                       GUARDED_BY(per_worker_slot) writes must be
//                         subscripted (`v[i] = ...`) — whole-object
//                         mutation (push_back, assign, clear) races;
//                       GUARDED_BY(caller)          never written inside
//                         a ParallelFor lambda (caller-serialized);
//                       GUARDED_BY(atomic)          internally
//                         synchronized, no write constraint.
//
// Suppression: `// NOLINT(rule)` on the line, `// NOLINTNEXTLINE(rule)`
// above it, or a (path, rule) entry in the baseline file
// (tools/analyze/baseline.txt) for intentionally deferred findings.
//
// Output: human-readable text (default) or SARIF 2.1.0 (`--format=sarif`
// or `--sarif-out FILE`), consumable by editors and CI annotators.
//
// Self-test: `snor_analyze --self-test <dir>` mirrors snor_lint's
// harness: fixtures carry `// EXPECT-ANALYZE: rule` annotations and the
// run fails on any missed or unexpected finding. A fixture's
// `// ANALYZE-AS: virtual/path` directive assigns the virtual path used
// by the path-scoped analyses (layering, cycles).

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace snor_analyze {

namespace fs = std::filesystem;

// Markers are assembled at runtime so the analyzer's own source never
// contains the literal annotation text (it scans tools/ too).
const std::string kGuardedByMarker = std::string("GUARDED") + "_BY(";
const std::string kExpectMarker = std::string("EXPECT") + "-ANALYZE:";
const std::string kAnalyzeAsMarker = std::string("ANALYZE") + "-AS:";
const std::string kNolintNextMarker = std::string("NOLINT") + "NEXTLINE";
const std::string kNolintMarker = "NOLINT";

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  bool baselined = false;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
};

// -------------------------------------------------------------- tokens --

enum class Tok { kIdent, kNumber, kString, kChar, kPunct, kComment };

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  int line = 1;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Two-character punctuators the analyses care about. Longer operators
// (`<<=`, `...`) are irrelevant here and lex as two tokens.
bool IsTwoCharPunct(char a, char b) {
  static const char* kPairs[] = {"::", "->", "++", "--", "==", "!=", "<=",
                                 ">=", "+=", "-=", "*=", "/=", "%=", "&=",
                                 "|=", "^=", "&&", "||", "<<", ">>"};
  for (const char* p : kPairs) {
    if (p[0] == a && p[1] == b) return true;
  }
  return false;
}

struct IncludeDirective {
  std::string path;  // The quoted include path, verbatim.
  int line = 1;
};

/// One analyzed translation unit (or header).
struct SourceFile {
  std::string path;       // Virtual path used by path-scoped analyses.
  std::string real_path;  // Path on disk.
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  // line -> suppressed rules; empty set = all rules suppressed.
  std::map<int, std::set<std::string>> nolint;

  bool IsHeader() const {
    return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
  }

  bool Suppressed(int line, const std::string& rule) const {
    auto it = nolint.find(line);
    if (it == nolint.end()) return false;
    return it->second.empty() || it->second.count(rule) > 0;
  }
};

/// Tokenizes C++ source. Preprocessor directives are consumed whole
/// (including backslash continuations) and never emit tokens; #include
/// "..." directives are recorded separately. Comments ARE emitted as
/// tokens so annotation/suppression parsing never confuses a comment
/// with a string literal.
class Lexer {
 public:
  explicit Lexer(std::string text) : text_(std::move(text)) {}

  void Run(SourceFile* out) {
    while (i_ < text_.size()) {
      const char c = text_[i_];
      if (c == '\n') {
        ++line_;
        at_line_start_ = true;
        ++i_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexDirective(out);
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && Peek(1) == '/') {
        LexLineComment(out);
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment(out);
        continue;
      }
      if (c == 'R' && Peek(1) == '"' && !PrevIsIdentChar()) {
        LexRawString(out);
        continue;
      }
      if (c == '"') {
        LexString(out);
        continue;
      }
      if (c == '\'') {
        LexChar(out);
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdent(out);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        LexNumber(out);
        continue;
      }
      LexPunct(out);
    }
  }

 private:
  char Peek(std::size_t ahead) const {
    return i_ + ahead < text_.size() ? text_[i_ + ahead] : '\0';
  }
  bool PrevIsIdentChar() const { return i_ > 0 && IsIdentChar(text_[i_ - 1]); }

  void Emit(SourceFile* out, Tok kind, std::string text, int line) {
    out->tokens.push_back({kind, std::move(text), line});
  }

  // Consumes a whole preprocessor directive (with \-continuations),
  // recording #include "..." paths. Angle-bracket system includes are
  // outside the project graph and are skipped.
  void LexDirective(SourceFile* out) {
    const int start_line = line_;
    std::string body;
    while (i_ < text_.size()) {
      const char c = text_[i_];
      if (c == '\n') {
        if (!body.empty() && body.back() == '\\') {
          body.pop_back();
          ++line_;
          ++i_;
          continue;
        }
        break;  // Newline stays for the main loop to count.
      }
      // A trailing // comment is lexed normally so NOLINT directives on
      // include lines still register.
      if (c == '/' && Peek(1) == '/') {
        LexLineComment(out);
        break;
      }
      body.push_back(c);
      ++i_;
    }
    std::size_t p = body.find_first_not_of("# \t");
    if (p == std::string::npos) return;
    if (body.compare(p, 7, "include") != 0) return;
    const std::size_t open = body.find('"', p + 7);
    if (open == std::string::npos) return;
    const std::size_t close = body.find('"', open + 1);
    if (close == std::string::npos) return;
    out->includes.push_back(
        {body.substr(open + 1, close - open - 1), start_line});
  }

  void LexLineComment(SourceFile* out) {
    const int start_line = line_;
    std::string text;
    while (i_ < text_.size() && text_[i_] != '\n') {
      text.push_back(text_[i_]);
      ++i_;
    }
    Emit(out, Tok::kComment, std::move(text), start_line);
  }

  void LexBlockComment(SourceFile* out) {
    const int start_line = line_;
    std::string text;
    i_ += 2;
    text += "/*";
    while (i_ < text_.size()) {
      if (text_[i_] == '*' && Peek(1) == '/') {
        i_ += 2;
        text += "*/";
        break;
      }
      if (text_[i_] == '\n') ++line_;
      text.push_back(text_[i_]);
      ++i_;
    }
    Emit(out, Tok::kComment, std::move(text), start_line);
  }

  void LexRawString(SourceFile* out) {
    const int start_line = line_;
    std::size_t open = text_.find('(', i_ + 2);
    if (open == std::string::npos) {
      i_ = text_.size();
      return;
    }
    const std::string delim =
        ")" + text_.substr(i_ + 2, open - i_ - 2) + "\"";
    std::size_t end = text_.find(delim, open + 1);
    if (end == std::string::npos) end = text_.size();
    for (std::size_t j = i_; j < end && j < text_.size(); ++j) {
      if (text_[j] == '\n') ++line_;
    }
    i_ = std::min(end + delim.size(), text_.size());
    Emit(out, Tok::kString, "", start_line);
  }

  void LexString(SourceFile* out) {
    const int start_line = line_;
    ++i_;
    while (i_ < text_.size() && text_[i_] != '"') {
      if (text_[i_] == '\\') ++i_;
      if (i_ < text_.size() && text_[i_] == '\n') ++line_;
      ++i_;
    }
    if (i_ < text_.size()) ++i_;  // Closing quote.
    Emit(out, Tok::kString, "", start_line);
  }

  void LexChar(SourceFile* out) {
    const int start_line = line_;
    ++i_;
    while (i_ < text_.size() && text_[i_] != '\'') {
      if (text_[i_] == '\\') ++i_;
      ++i_;
    }
    if (i_ < text_.size()) ++i_;
    Emit(out, Tok::kChar, "", start_line);
  }

  void LexIdent(SourceFile* out) {
    const int start_line = line_;
    std::string text;
    while (i_ < text_.size() && IsIdentChar(text_[i_])) {
      text.push_back(text_[i_]);
      ++i_;
    }
    // String literal prefixes (u8"...", L"...") would mis-lex the quote.
    if (i_ < text_.size() && text_[i_] == '"') {
      LexString(out);
      return;
    }
    Emit(out, Tok::kIdent, std::move(text), start_line);
  }

  void LexNumber(SourceFile* out) {
    const int start_line = line_;
    std::string text;
    while (i_ < text_.size() &&
           (IsIdentChar(text_[i_]) || text_[i_] == '.' ||
            ((text_[i_] == '+' || text_[i_] == '-') && i_ > 0 &&
             (text_[i_ - 1] == 'e' || text_[i_ - 1] == 'E')))) {
      text.push_back(text_[i_]);
      ++i_;
    }
    Emit(out, Tok::kNumber, std::move(text), start_line);
  }

  void LexPunct(SourceFile* out) {
    const int start_line = line_;
    if (i_ + 1 < text_.size() && IsTwoCharPunct(text_[i_], text_[i_ + 1])) {
      Emit(out, Tok::kPunct, text_.substr(i_, 2), start_line);
      i_ += 2;
      return;
    }
    Emit(out, Tok::kPunct, std::string(1, text_[i_]), start_line);
    ++i_;
  }

  std::string text_;
  std::size_t i_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

// Parses NOLINT / NOLINTNEXTLINE directives out of comment tokens.
void CollectNolint(SourceFile* file) {
  for (const Token& tok : file->tokens) {
    if (tok.kind != Tok::kComment) continue;
    const std::string& text = tok.text;
    const bool next_line = text.find(kNolintNextMarker) != std::string::npos;
    const std::size_t pos = text.find(kNolintMarker);
    if (pos == std::string::npos) continue;
    std::set<std::string> rules;
    std::size_t after =
        pos + (next_line ? kNolintNextMarker.size() : kNolintMarker.size());
    if (after < text.size() && text[after] == '(') {
      const std::size_t close = text.find(')', after);
      if (close != std::string::npos) {
        std::stringstream ss(text.substr(after + 1, close - after - 1));
        std::string rule;
        while (std::getline(ss, rule, ',')) {
          rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                     rule.end());
          if (!rule.empty()) rules.insert(rule);
        }
      }
    }
    const int target = tok.line + (next_line ? 1 : 0);
    auto it = file->nolint.find(target);
    if (rules.empty()) {
      file->nolint[target].clear();  // Bare NOLINT: suppress everything.
    } else if (it == file->nolint.end()) {
      file->nolint[target] = std::move(rules);
    } else if (!it->second.empty()) {
      it->second.insert(rules.begin(), rules.end());
    }
  }
}

bool LoadFile(const fs::path& disk_path, SourceFile* out) {
  std::ifstream in(disk_path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out->real_path = disk_path.generic_string();
  out->path = out->real_path;
  Lexer(buffer.str()).Run(out);
  // Honour an ANALYZE-AS virtual path in an early comment (fixtures use
  // it to exercise the path-scoped analyses).
  for (const Token& tok : out->tokens) {
    if (tok.line > 5) break;
    if (tok.kind != Tok::kComment) continue;
    const std::size_t pos = tok.text.find(kAnalyzeAsMarker);
    if (pos == std::string::npos) continue;
    std::size_t s = pos + kAnalyzeAsMarker.size();
    while (s < tok.text.size() &&
           std::isspace(static_cast<unsigned char>(tok.text[s])) != 0) {
      ++s;
    }
    std::size_t e = s;
    while (e < tok.text.size() &&
           std::isspace(static_cast<unsigned char>(tok.text[e])) == 0) {
      ++e;
    }
    if (e > s) out->path = tok.text.substr(s, e - s);
  }
  CollectNolint(out);
  return true;
}

// -------------------------------------------------------- layer config --

/// Declared module DAG, parsed from a small TOML subset:
///   [layers]
///   core = ["data", "features", ...]
struct LayerConfig {
  // Module -> allowed direct dependency modules (self always allowed).
  std::map<std::string, std::set<std::string>> allowed;

  bool Known(const std::string& module) const {
    return allowed.count(module) > 0;
  }
};

bool ParseLayersToml(const fs::path& path, LayerConfig* out,
                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read layer config " + path.generic_string();
    return false;
  }
  std::string line;
  std::string section;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    std::size_t e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);
    if (line.front() == '[') {
      const std::size_t close = line.find(']');
      if (close == std::string::npos) {
        *error = path.generic_string() + ":" + std::to_string(lineno) +
                 ": unterminated section header";
        return false;
      }
      section = line.substr(1, close - 1);
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      *error = path.generic_string() + ":" + std::to_string(lineno) +
               ": expected `key = [..]`";
      return false;
    }
    std::string key = line.substr(0, eq);
    key.erase(std::remove_if(key.begin(), key.end(), ::isspace), key.end());
    if (section != "layers") continue;  // Future sections are ignored.
    std::set<std::string> deps;
    std::string value = line.substr(eq + 1);
    std::string current;
    bool in_string = false;
    for (char c : value) {
      if (c == '"') {
        if (in_string && !current.empty()) deps.insert(current);
        current.clear();
        in_string = !in_string;
      } else if (in_string) {
        current.push_back(c);
      }
    }
    out->allowed[key] = std::move(deps);
  }
  if (out->allowed.empty()) {
    *error = path.generic_string() + ": no [layers] entries found";
    return false;
  }
  return true;
}

// Module of a virtual path: "src/<module>/..." -> module, else empty
// (bench/, examples/, tests/, tools/ are unconstrained consumers).
std::string ModuleOf(const std::string& path) {
  const std::size_t src = path.rfind("src/", 0) == 0
                              ? 0
                              : path.find("/src/");
  std::size_t begin;
  if (path.rfind("src/", 0) == 0) {
    begin = 4;
  } else if (src != std::string::npos) {
    begin = src + 5;
  } else {
    return std::string();
  }
  const std::size_t slash = path.find('/', begin);
  if (slash == std::string::npos) return std::string();
  return path.substr(begin, slash - begin);
}

// Module of an include path: "util/status.h" -> "util" when `util` is a
// declared module.
std::string IncludeModule(const std::string& include_path,
                          const LayerConfig& config) {
  const std::size_t slash = include_path.find('/');
  if (slash == std::string::npos) return std::string();
  const std::string mod = include_path.substr(0, slash);
  return config.Known(mod) ? mod : std::string();
}

void CheckLayering(const SourceFile& file, const LayerConfig& config,
                   std::vector<Finding>* out) {
  const std::string module = ModuleOf(file.path);
  if (module.empty() || !config.Known(module)) return;
  const std::set<std::string>& allowed = config.allowed.at(module);
  for (const IncludeDirective& inc : file.includes) {
    const std::string target = IncludeModule(inc.path, config);
    if (target.empty() || target == module) continue;
    if (allowed.count(target) > 0) continue;
    if (file.Suppressed(inc.line, "layer-violation")) continue;
    out->push_back(
        {file.path, inc.line, "layer-violation",
         "module `" + module + "` must not include `" + inc.path +
             "`: `" + target + "` is not among its declared dependencies " +
             "(tools/analyze/layers.toml)"});
  }
}

// ---------------------------------------------------------- cycle check --

// Builds the project include graph over the analyzed files and reports
// every elementary cycle found by DFS (each once, at its back-edge).
void CheckIncludeCycles(const std::vector<SourceFile>& files,
                        std::vector<Finding>* out) {
  // Keys are root-relative ("src/util/status.h"), so absolute analyzed
  // paths and the project's src/-rooted include style line up.
  auto rel_key = [](const std::string& p) -> std::string {
    static const char* const kRoots[] = {"src/", "bench/", "examples/",
                                         "tests/", "tools/"};
    for (const char* marker : kRoots) {
      if (p.rfind(marker, 0) == 0) return p;
      const std::size_t pos = p.find(std::string("/") + marker);
      if (pos != std::string::npos) return p.substr(pos + 1);
    }
    return p;
  };
  std::map<std::string, std::size_t> by_path;
  for (std::size_t i = 0; i < files.size(); ++i) {
    by_path[rel_key(files[i].path)] = i;
  }
  auto resolve = [&](const SourceFile& from,
                     const std::string& inc) -> long {
    // Project convention: includes are rooted at src/ (or at the
    // consumer directory for bench/tests helpers).
    const std::string rel = rel_key(from.path);
    const std::string dir =
        rel.find('/') != std::string::npos
            ? rel.substr(0, rel.rfind('/') + 1)
            : std::string();
    for (const std::string& candidate :
         {std::string("src/") + inc, dir + inc, inc}) {
      auto it = by_path.find(candidate);
      if (it != by_path.end()) return static_cast<long>(it->second);
    }
    return -1;
  };

  struct Edge {
    std::size_t to;
    int line;
  };
  std::vector<std::vector<Edge>> graph(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const IncludeDirective& inc : files[i].includes) {
      const long target = resolve(files[i], inc.path);
      if (target >= 0 && static_cast<std::size_t>(target) != i) {
        graph[i].push_back({static_cast<std::size_t>(target), inc.line});
      }
    }
  }

  // Iterative colored DFS; a back-edge to a gray node closes a cycle.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(files.size(), Color::kWhite);
  std::vector<std::size_t> stack_path;
  std::set<std::set<std::size_t>> reported;

  struct Frame {
    std::size_t node;
    std::size_t edge = 0;
  };
  for (std::size_t root = 0; root < files.size(); ++root) {
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> stack{{root, 0}};
    color[root] = Color::kGray;
    stack_path.push_back(root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.edge >= graph[frame.node].size()) {
        color[frame.node] = Color::kBlack;
        stack_path.pop_back();
        stack.pop_back();
        continue;
      }
      const Edge edge = graph[frame.node][frame.edge++];
      if (color[edge.to] == Color::kWhite) {
        color[edge.to] = Color::kGray;
        stack_path.push_back(edge.to);
        stack.push_back({edge.to, 0});
      } else if (color[edge.to] == Color::kGray) {
        // Cycle: from edge.to ... frame.node -> edge.to.
        std::set<std::size_t> members;
        std::string rendered;
        bool in_cycle = false;
        for (std::size_t node : stack_path) {
          if (node == edge.to) in_cycle = true;
          if (!in_cycle) continue;
          members.insert(node);
          rendered += files[node].path + " -> ";
        }
        rendered += files[edge.to].path;
        if (reported.insert(members).second &&
            !files[frame.node].Suppressed(edge.line, "include-cycle")) {
          out->push_back({files[frame.node].path, edge.line,
                          "include-cycle",
                          "include cycle: " + rendered});
        }
      }
    }
  }
}

// ------------------------------------------------------------ dataflow --

// Names of Status/Result-returning functions, collected from every
// declaration in the analyzed set so `auto r = Fallible(...)` locals can
// be typed.
std::set<std::string> BuildFallibleRegistry(
    const std::vector<SourceFile>& files) {
  std::set<std::string> registry = {"RetryWithBackoff", "status"};
  for (const SourceFile& file : files) {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent) continue;
      std::size_t name_at = 0;
      if (toks[i].text == "Status") {
        name_at = i + 1;
      } else if (toks[i].text == "Result" && toks[i + 1].text == "<") {
        int depth = 0;
        std::size_t j = i + 1;
        for (; j < toks.size(); ++j) {
          if (toks[j].kind == Tok::kComment) continue;
          if (toks[j].text == "<") ++depth;
          if (toks[j].text == ">") --depth;
          if (toks[j].text == ">>") depth -= 2;
          if (depth <= 0) break;
        }
        if (j >= toks.size()) continue;
        name_at = j + 1;
      } else {
        continue;
      }
      while (name_at < toks.size() && toks[name_at].kind == Tok::kComment) {
        ++name_at;
      }
      if (name_at + 1 >= toks.size()) continue;
      if (toks[name_at].kind != Tok::kIdent) continue;
      if (toks[name_at + 1].text != "(") continue;
      const std::string& name = toks[name_at].text;
      if (std::isupper(static_cast<unsigned char>(name[0])) != 0) {
        registry.insert(name);
      }
    }
  }
  return registry;
}

enum class VarKind { kStatus, kResult };

struct VarState {
  VarKind kind = VarKind::kStatus;
  bool checked = false;
  int declared_depth = 0;
};

struct MoveState {
  int moved_depth = 0;  // Brace depth where the move happened.
  int move_line = 0;
};

/// Runs use-after-move, unchecked-status, lock-temporary and guarded-by
/// over one file's token stream.
class DataflowAnalyzer {
 public:
  DataflowAnalyzer(const SourceFile& file,
                   const std::set<std::string>& fallible,
                   std::vector<Finding>* out)
      : file_(file), fallible_(fallible), out_(out) {
    // Strip comments up front; every index below is into code_.
    for (const Token& tok : file.tokens) {
      if (tok.kind != Tok::kComment) code_.push_back(tok);
    }
  }

  void Run() {
    CollectGuardedDecls();
    CollectParallelForBodies();
    Scan();
  }

 private:
  const Token& At(std::size_t i) const {
    static const Token kEnd{Tok::kPunct, "", 0};
    return i < code_.size() ? code_[i] : kEnd;
  }
  bool Is(std::size_t i, std::string_view text) const {
    return i < code_.size() && code_[i].text == text;
  }
  bool IsIdent(std::size_t i, std::string_view text) const {
    return i < code_.size() && code_[i].kind == Tok::kIdent &&
           code_[i].text == text;
  }

  void Report(int line, const char* rule, std::string message) {
    if (file_.Suppressed(line, rule)) return;
    out_->push_back({file_.path, line, rule, std::move(message)});
  }

  // Skips a balanced template argument list starting at `i` (which must
  // be '<'); returns the index just past the closing '>'. Returns `i`
  // unchanged when the list does not close (comparison, not template).
  std::size_t SkipTemplateArgs(std::size_t i) const {
    int depth = 0;
    for (std::size_t j = i; j < code_.size() && j < i + 256; ++j) {
      if (code_[j].text == "<") ++depth;
      else if (code_[j].text == ">") --depth;
      else if (code_[j].text == ">>") depth -= 2;
      else if (code_[j].text == ";" || code_[j].text == "{") return i;
      if (depth <= 0) return j + 1;
    }
    return i;
  }

  // Skips a balanced (...) starting at `i` (must be '('); returns index
  // just past ')'.
  std::size_t SkipParens(std::size_t i) const {
    int depth = 0;
    for (std::size_t j = i; j < code_.size(); ++j) {
      if (code_[j].text == "(") ++depth;
      if (code_[j].text == ")" && --depth == 0) return j + 1;
    }
    return code_.size();
  }

  std::size_t SkipBrackets(std::size_t i) const {
    int depth = 0;
    for (std::size_t j = i; j < code_.size(); ++j) {
      if (code_[j].text == "[") ++depth;
      if (code_[j].text == "]" && --depth == 0) return j + 1;
    }
    return code_.size();
  }

  // ---- guarded-by ----

  struct GuardedDecl {
    std::string guard;  // Mutex name, "per_worker_slot", "caller", "atomic".
    int line = 0;
  };

  // Associates `// GUARDED_BY(x)` comments with the declaration on the
  // same line: the first identifier followed by `;`, `=`, `{`, `(` or
  // `[` among that line's code tokens.
  void CollectGuardedDecls() {
    for (const Token& tok : file_.tokens) {
      if (tok.kind != Tok::kComment) continue;
      const std::size_t pos = tok.text.find(kGuardedByMarker);
      if (pos == std::string::npos) continue;
      const std::size_t open = pos + kGuardedByMarker.size() - 1;
      const std::size_t close = tok.text.find(')', open);
      if (close == std::string::npos) continue;
      std::string guard = tok.text.substr(open + 1, close - open - 1);
      guard.erase(std::remove_if(guard.begin(), guard.end(), ::isspace),
                  guard.end());
      if (guard.empty()) continue;
      std::string name;
      for (std::size_t i = 0; i + 1 < code_.size(); ++i) {
        if (code_[i].line != tok.line) continue;
        if (code_[i].kind != Tok::kIdent) continue;
        const std::string& next = code_[i + 1].text;
        if (next == ";" || next == "=" || next == "{" || next == "(" ||
            next == "[") {
          name = code_[i].text;
          break;
        }
      }
      if (!name.empty()) guarded_[name] = {guard, tok.line};
    }
  }

  // Records [body_begin, body_end) token ranges of every lambda passed
  // to ParallelFor in this file.
  void CollectParallelForBodies() {
    for (std::size_t i = 0; i + 1 < code_.size(); ++i) {
      if (code_[i].kind != Tok::kIdent || code_[i].text != "ParallelFor") {
        continue;
      }
      if (!Is(i + 1, "(")) continue;
      const std::size_t call_end = SkipParens(i + 1);
      // First top-level '{' inside the call opens the lambda body.
      for (std::size_t j = i + 2; j < call_end; ++j) {
        if (code_[j].text != "{") continue;
        int depth = 0;
        std::size_t k = j;
        for (; k < code_.size(); ++k) {
          if (code_[k].text == "{") ++depth;
          if (code_[k].text == "}" && --depth == 0) break;
        }
        parallel_bodies_.push_back({j, k});
        break;
      }
    }
  }

  bool InParallelBody(std::size_t i, std::size_t* body_begin,
                      std::size_t* body_end) const {
    for (const auto& [begin, end] : parallel_bodies_) {
      if (i > begin && i < end) {
        *body_begin = begin;
        *body_end = end;
        return true;
      }
    }
    return false;
  }

  // True when a lock_guard/unique_lock/scoped_lock on `mutex_name` is
  // declared between body_begin and `at`, in a scope still open at `at`.
  bool LockHeld(std::size_t body_begin, std::size_t at,
                const std::string& mutex_name) const {
    int depth = 0;
    // Open-scope stack of lock positions: (depth at decl, covered).
    std::vector<std::pair<int, bool>> scopes{{0, false}};
    for (std::size_t i = body_begin + 1; i < at; ++i) {
      const std::string& t = code_[i].text;
      if (t == "{") {
        ++depth;
        scopes.push_back({depth, scopes.back().second});
      } else if (t == "}") {
        --depth;
        if (scopes.size() > 1) scopes.pop_back();
      } else if (code_[i].kind == Tok::kIdent &&
                 (t == "lock_guard" || t == "unique_lock" ||
                  t == "scoped_lock")) {
        std::size_t j = i + 1;
        if (Is(j, "<")) j = SkipTemplateArgs(j);
        if (At(j).kind == Tok::kIdent) ++j;  // The lock variable name.
        if (!Is(j, "(")) continue;
        const std::size_t close = SkipParens(j);
        for (std::size_t k = j + 1; k + 1 < close; ++k) {
          if (code_[k].kind == Tok::kIdent &&
              code_[k].text == mutex_name) {
            scopes.back().second = true;
            break;
          }
        }
      }
    }
    return scopes.back().second;
  }

  // Mutating member-call suffixes treated as writes for guarded names.
  static bool IsMutatorName(const std::string& name) {
    static const std::set<std::string> kMutators = {
        "push_back", "emplace_back", "pop_back", "insert",   "erase",
        "clear",     "resize",       "reserve",  "assign",   "emplace",
        "Set",       "Add",          "Record",   "store",    "swap"};
    return kMutators.count(name) > 0;
  }

  // Classifies a potential write at index `i` (an identifier token).
  // Returns 0 = not a write, 1 = subscripted (per-slot) write,
  // 2 = whole-object write. Walks the access path (`x[i].field`,
  // `x->member`) to the mutating operator or method.
  int ClassifyWrite(std::size_t i) const {
    const bool address_of =
        i > 0 && code_[i - 1].text == "&" &&
        (i < 2 || (code_[i - 2].kind == Tok::kPunct &&
                   code_[i - 2].text != ")" && code_[i - 2].text != "]"));
    std::size_t j = i + 1;
    bool subscripted = false;
    bool mutator_call = false;
    while (j < code_.size()) {
      if (Is(j, "[")) {
        subscripted = true;
        j = SkipBrackets(j);
        continue;
      }
      if ((Is(j, ".") || Is(j, "->")) && At(j + 1).kind == Tok::kIdent) {
        if (Is(j + 2, "(")) {
          // A method call terminates the access path.
          mutator_call = IsMutatorName(code_[j + 1].text);
          break;
        }
        j += 2;
        continue;
      }
      break;
    }
    const std::string& after = At(j).text;
    const bool assign = after == "=" || after == "+=" || after == "-=" ||
                        after == "*=" || after == "/=" || after == "%=" ||
                        after == "&=" || after == "|=" || after == "^=";
    const bool incdec = after == "++" || after == "--" ||
                        (i > 0 && (code_[i - 1].text == "++" ||
                                   code_[i - 1].text == "--"));
    if (assign || incdec || mutator_call || address_of) {
      return subscripted ? 1 : 2;
    }
    return 0;
  }

  void CheckGuardedWrite(std::size_t i) {
    auto it = guarded_.find(code_[i].text);
    if (it == guarded_.end()) return;
    std::size_t body_begin = 0;
    std::size_t body_end = 0;
    if (!InParallelBody(i, &body_begin, &body_end)) return;
    const int write = ClassifyWrite(i);
    if (write == 0) return;
    const std::string& guard = it->second.guard;
    const int line = code_[i].line;
    if (guard == "atomic") return;
    if (guard == "caller") {
      Report(line, "guarded-by",
             "`" + code_[i].text + "` is GUARDED_BY(caller): it must " +
                 "never be written inside a ParallelFor lambda " +
                 "(caller-serialized state)");
      return;
    }
    if (guard == "per_worker_slot") {
      if (write != 1) {
        Report(line, "guarded-by",
               "`" + code_[i].text + "` is GUARDED_BY(per_worker_slot): " +
                   "inside a ParallelFor lambda only subscripted " +
                   "per-index writes are race-free; whole-object " +
                   "mutation is a data race");
      }
      return;
    }
    if (!LockHeld(body_begin, i, guard)) {
      Report(line, "guarded-by",
             "write to `" + code_[i].text + "` inside a ParallelFor " +
                 "lambda without holding its guard `" + guard +
                 "` (declare a std::lock_guard on `" + guard +
                 "` in the enclosing scope)");
    }
  }

  // ---- lock-temporary ----

  void CheckLockTemporary(std::size_t i) {
    const std::string& name = code_[i].text;
    if (name != "lock_guard" && name != "unique_lock" &&
        name != "scoped_lock") {
      return;
    }
    // Statement-initial position only: `;`/`{`/`}` (or std:: after one)
    // precedes the type. `return std::unique_lock(...)`, `auto l = ...`
    // and declarations with a variable name are all fine.
    std::size_t before = i;
    if (before >= 2 && code_[before - 1].text == "::" &&
        code_[before - 2].text == "std") {
      before -= 2;
    }
    if (before > 0) {
      const std::string& prev = code_[before - 1].text;
      if (prev != ";" && prev != "{" && prev != "}") return;
    }
    std::size_t j = i + 1;
    if (Is(j, "<")) j = SkipTemplateArgs(j);
    if (!Is(j, "(")) return;  // Named declaration or other use.
    Report(code_[i].line, "lock-temporary",
           "`std::" + name + "` temporary is destroyed at the end of " +
               "the statement and guards nothing; name it " +
               "(`std::" + name + "<...> lock(mu);`)");
  }

  // ---- main scan ----

  struct Scope {
    std::map<std::string, VarState> vars;
    std::map<std::string, MoveState> moved;
  };

  VarState* FindVar(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto v = it->vars.find(name);
      if (v != it->vars.end()) return &v->second;
    }
    return nullptr;
  }

  MoveState* FindMoved(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto v = it->moved.find(name);
      if (v != it->moved.end()) return &v->second;
    }
    return nullptr;
  }

  void ClearMoved(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      it->moved.erase(name);
    }
  }

  // Drops every move recorded at `depth` or deeper across all scopes.
  void EraseMovesAtOrBelow(int depth) {
    for (Scope& scope : scopes_) {
      for (auto it = scope.moved.begin(); it != scope.moved.end();) {
        if (it->second.moved_depth >= depth) {
          it = scope.moved.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  // True when the statement containing token `i` is a gtest-style
  // assertion (EXPECT_*/ASSERT_*): asserting on `.code()` or a value
  // IS the check, so consuming there is fine.
  bool InAssertionStatement(std::size_t i) const {
    for (std::size_t k = i, steps = 0; k > 0 && steps < 64; --k, ++steps) {
      const Token& t = code_[k - 1];
      if (t.text == ";" || t.text == "{" || t.text == "}") break;
      if (t.kind == Tok::kIdent && (t.text.rfind("EXPECT_", 0) == 0 ||
                                    t.text.rfind("ASSERT_", 0) == 0)) {
        return true;
      }
    }
    return false;
  }

  // Declares Status/Result locals. Returns tokens consumed (0 = no
  // declaration here).
  std::size_t TryDeclare(std::size_t i) {
    if (paren_depth_ > 0) return 0;  // Parameters and condition inits.
    std::size_t name_at = 0;
    VarKind kind = VarKind::kStatus;
    if (IsIdent(i, "Status")) {
      name_at = i + 1;
    } else if (IsIdent(i, "Result") && Is(i + 1, "<")) {
      const std::size_t past = SkipTemplateArgs(i + 1);
      if (past == i + 1) return 0;
      name_at = past;
      kind = VarKind::kResult;
    } else if (IsIdent(i, "auto")) {
      // `auto r = Fallible(...)`: typed via the fallible registry.
      std::size_t n = i + 1;
      if (Is(n, "&") || Is(n, "*")) ++n;
      if (At(n).kind != Tok::kIdent || !Is(n + 1, "=")) return 0;
      // First called identifier of the initializer.
      std::size_t j = n + 2;
      std::string called;
      for (; j < code_.size() && !Is(j, ";"); ++j) {
        if (code_[j].kind == Tok::kIdent && Is(j + 1, "(")) {
          called = code_[j].text;
          break;
        }
        if (code_[j].kind == Tok::kIdent || code_[j].text == "::" ||
            code_[j].text == "." || code_[j].text == "->") {
          continue;
        }
        break;
      }
      if (called.empty() || fallible_.count(called) == 0) return 0;
      scopes_.back().vars[code_[n].text] = {VarKind::kResult, false,
                                            brace_depth_};
      return 1;  // Leave the initializer to the use scanner.
    } else {
      return 0;
    }
    if (At(name_at).kind != Tok::kIdent) return 0;
    const std::string& next = At(name_at + 1).text;
    if (next != "=" && next != "(" && next != "{" && next != ";") return 0;
    // `Status` as a return type of a declaration (`Status Foo();` at
    // class scope) also matches `(`; require a lowercase-ish local name
    // or an initializer to cut those out.
    if (next == "(" &&
        std::isupper(static_cast<unsigned char>(At(name_at).text[0])) != 0) {
      return 0;
    }
    // A value whose initializer never calls a fallible function is
    // known by construction (`Result<string> r = std::string("x")`,
    // default-OK `Status st;`) and needs no .ok() gate.
    bool fallible_init = false;
    for (std::size_t j = name_at + 1; j < code_.size() && !Is(j, ";");
         ++j) {
      if (code_[j].kind == Tok::kIdent && Is(j + 1, "(") &&
          fallible_.count(code_[j].text) > 0) {
        fallible_init = true;
        break;
      }
    }
    scopes_.back().vars[At(name_at).text] = {kind, !fallible_init,
                                             brace_depth_};
    return name_at - i + 1;
  }

  void Scan() {
    scopes_.push_back({});
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Token& tok = code_[i];
      if (tok.text == "{") {
        // A constructor-init-list move (`: member_(std::move(param))`)
        // is consumed when the body opens; without this, the moved
        // state would outlive the function and poison later ones.
        if (in_init_list_) {
          EraseMovesAtOrBelow(brace_depth_);
          in_init_list_ = false;
        }
        ++brace_depth_;
        scopes_.push_back({});
        // Lambda bodies live inside call parens; give them a clean
        // paren depth so their locals are tracked like any other.
        paren_stack_.push_back(paren_depth_);
        paren_depth_ = 0;
        continue;
      }
      if (tok.text == "}") {
        --brace_depth_;
        if (scopes_.size() > 1) scopes_.pop_back();
        if (!paren_stack_.empty()) {
          paren_depth_ = paren_stack_.back();
          paren_stack_.pop_back();
        }
        // Moves recorded in deeper-or-equal scopes are now out of
        // lifetime (loop bodies re-enter fresh).
        for (Scope& scope : scopes_) {
          for (auto it = scope.moved.begin(); it != scope.moved.end();) {
            if (it->second.moved_depth > brace_depth_) {
              it = scope.moved.erase(it);
            } else {
              ++it;
            }
          }
        }
        continue;
      }
      if (tok.text == "(") ++paren_depth_;
      if (tok.text == ")") --paren_depth_;
      if (tok.text == ":" && i > 0 && code_[i - 1].text == ")") {
        in_init_list_ = true;  // `Ctor(...) : member_(...)`.
      }
      if (tok.text == ";") in_init_list_ = false;
      if (tok.kind != Tok::kIdent) continue;

      // switch cases are mutually exclusive branches: a move in one
      // case cannot be observed by the next.
      if (tok.text == "case" || tok.text == "default") {
        EraseMovesAtOrBelow(brace_depth_);
        continue;
      }

      CheckLockTemporary(i);
      CheckGuardedWrite(i);

      // std::move(x) marks x moved-from.
      if (tok.text == "move" && i >= 2 && code_[i - 1].text == "::" &&
          code_[i - 2].text == "std" && Is(i + 1, "(") &&
          At(i + 2).kind == Tok::kIdent && Is(i + 3, ")")) {
        const std::string& target = code_[i + 2].text;
        MoveState* prior = FindMoved(target);
        if (prior != nullptr) {
          Report(code_[i + 2].line, "use-after-move",
                 "`" + target + "` is moved again after being moved on " +
                     "line " + std::to_string(prior->move_line));
        } else {
          scopes_.back().moved[target] = {brace_depth_, tok.line};
        }
        i += 3;
        continue;
      }

      const std::size_t declared = TryDeclare(i);
      if (declared > 0) {
        i += declared - 1;
        continue;
      }

      // Use of a moved-from variable?
      MoveState* moved = FindMoved(tok.text);
      if (moved != nullptr) {
        if (Is(i + 1, "=")) {
          ClearMoved(tok.text);  // Reassignment re-initialises.
        } else if ((Is(i + 1, ".") || Is(i + 1, "->")) &&
                   (IsIdent(i + 2, "clear") || IsIdent(i + 2, "reset") ||
                    IsIdent(i + 2, "assign"))) {
          ClearMoved(tok.text);
        } else {
          Report(tok.line, "use-after-move",
                 "`" + tok.text + "` is used after being moved on line " +
                     std::to_string(moved->move_line) +
                     "; reassign it first or restructure the flow");
          ClearMoved(tok.text);  // Report each moved value once.
        }
      }

      // Status/Result check-before-consume tracking.
      VarState* var = FindVar(tok.text);
      if (var != nullptr) {
        // `SNOR_RETURN_NOT_OK(st)` / `IsRetryable(st)` count as checks.
        if (i >= 2 && code_[i - 1].text == "(" &&
            (code_[i - 2].text == "SNOR_RETURN_NOT_OK" ||
             code_[i - 2].text == "IsRetryable")) {
          var->checked = true;
        } else if (Is(i + 1, "=")) {
          var->checked = false;  // New value, unchecked again.
        } else if (Is(i + 1, ".") || Is(i + 1, "->")) {
          const std::string& member = At(i + 2).text;
          if (member == "ok" || member == "status") {
            var->checked = true;
          } else if (!var->checked) {
            const bool result_consume =
                var->kind == VarKind::kResult &&
                (member == "value" || member == "MoveValue");
            const bool status_consume =
                member == "code" || member == "message" ||
                member == "ToString";
            // `(void)x.value()` is a deliberate discard; asserting on
            // the consumed value (EXPECT_EQ(s.code(), ...)) is itself
            // the check.
            const bool discarded = i >= 3 && code_[i - 1].text == ")" &&
                                   code_[i - 2].text == "void" &&
                                   code_[i - 3].text == "(";
            if ((result_consume || status_consume) &&
                (discarded || InAssertionStatement(i))) {
              var->checked = true;
            } else if (result_consume || status_consume) {
              Report(tok.line, "unchecked-status",
                     "`" + tok.text + "." + member + "` consumes the " +
                         (var->kind == VarKind::kResult ? "Result"
                                                        : "Status") +
                         " before any `.ok()` check; test `" + tok.text +
                         ".ok()` (or propagate with SNOR_RETURN_NOT_OK/" +
                         "SNOR_ASSIGN_OR_RETURN) first");
              var->checked = true;  // Report each variable once.
            }
          }
        } else if (var->kind == VarKind::kResult && !var->checked &&
                   !InAssertionStatement(i) && i > 0 &&
                   code_[i - 1].text == "*" &&
                   (i < 2 || (code_[i - 2].kind == Tok::kPunct &&
                              code_[i - 2].text != ")" &&
                              code_[i - 2].text != "]") ||
                    code_[i - 2].text == "return")) {
          Report(tok.line, "unchecked-status",
                 "`*" + tok.text + "` dereferences the Result before " +
                     "any `.ok()` check");
          var->checked = true;
        }
      }
    }
  }

  const SourceFile& file_;
  const std::set<std::string>& fallible_;
  std::vector<Finding>* out_;
  std::vector<Token> code_;  // Comment-free token stream.

  std::map<std::string, GuardedDecl> guarded_;
  std::vector<std::pair<std::size_t, std::size_t>> parallel_bodies_;
  std::vector<Scope> scopes_;
  int brace_depth_ = 0;
  int paren_depth_ = 0;
  bool in_init_list_ = false;
  std::vector<int> paren_stack_;
};

// ------------------------------------------------------------- baseline --

// Baseline entries: `<path> <rule>` per line, `#` comments. A matching
// finding is kept but marked baselined (reported, not fatal).
std::vector<std::pair<std::string, std::string>> LoadBaseline(
    const fs::path& path) {
  std::vector<std::pair<std::string, std::string>> entries;
  std::ifstream in(path);
  if (!in) return entries;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string file;
    std::string rule;
    if (ss >> file >> rule) entries.emplace_back(file, rule);
  }
  return entries;
}

void ApplyBaseline(
    const std::vector<std::pair<std::string, std::string>>& baseline,
    std::vector<Finding>* findings) {
  for (Finding& f : *findings) {
    for (const auto& [file, rule] : baseline) {
      if (f.rule == rule &&
          (f.file == file ||
           (f.file.size() > file.size() &&
            f.file.compare(f.file.size() - file.size(), file.size(), file) ==
                0 &&
            f.file[f.file.size() - file.size() - 1] == '/'))) {
        f.baselined = true;
        break;
      }
    }
  }
}

// ----------------------------------------------------------------- sarif --

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct RuleInfo {
  const char* id;
  const char* description;
};

constexpr RuleInfo kRules[] = {
    {"layer-violation",
     "Include edge not allowed by the declared module DAG"},
    {"include-cycle", "Cycle in the project include graph"},
    {"use-after-move", "Local variable read after std::move"},
    {"unchecked-status",
     "Status/Result consumed before its .ok() check"},
    {"lock-temporary",
     "Immediately-destroyed lock temporary guards nothing"},
    {"guarded-by",
     "GUARDED_BY state written in a ParallelFor lambda without its guard"},
};

std::string SarifReport(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\"version\":\"2.1.0\",\"$schema\":"
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{"
         "\"tool\":{\"driver\":{\"name\":\"snor_analyze\","
         "\"informationUri\":\"https://example.invalid/snor\","
         "\"version\":\"1.0.0\",\"rules\":[";
  bool first = true;
  for (const RuleInfo& rule : kRules) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":\"" << rule.id << "\",\"shortDescription\":{\"text\":\""
        << JsonEscape(rule.description) << "\"}}";
  }
  out << "]}},\"results\":[";
  first = true;
  for (const Finding& f : findings) {
    if (!first) out << ",";
    first = false;
    out << "{\"ruleId\":\"" << f.rule << "\",\"level\":\""
        << (f.baselined ? "note" : "error") << "\",\"message\":{\"text\":\""
        << JsonEscape(f.message) << "\"},\"locations\":[{"
        << "\"physicalLocation\":{\"artifactLocation\":{\"uri\":\""
        << JsonEscape(f.file) << "\"},\"region\":{\"startLine\":" << f.line
        << "}}}]";
    if (f.baselined) {
      out << ",\"suppressions\":[{\"kind\":\"external\",\"justification\":"
             "\"tools/analyze/baseline.txt\"}]";
    }
    out << "}";
  }
  out << "]}]}";
  return out.str();
}

// ---------------------------------------------------------------- driver --

bool IsSourcePath(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool PathContains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

std::vector<std::string> CollectTreeFiles(const fs::path& root) {
  static const char* kRoots[] = {"src", "bench", "examples", "tests",
                                 "tools"};
  std::vector<std::string> files;
  for (const char* sub : kRoots) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !IsSourcePath(entry.path())) continue;
      const std::string p = entry.path().generic_string();
      if (PathContains(p, "testdata")) continue;  // Fixtures violate on purpose.
      if (PathContains(p, "build")) continue;
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

struct AnalyzeResult {
  std::vector<Finding> findings;
  std::size_t files = 0;
};

bool AnalyzePaths(const std::vector<std::string>& paths,
                  const LayerConfig& config, AnalyzeResult* result) {
  std::vector<SourceFile> files;
  for (const std::string& p : paths) {
    SourceFile file;
    if (!LoadFile(p, &file)) {
      std::fprintf(stderr, "snor_analyze: cannot read %s\n", p.c_str());
      return false;
    }
    files.push_back(std::move(file));
  }
  result->files = files.size();
  const std::set<std::string> fallible = BuildFallibleRegistry(files);
  for (const SourceFile& file : files) {
    CheckLayering(file, config, &result->findings);
    DataflowAnalyzer(file, fallible, &result->findings).Run();
  }
  CheckIncludeCycles(files, &result->findings);
  std::sort(result->findings.begin(), result->findings.end());
  return true;
}

int RunTree(const fs::path& root, const fs::path& config_path,
            const fs::path& baseline_path, bool sarif_stdout,
            const std::string& sarif_out,
            const std::vector<std::string>& explicit_paths) {
  LayerConfig config;
  std::string error;
  if (!ParseLayersToml(config_path, &config, &error)) {
    std::fprintf(stderr, "snor_analyze: %s\n", error.c_str());
    return 2;
  }
  std::vector<std::string> paths = explicit_paths;
  if (paths.empty()) paths = CollectTreeFiles(root);
  if (paths.empty()) {
    std::fprintf(stderr, "snor_analyze: no source files under %s\n",
                 root.generic_string().c_str());
    return 2;
  }
  AnalyzeResult result;
  if (!AnalyzePaths(paths, config, &result)) return 2;
  ApplyBaseline(LoadBaseline(baseline_path), &result.findings);

  std::size_t active = 0;
  std::size_t baselined = 0;
  for (const Finding& f : result.findings) {
    if (f.baselined) {
      ++baselined;
      continue;
    }
    ++active;
    if (!sarif_stdout) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
    }
  }
  const std::string sarif = SarifReport(result.findings);
  if (sarif_stdout) {
    std::printf("%s\n", sarif.c_str());
  }
  if (!sarif_out.empty()) {
    std::ofstream out(sarif_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "snor_analyze: cannot write %s\n",
                   sarif_out.c_str());
      return 2;
    }
    out << sarif << "\n";
  }
  if (!sarif_stdout) {
    std::printf(
        "snor_analyze: %zu file(s), %zu finding(s) (%zu baselined)\n",
        result.files, active + baselined, baselined);
  }
  return active == 0 ? 0 : 1;
}

// Self-test: every `// EXPECT-ANALYZE: rule[,rule]` must match a finding
// on that line, and no unannotated finding may appear.
int SelfTest(const fs::path& dir) {
  std::vector<std::string> paths;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && IsSourcePath(entry.path())) {
      paths.push_back(entry.path().generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    std::fprintf(stderr, "snor_analyze --self-test: no fixtures under %s\n",
                 dir.generic_string().c_str());
    return 2;
  }
  LayerConfig config;
  std::string error;
  fs::path config_path = dir / "layers.toml";
  if (!fs::exists(config_path)) {
    config_path = dir.parent_path() / "layers.toml";
  }
  if (!ParseLayersToml(config_path, &config, &error)) {
    std::fprintf(stderr, "snor_analyze: %s\n", error.c_str());
    return 2;
  }

  AnalyzeResult result;
  if (!AnalyzePaths(paths, config, &result)) return 2;

  // Expectations, per real file and line, from comment tokens.
  int failures = 0;
  std::size_t matched = 0;
  std::map<std::string, std::map<int, std::set<std::string>>> expected;
  std::map<std::string, std::string> virtual_to_real;
  for (const std::string& p : paths) {
    SourceFile file;
    if (!LoadFile(p, &file)) return 2;
    virtual_to_real[file.path] = file.real_path;
    for (const Token& tok : file.tokens) {
      if (tok.kind != Tok::kComment) continue;
      const std::size_t pos = tok.text.find(kExpectMarker);
      if (pos == std::string::npos) continue;
      std::stringstream ss(tok.text.substr(pos + kExpectMarker.size()));
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                   rule.end());
        if (!rule.empty()) expected[file.path][tok.line].insert(rule);
      }
    }
  }

  std::map<std::string, std::map<int, std::set<std::string>>> actual;
  for (const Finding& f : result.findings) {
    actual[f.file][f.line].insert(f.rule);
  }

  auto real_name = [&](const std::string& virt) {
    auto it = virtual_to_real.find(virt);
    return it != virtual_to_real.end() ? it->second : virt;
  };

  for (const auto& [file, lines] : expected) {
    for (const auto& [line, rules] : lines) {
      for (const std::string& rule : rules) {
        if (actual.count(file) > 0 && actual[file].count(line) > 0 &&
            actual[file][line].count(rule) > 0) {
          ++matched;
        } else {
          std::fprintf(stderr,
                       "SELF-TEST FAIL %s:%d: expected [%s], not reported\n",
                       real_name(file).c_str(), line, rule.c_str());
          ++failures;
        }
      }
    }
  }
  for (const auto& [file, lines] : actual) {
    for (const auto& [line, rules] : lines) {
      for (const std::string& rule : rules) {
        if (expected.count(file) == 0 || expected[file].count(line) == 0 ||
            expected[file][line].count(rule) == 0) {
          std::fprintf(stderr,
                       "SELF-TEST FAIL %s:%d: unexpected [%s] reported\n",
                       real_name(file).c_str(), line, rule.c_str());
          ++failures;
        }
      }
    }
  }
  std::printf(
      "snor_analyze --self-test: %zu fixture(s), %zu expectation(s) "
      "matched, %d failure(s)\n",
      paths.size(), matched, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace snor_analyze

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::string root = ".";
  std::string self_test_dir;
  std::string config_flag;
  std::string baseline_flag;
  std::string sarif_out;
  bool sarif_stdout = false;
  std::vector<std::string> explicit_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--self-test" && i + 1 < argc) {
      self_test_dir = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      config_flag = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_flag = argv[++i];
    } else if (arg == "--sarif-out" && i + 1 < argc) {
      sarif_out = argv[++i];
    } else if (arg == "--format=sarif") {
      sarif_stdout = true;
    } else if (arg == "--format=text") {
      sarif_stdout = false;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: snor_analyze [--root DIR] [--config layers.toml]\n"
          "                    [--baseline FILE] [--format=text|sarif]\n"
          "                    [--sarif-out FILE] [files...]\n"
          "       snor_analyze --self-test FIXTURE_DIR\n"
          "Dependency-DAG + dataflow analysis over src/, bench/,\n"
          "examples/, tests/ and tools/ (see tools/analyze/layers.toml).\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "snor_analyze: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      explicit_paths.push_back(arg);
    }
  }

  if (!self_test_dir.empty()) {
    return snor_analyze::SelfTest(self_test_dir);
  }
  const fs::path config_path =
      config_flag.empty() ? fs::path(root) / "tools" / "analyze" /
                                "layers.toml"
                          : fs::path(config_flag);
  const fs::path baseline_path =
      baseline_flag.empty() ? fs::path(root) / "tools" / "analyze" /
                                  "baseline.txt"
                            : fs::path(baseline_flag);
  return snor_analyze::RunTree(root, config_path, baseline_path,
                               sarif_stdout, sarif_out, explicit_paths);
}
