// snor_analyze: dependency-DAG, dataflow and whole-program concurrency
// analyzer for the snor tree.
//
// Where snor_lint (tools/lint) is a single-line token scanner, this tool
// runs a real C++ tokenizer (lexer.h) over every translation unit under
// src/, bench/, examples/, tests/ and tools/ and performs the analysis
// families the line scanner cannot express.
//
// Layering (tools/analyze/layers.toml declares the module DAG):
//   layer-violation   A file in src/<module>/ includes a header from a
//                     module that is not among the module's declared
//                     dependencies (e.g. `core` including `serve`, or
//                     `serve` including the isolated `nn` stack).
//   include-cycle     The project include graph contains a cycle.
//
// Intra-procedural dataflow:
//   use-after-move    A local is read after being passed to std::move
//                     and before being reassigned or re-initialised.
//   unchecked-status  The payload of a `Result<T>` local (.value(),
//                     MoveValue(), *r, r->) or the error details of a
//                     `Status` local (.code(), .message(), .ToString())
//                     are consumed before any `.ok()` / `.status()`
//                     check.
//   lock-temporary    A statement-position `std::lock_guard` /
//                     `std::unique_lock` / `std::scoped_lock` temporary:
//                     the lock is destroyed at the end of the full
//                     expression, guarding nothing.
//
// Concurrency annotations (intra):
//   guarded-by        A member or local annotated `// GUARDED_BY(x)` is
//                     written inside a `ParallelFor` lambda body in the
//                     same file without honouring its guard.
//
// Interprocedural concurrency (two-pass; see summary.h, callgraph.h,
// concurrency_checks.h):
//   lock-order-cycle     Lock-acquisition-order rank inversions
//                        (LOCK_RANK(n) annotations; lower = outer) and
//                        acquisition cycles — deadlock potential.
//   blocking-under-lock  A blocking primitive (sleep, file/stream IO,
//                        thread join, waits) reached directly or through
//                        any call chain while holding a lock.
//   condvar-predicate    Condvar wait without a predicate overload or an
//                        enclosing re-check loop.
//   promise-exactly-once A promise-routing loop has a path that drops a
//                        promise-carrying value or fulfils it twice.
//
// Borrow/escape dataflow for borrowed views (two-pass; see
// borrow_checks.h; vocabulary in src/util/thread_annotations.h):
//   view-return          A view-shaped return type (span/string_view
//                        anywhere; pointer/iterator on an OWNS_VIEWS
//                        class) without a LIFETIME_BOUND annotation.
//   view-escape          A borrowed view stored into a class member
//                        (unless OWNS_VIEWS-sanctioned), a static, or a
//                        worker lambda handed to ParallelFor/dispatch.
//   view-generation      A view used after its owner crossed a
//                        generation boundary (swap/reset/Load*/
//                        reassignment, directly or via the cross-TU
//                        kills-closure) — the snapshot-swap bug class.
//   view-invalidation    A view used after a mutating container method
//                        (push_back/resize/clear/…) on its owner.
//
// Pass 1 builds one summary per TU (summary.h); summaries are cached on
// disk (`--cache-dir`) keyed by content hash, format version and
// `--cache-salt`, so a warm incremental run re-tokenizes only edited
// TUs (`--cache-max-bytes` LRU-bounds the cache directory). Pass 2
// (cross-TU linking + the interprocedural checks) runs from summaries
// every time — it is cheap relative to tokenization.
//
// Suppression: `// NOLINT(rule)` on the line, `// NOLINTNEXTLINE(rule)`
// above it, or a (path, rule) entry in the baseline file
// (tools/analyze/baseline.txt) for intentionally deferred findings.
//
// Output: human-readable text (default) or SARIF 2.1.0 (`--format=sarif`
// or `--sarif-out FILE`), consumable by editors and CI annotators.
//
// Self-test: `snor_analyze --self-test <dir>` mirrors snor_lint's
// harness: fixtures carry `// EXPECT-ANALYZE: rule` annotations and the
// run fails on any missed or unexpected finding. A fixture's
// `// ANALYZE-AS: virtual/path` directive assigns the virtual path used
// by the path-scoped analyses (layering, cycles).

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "borrow_checks.h"
#include "callgraph.h"
#include "concurrency_checks.h"
#include "lexer.h"
#include "summary.h"
#include "util/fault.h"

namespace snor_analyze {

namespace fs = std::filesystem;

// -------------------------------------------------------- layer config --

/// Declared module DAG, parsed from a small TOML subset:
///   [layers]
///   core = ["data", "features", ...]
struct LayerConfig {
  // Module -> allowed direct dependency modules (self always allowed).
  std::map<std::string, std::set<std::string>> allowed;

  bool Known(const std::string& module) const {
    return allowed.count(module) > 0;
  }

  // Stable serialization, mixed into the intra-findings fingerprint so
  // cached layering findings are invalidated when the DAG changes.
  std::string Serialized() const {
    std::string out;
    for (const auto& [module, deps] : allowed) {
      out += module + "=";
      for (const std::string& d : deps) out += d + ",";
      out += ";";
    }
    return out;
  }
};

bool ParseLayersToml(const fs::path& path, LayerConfig* out,
                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read layer config " + path.generic_string();
    return false;
  }
  std::string line;
  std::string section;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    std::size_t e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);
    if (line.front() == '[') {
      const std::size_t close = line.find(']');
      if (close == std::string::npos) {
        *error = path.generic_string() + ":" + std::to_string(lineno) +
                 ": unterminated section header";
        return false;
      }
      section = line.substr(1, close - 1);
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      *error = path.generic_string() + ":" + std::to_string(lineno) +
               ": expected `key = [..]`";
      return false;
    }
    std::string key = line.substr(0, eq);
    key.erase(std::remove_if(key.begin(), key.end(), ::isspace), key.end());
    if (section != "layers") continue;  // Future sections are ignored.
    std::set<std::string> deps;
    std::string value = line.substr(eq + 1);
    std::string current;
    bool in_string = false;
    for (char c : value) {
      if (c == '"') {
        if (in_string && !current.empty()) deps.insert(current);
        current.clear();
        in_string = !in_string;
      } else if (in_string) {
        current.push_back(c);
      }
    }
    out->allowed[key] = std::move(deps);
  }
  if (out->allowed.empty()) {
    *error = path.generic_string() + ": no [layers] entries found";
    return false;
  }
  return true;
}

// Module of a virtual path: "src/<module>/..." -> module, else empty
// (bench/, examples/, tests/, tools/ are unconstrained consumers).
std::string ModuleOf(const std::string& path) {
  const std::size_t src = path.rfind("src/", 0) == 0
                              ? 0
                              : path.find("/src/");
  std::size_t begin;
  if (path.rfind("src/", 0) == 0) {
    begin = 4;
  } else if (src != std::string::npos) {
    begin = src + 5;
  } else {
    return std::string();
  }
  const std::size_t slash = path.find('/', begin);
  if (slash == std::string::npos) return std::string();
  return path.substr(begin, slash - begin);
}

// Module of an include path: "util/status.h" -> "util" when `util` is a
// declared module.
std::string IncludeModule(const std::string& include_path,
                          const LayerConfig& config) {
  const std::size_t slash = include_path.find('/');
  if (slash == std::string::npos) return std::string();
  const std::string mod = include_path.substr(0, slash);
  return config.Known(mod) ? mod : std::string();
}

void CheckLayering(const TuSummary& tu, const LayerConfig& config,
                   std::vector<Finding>* out) {
  const std::string module = ModuleOf(tu.path);
  if (module.empty() || !config.Known(module)) return;
  const std::set<std::string>& allowed = config.allowed.at(module);
  for (const IncludeDirective& inc : tu.includes) {
    const std::string target = IncludeModule(inc.path, config);
    if (target.empty() || target == module) continue;
    if (allowed.count(target) > 0) continue;
    if (tu.Suppressed(inc.line, "layer-violation")) continue;
    out->push_back(
        {tu.path, inc.line, "layer-violation",
         "module `" + module + "` must not include `" + inc.path +
             "`: `" + target + "` is not among its declared dependencies " +
             "(tools/analyze/layers.toml)"});
  }
}

// ---------------------------------------------------------- cycle check --

// Builds the project include graph over the analyzed TUs and reports
// every elementary cycle found by DFS (each once, at its back-edge).
void CheckIncludeCycles(const std::vector<TuSummary>& tus,
                        std::vector<Finding>* out) {
  // Keys are root-relative ("src/util/status.h"), so absolute analyzed
  // paths and the project's src/-rooted include style line up.
  auto rel_key = [](const std::string& p) -> std::string {
    static const char* const kRoots[] = {"src/", "bench/", "examples/",
                                         "tests/", "tools/"};
    for (const char* marker : kRoots) {
      if (p.rfind(marker, 0) == 0) return p;
      const std::size_t pos = p.find(std::string("/") + marker);
      if (pos != std::string::npos) return p.substr(pos + 1);
    }
    return p;
  };
  std::map<std::string, std::size_t> by_path;
  for (std::size_t i = 0; i < tus.size(); ++i) {
    by_path[rel_key(tus[i].path)] = i;
  }
  auto resolve = [&](const TuSummary& from, const std::string& inc) -> long {
    // Project convention: includes are rooted at src/ (or at the
    // consumer directory for bench/tests helpers).
    const std::string rel = rel_key(from.path);
    const std::string dir =
        rel.find('/') != std::string::npos
            ? rel.substr(0, rel.rfind('/') + 1)
            : std::string();
    for (const std::string& candidate :
         {std::string("src/") + inc, dir + inc, inc}) {
      auto it = by_path.find(candidate);
      if (it != by_path.end()) return static_cast<long>(it->second);
    }
    return -1;
  };

  struct Edge {
    std::size_t to;
    int line;
  };
  std::vector<std::vector<Edge>> graph(tus.size());
  for (std::size_t i = 0; i < tus.size(); ++i) {
    for (const IncludeDirective& inc : tus[i].includes) {
      const long target = resolve(tus[i], inc.path);
      if (target >= 0 && static_cast<std::size_t>(target) != i) {
        graph[i].push_back({static_cast<std::size_t>(target), inc.line});
      }
    }
  }

  // Iterative colored DFS; a back-edge to a gray node closes a cycle.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(tus.size(), Color::kWhite);
  std::vector<std::size_t> stack_path;
  std::set<std::set<std::size_t>> reported;

  struct Frame {
    std::size_t node;
    std::size_t edge = 0;
  };
  for (std::size_t root = 0; root < tus.size(); ++root) {
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> stack{{root, 0}};
    color[root] = Color::kGray;
    stack_path.push_back(root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.edge >= graph[frame.node].size()) {
        color[frame.node] = Color::kBlack;
        stack_path.pop_back();
        stack.pop_back();
        continue;
      }
      const Edge edge = graph[frame.node][frame.edge++];
      if (color[edge.to] == Color::kWhite) {
        color[edge.to] = Color::kGray;
        stack_path.push_back(edge.to);
        stack.push_back({edge.to, 0});
      } else if (color[edge.to] == Color::kGray) {
        // Cycle: from edge.to ... frame.node -> edge.to.
        std::set<std::size_t> members;
        std::string rendered;
        bool in_cycle = false;
        for (std::size_t node : stack_path) {
          if (node == edge.to) in_cycle = true;
          if (!in_cycle) continue;
          members.insert(node);
          rendered += tus[node].path + " -> ";
        }
        rendered += tus[edge.to].path;
        if (reported.insert(members).second &&
            !tus[frame.node].Suppressed(edge.line, "include-cycle")) {
          out->push_back({tus[frame.node].path, edge.line,
                          "include-cycle",
                          "include cycle: " + rendered});
        }
      }
    }
  }
}

// ------------------------------------------------------------ dataflow --

// Names of Status/Result-returning functions: per-TU sets are collected
// by pass 1 (so they cache); the program-wide registry is their union
// plus seeds for members the declaration scan cannot see.
std::set<std::string> BuildFallibleRegistry(
    const std::vector<TuSummary>& tus) {
  std::set<std::string> registry = {"RetryWithBackoff", "status"};
  for (const TuSummary& tu : tus) {
    registry.insert(tu.fallible.begin(), tu.fallible.end());
  }
  return registry;
}

enum class VarKind { kStatus, kResult };

struct VarState {
  VarKind kind = VarKind::kStatus;
  bool checked = false;
  int declared_depth = 0;
};

struct MoveState {
  int moved_depth = 0;  // Brace depth where the move happened.
  int move_line = 0;
};

/// Runs use-after-move, unchecked-status, lock-temporary and guarded-by
/// over one file's token stream.
class DataflowAnalyzer {
 public:
  DataflowAnalyzer(const SourceFile& file,
                   const std::set<std::string>& fallible,
                   std::vector<Finding>* out)
      : file_(file), fallible_(fallible), out_(out) {
    // Strip comments up front; every index below is into code_.
    for (const Token& tok : file.tokens) {
      if (tok.kind != Tok::kComment) code_.push_back(tok);
    }
  }

  void Run() {
    CollectGuardedDecls();
    CollectParallelForBodies();
    Scan();
  }

 private:
  const Token& At(std::size_t i) const {
    static const Token kEnd{Tok::kPunct, "", 0};
    return i < code_.size() ? code_[i] : kEnd;
  }
  bool Is(std::size_t i, std::string_view text) const {
    return i < code_.size() && code_[i].text == text;
  }
  bool IsIdent(std::size_t i, std::string_view text) const {
    return i < code_.size() && code_[i].kind == Tok::kIdent &&
           code_[i].text == text;
  }

  void Report(int line, const char* rule, std::string message) {
    if (file_.Suppressed(line, rule)) return;
    out_->push_back({file_.path, line, rule, std::move(message)});
  }

  // Skips a balanced template argument list starting at `i` (which must
  // be '<'); returns the index just past the closing '>'. Returns `i`
  // unchanged when the list does not close (comparison, not template).
  std::size_t SkipTemplateArgs(std::size_t i) const {
    int depth = 0;
    for (std::size_t j = i; j < code_.size() && j < i + 256; ++j) {
      if (code_[j].text == "<") ++depth;
      else if (code_[j].text == ">") --depth;
      else if (code_[j].text == ">>") depth -= 2;
      else if (code_[j].text == ";" || code_[j].text == "{") return i;
      if (depth <= 0) return j + 1;
    }
    return i;
  }

  // Skips a balanced (...) starting at `i` (must be '('); returns index
  // just past ')'.
  std::size_t SkipParens(std::size_t i) const {
    int depth = 0;
    for (std::size_t j = i; j < code_.size(); ++j) {
      if (code_[j].text == "(") ++depth;
      if (code_[j].text == ")" && --depth == 0) return j + 1;
    }
    return code_.size();
  }

  std::size_t SkipBrackets(std::size_t i) const {
    int depth = 0;
    for (std::size_t j = i; j < code_.size(); ++j) {
      if (code_[j].text == "[") ++depth;
      if (code_[j].text == "]" && --depth == 0) return j + 1;
    }
    return code_.size();
  }

  // ---- guarded-by ----

  struct GuardedDecl {
    std::string guard;  // Mutex name, "per_worker_slot", "caller", "atomic".
    int line = 0;
  };

  // Associates `// GUARDED_BY(x)` comments with the declaration on the
  // same line: the first identifier followed by `;`, `=`, `{`, `(` or
  // `[` among that line's code tokens.
  void CollectGuardedDecls() {
    for (const Token& tok : file_.tokens) {
      if (tok.kind != Tok::kComment) continue;
      const std::size_t pos = tok.text.find(kGuardedByMarker);
      if (pos == std::string::npos) continue;
      const std::size_t open = pos + kGuardedByMarker.size() - 1;
      const std::size_t close = tok.text.find(')', open);
      if (close == std::string::npos) continue;
      std::string guard = tok.text.substr(open + 1, close - open - 1);
      guard.erase(std::remove_if(guard.begin(), guard.end(), ::isspace),
                  guard.end());
      if (guard.empty()) continue;
      std::string name;
      for (std::size_t i = 0; i + 1 < code_.size(); ++i) {
        if (code_[i].line != tok.line) continue;
        if (code_[i].kind != Tok::kIdent) continue;
        const std::string& next = code_[i + 1].text;
        if (next == ";" || next == "=" || next == "{" || next == "(" ||
            next == "[") {
          name = code_[i].text;
          break;
        }
      }
      if (!name.empty()) guarded_[name] = {guard, tok.line};
    }
  }

  // Records [body_begin, body_end) token ranges of every lambda passed
  // to ParallelFor in this file.
  void CollectParallelForBodies() {
    for (std::size_t i = 0; i + 1 < code_.size(); ++i) {
      if (code_[i].kind != Tok::kIdent || code_[i].text != "ParallelFor") {
        continue;
      }
      if (!Is(i + 1, "(")) continue;
      const std::size_t call_end = SkipParens(i + 1);
      // First top-level '{' inside the call opens the lambda body.
      for (std::size_t j = i + 2; j < call_end; ++j) {
        if (code_[j].text != "{") continue;
        int depth = 0;
        std::size_t k = j;
        for (; k < code_.size(); ++k) {
          if (code_[k].text == "{") ++depth;
          if (code_[k].text == "}" && --depth == 0) break;
        }
        parallel_bodies_.push_back({j, k});
        break;
      }
    }
  }

  bool InParallelBody(std::size_t i, std::size_t* body_begin,
                      std::size_t* body_end) const {
    for (const auto& [begin, end] : parallel_bodies_) {
      if (i > begin && i < end) {
        *body_begin = begin;
        *body_end = end;
        return true;
      }
    }
    return false;
  }

  // True when a lock_guard/unique_lock/scoped_lock on `mutex_name` is
  // declared between body_begin and `at`, in a scope still open at `at`.
  bool LockHeld(std::size_t body_begin, std::size_t at,
                const std::string& mutex_name) const {
    int depth = 0;
    // Open-scope stack of lock positions: (depth at decl, covered).
    std::vector<std::pair<int, bool>> scopes{{0, false}};
    for (std::size_t i = body_begin + 1; i < at; ++i) {
      const std::string& t = code_[i].text;
      if (t == "{") {
        ++depth;
        scopes.push_back({depth, scopes.back().second});
      } else if (t == "}") {
        --depth;
        if (scopes.size() > 1) scopes.pop_back();
      } else if (code_[i].kind == Tok::kIdent &&
                 (t == "lock_guard" || t == "unique_lock" ||
                  t == "scoped_lock")) {
        std::size_t j = i + 1;
        if (Is(j, "<")) j = SkipTemplateArgs(j);
        if (At(j).kind == Tok::kIdent) ++j;  // The lock variable name.
        if (!Is(j, "(")) continue;
        const std::size_t close = SkipParens(j);
        for (std::size_t k = j + 1; k + 1 < close; ++k) {
          if (code_[k].kind == Tok::kIdent &&
              code_[k].text == mutex_name) {
            scopes.back().second = true;
            break;
          }
        }
      }
    }
    return scopes.back().second;
  }

  // Mutating member-call suffixes treated as writes for guarded names.
  static bool IsMutatorName(const std::string& name) {
    static const std::set<std::string> kMutators = {
        "push_back", "emplace_back", "pop_back", "insert",   "erase",
        "clear",     "resize",       "reserve",  "assign",   "emplace",
        "Set",       "Add",          "Record",   "store",    "swap"};
    return kMutators.count(name) > 0;
  }

  // Classifies a potential write at index `i` (an identifier token).
  // Returns 0 = not a write, 1 = subscripted (per-slot) write,
  // 2 = whole-object write. Walks the access path (`x[i].field`,
  // `x->member`) to the mutating operator or method.
  int ClassifyWrite(std::size_t i) const {
    const bool address_of =
        i > 0 && code_[i - 1].text == "&" &&
        (i < 2 || (code_[i - 2].kind == Tok::kPunct &&
                   code_[i - 2].text != ")" && code_[i - 2].text != "]"));
    std::size_t j = i + 1;
    bool subscripted = false;
    bool mutator_call = false;
    while (j < code_.size()) {
      if (Is(j, "[")) {
        subscripted = true;
        j = SkipBrackets(j);
        continue;
      }
      if ((Is(j, ".") || Is(j, "->")) && At(j + 1).kind == Tok::kIdent) {
        if (Is(j + 2, "(")) {
          // A method call terminates the access path.
          mutator_call = IsMutatorName(code_[j + 1].text);
          break;
        }
        j += 2;
        continue;
      }
      break;
    }
    const std::string& after = At(j).text;
    const bool assign = after == "=" || after == "+=" || after == "-=" ||
                        after == "*=" || after == "/=" || after == "%=" ||
                        after == "&=" || after == "|=" || after == "^=";
    const bool incdec = after == "++" || after == "--" ||
                        (i > 0 && (code_[i - 1].text == "++" ||
                                   code_[i - 1].text == "--"));
    if (assign || incdec || mutator_call || address_of) {
      return subscripted ? 1 : 2;
    }
    return 0;
  }

  void CheckGuardedWrite(std::size_t i) {
    auto it = guarded_.find(code_[i].text);
    if (it == guarded_.end()) return;
    std::size_t body_begin = 0;
    std::size_t body_end = 0;
    if (!InParallelBody(i, &body_begin, &body_end)) return;
    const int write = ClassifyWrite(i);
    if (write == 0) return;
    const std::string& guard = it->second.guard;
    const int line = code_[i].line;
    if (guard == "atomic") return;
    if (guard == "caller") {
      Report(line, "guarded-by",
             "`" + code_[i].text + "` is GUARDED_BY(caller): it must " +
                 "never be written inside a ParallelFor lambda " +
                 "(caller-serialized state)");
      return;
    }
    if (guard == "per_worker_slot") {
      if (write != 1) {
        Report(line, "guarded-by",
               "`" + code_[i].text + "` is GUARDED_BY(per_worker_slot): " +
                   "inside a ParallelFor lambda only subscripted " +
                   "per-index writes are race-free; whole-object " +
                   "mutation is a data race");
      }
      return;
    }
    if (!LockHeld(body_begin, i, guard)) {
      Report(line, "guarded-by",
             "write to `" + code_[i].text + "` inside a ParallelFor " +
                 "lambda without holding its guard `" + guard +
                 "` (declare a std::lock_guard on `" + guard +
                 "` in the enclosing scope)");
    }
  }

  // ---- lock-temporary ----

  void CheckLockTemporary(std::size_t i) {
    const std::string& name = code_[i].text;
    if (name != "lock_guard" && name != "unique_lock" &&
        name != "scoped_lock") {
      return;
    }
    // Statement-initial position only: `;`/`{`/`}` (or std:: after one)
    // precedes the type. `return std::unique_lock(...)`, `auto l = ...`
    // and declarations with a variable name are all fine.
    std::size_t before = i;
    if (before >= 2 && code_[before - 1].text == "::" &&
        code_[before - 2].text == "std") {
      before -= 2;
    }
    if (before > 0) {
      const std::string& prev = code_[before - 1].text;
      if (prev != ";" && prev != "{" && prev != "}") return;
    }
    std::size_t j = i + 1;
    if (Is(j, "<")) j = SkipTemplateArgs(j);
    if (!Is(j, "(")) return;  // Named declaration or other use.
    Report(code_[i].line, "lock-temporary",
           "`std::" + name + "` temporary is destroyed at the end of " +
               "the statement and guards nothing; name it " +
               "(`std::" + name + "<...> lock(mu);`)");
  }

  // ---- main scan ----

  struct Scope {
    std::map<std::string, VarState> vars;
    std::map<std::string, MoveState> moved;
  };

  VarState* FindVar(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto v = it->vars.find(name);
      if (v != it->vars.end()) return &v->second;
    }
    return nullptr;
  }

  MoveState* FindMoved(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto v = it->moved.find(name);
      if (v != it->moved.end()) return &v->second;
    }
    return nullptr;
  }

  void ClearMoved(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      it->moved.erase(name);
    }
  }

  // Drops every move recorded at `depth` or deeper across all scopes.
  void EraseMovesAtOrBelow(int depth) {
    for (Scope& scope : scopes_) {
      for (auto it = scope.moved.begin(); it != scope.moved.end();) {
        if (it->second.moved_depth >= depth) {
          it = scope.moved.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  // True when the statement containing token `i` is a gtest-style
  // assertion (EXPECT_*/ASSERT_*): asserting on `.code()` or a value
  // IS the check, so consuming there is fine.
  bool InAssertionStatement(std::size_t i) const {
    for (std::size_t k = i, steps = 0; k > 0 && steps < 64; --k, ++steps) {
      const Token& t = code_[k - 1];
      if (t.text == ";" || t.text == "{" || t.text == "}") break;
      if (t.kind == Tok::kIdent && (t.text.rfind("EXPECT_", 0) == 0 ||
                                    t.text.rfind("ASSERT_", 0) == 0)) {
        return true;
      }
    }
    return false;
  }

  // Declares Status/Result locals. Returns tokens consumed (0 = no
  // declaration here).
  std::size_t TryDeclare(std::size_t i) {
    if (paren_depth_ > 0) return 0;  // Parameters and condition inits.
    std::size_t name_at = 0;
    VarKind kind = VarKind::kStatus;
    if (IsIdent(i, "Status")) {
      name_at = i + 1;
    } else if (IsIdent(i, "Result") && Is(i + 1, "<")) {
      const std::size_t past = SkipTemplateArgs(i + 1);
      if (past == i + 1) return 0;
      name_at = past;
      kind = VarKind::kResult;
    } else if (IsIdent(i, "auto")) {
      // `auto r = Fallible(...)`: typed via the fallible registry.
      std::size_t n = i + 1;
      if (Is(n, "&") || Is(n, "*")) ++n;
      if (At(n).kind != Tok::kIdent || !Is(n + 1, "=")) return 0;
      // First called identifier of the initializer.
      std::size_t j = n + 2;
      std::string called;
      for (; j < code_.size() && !Is(j, ";"); ++j) {
        if (code_[j].kind == Tok::kIdent && Is(j + 1, "(")) {
          called = code_[j].text;
          break;
        }
        if (code_[j].kind == Tok::kIdent || code_[j].text == "::" ||
            code_[j].text == "." || code_[j].text == "->") {
          continue;
        }
        break;
      }
      if (called.empty() || fallible_.count(called) == 0) return 0;
      scopes_.back().vars[code_[n].text] = {VarKind::kResult, false,
                                            brace_depth_};
      return 1;  // Leave the initializer to the use scanner.
    } else {
      return 0;
    }
    if (At(name_at).kind != Tok::kIdent) return 0;
    const std::string& next = At(name_at + 1).text;
    if (next != "=" && next != "(" && next != "{" && next != ";") return 0;
    // `Status` as a return type of a declaration (`Status Foo();` at
    // class scope) also matches `(`; require a lowercase-ish local name
    // or an initializer to cut those out.
    if (next == "(" &&
        std::isupper(static_cast<unsigned char>(At(name_at).text[0])) != 0) {
      return 0;
    }
    // A value whose initializer never calls a fallible function is
    // known by construction (`Result<string> r = std::string("x")`,
    // default-OK `Status st;`) and needs no .ok() gate.
    bool fallible_init = false;
    for (std::size_t j = name_at + 1; j < code_.size() && !Is(j, ";");
         ++j) {
      if (code_[j].kind == Tok::kIdent && Is(j + 1, "(") &&
          fallible_.count(code_[j].text) > 0) {
        fallible_init = true;
        break;
      }
    }
    scopes_.back().vars[At(name_at).text] = {kind, !fallible_init,
                                             brace_depth_};
    return name_at - i + 1;
  }

  void Scan() {
    scopes_.push_back({});
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Token& tok = code_[i];
      if (tok.text == "{") {
        // A constructor-init-list move (`: member_(std::move(param))`)
        // is consumed when the body opens; without this, the moved
        // state would outlive the function and poison later ones.
        if (in_init_list_) {
          EraseMovesAtOrBelow(brace_depth_);
          in_init_list_ = false;
        }
        ++brace_depth_;
        scopes_.push_back({});
        // Lambda bodies live inside call parens; give them a clean
        // paren depth so their locals are tracked like any other.
        paren_stack_.push_back(paren_depth_);
        paren_depth_ = 0;
        continue;
      }
      if (tok.text == "}") {
        --brace_depth_;
        if (scopes_.size() > 1) scopes_.pop_back();
        if (!paren_stack_.empty()) {
          paren_depth_ = paren_stack_.back();
          paren_stack_.pop_back();
        }
        // Moves recorded in deeper-or-equal scopes are now out of
        // lifetime (loop bodies re-enter fresh).
        for (Scope& scope : scopes_) {
          for (auto it = scope.moved.begin(); it != scope.moved.end();) {
            if (it->second.moved_depth > brace_depth_) {
              it = scope.moved.erase(it);
            } else {
              ++it;
            }
          }
        }
        continue;
      }
      if (tok.text == "(") ++paren_depth_;
      if (tok.text == ")") --paren_depth_;
      if (tok.text == ":" && i > 0 && code_[i - 1].text == ")") {
        in_init_list_ = true;  // `Ctor(...) : member_(...)`.
      }
      if (tok.text == ";") in_init_list_ = false;
      if (tok.kind != Tok::kIdent) continue;

      // switch cases are mutually exclusive branches: a move in one
      // case cannot be observed by the next.
      if (tok.text == "case" || tok.text == "default") {
        EraseMovesAtOrBelow(brace_depth_);
        continue;
      }

      CheckLockTemporary(i);
      CheckGuardedWrite(i);

      // `x.text` / `x->text`: a member access never names a tracked
      // local, whatever its spelling.
      if (i > 0 &&
          (code_[i - 1].text == "." || code_[i - 1].text == "->")) {
        continue;
      }

      // std::move(x) marks x moved-from.
      if (tok.text == "move" && i >= 2 && code_[i - 1].text == "::" &&
          code_[i - 2].text == "std" && Is(i + 1, "(") &&
          At(i + 2).kind == Tok::kIdent && Is(i + 3, ")")) {
        const std::string& target = code_[i + 2].text;
        MoveState* prior = FindMoved(target);
        if (prior != nullptr) {
          Report(code_[i + 2].line, "use-after-move",
                 "`" + target + "` is moved again after being moved on " +
                     "line " + std::to_string(prior->move_line));
        } else {
          scopes_.back().moved[target] = {brace_depth_, tok.line};
        }
        i += 3;
        continue;
      }

      const std::size_t declared = TryDeclare(i);
      if (declared > 0) {
        i += declared - 1;
        continue;
      }

      // Use of a moved-from variable?
      MoveState* moved = FindMoved(tok.text);
      if (moved != nullptr) {
        if (Is(i + 1, "=")) {
          ClearMoved(tok.text);  // Reassignment re-initialises.
        } else if ((Is(i + 1, ".") || Is(i + 1, "->")) &&
                   (IsIdent(i + 2, "clear") || IsIdent(i + 2, "reset") ||
                    IsIdent(i + 2, "assign"))) {
          ClearMoved(tok.text);
        } else {
          Report(tok.line, "use-after-move",
                 "`" + tok.text + "` is used after being moved on line " +
                     std::to_string(moved->move_line) +
                     "; reassign it first or restructure the flow");
          ClearMoved(tok.text);  // Report each moved value once.
        }
      }

      // Status/Result check-before-consume tracking.
      VarState* var = FindVar(tok.text);
      if (var != nullptr) {
        // `SNOR_RETURN_NOT_OK(st)` / `IsRetryable(st)` count as checks.
        if (i >= 2 && code_[i - 1].text == "(" &&
            (code_[i - 2].text == "SNOR_RETURN_NOT_OK" ||
             code_[i - 2].text == "IsRetryable")) {
          var->checked = true;
        } else if (Is(i + 1, "=")) {
          var->checked = false;  // New value, unchecked again.
        } else if (Is(i + 1, ".") || Is(i + 1, "->")) {
          const std::string& member = At(i + 2).text;
          if (member == "ok" || member == "status") {
            var->checked = true;
          } else if (!var->checked) {
            const bool result_consume =
                var->kind == VarKind::kResult &&
                (member == "value" || member == "MoveValue");
            const bool status_consume =
                member == "code" || member == "message" ||
                member == "ToString";
            // `(void)x.value()` is a deliberate discard; asserting on
            // the consumed value (EXPECT_EQ(s.code(), ...)) is itself
            // the check.
            const bool discarded = i >= 3 && code_[i - 1].text == ")" &&
                                   code_[i - 2].text == "void" &&
                                   code_[i - 3].text == "(";
            if ((result_consume || status_consume) &&
                (discarded || InAssertionStatement(i))) {
              var->checked = true;
            } else if (result_consume || status_consume) {
              Report(tok.line, "unchecked-status",
                     "`" + tok.text + "." + member + "` consumes the " +
                         (var->kind == VarKind::kResult ? "Result"
                                                        : "Status") +
                         " before any `.ok()` check; test `" + tok.text +
                         ".ok()` (or propagate with SNOR_RETURN_NOT_OK/" +
                         "SNOR_ASSIGN_OR_RETURN) first");
              var->checked = true;  // Report each variable once.
            }
          }
        } else if (var->kind == VarKind::kResult && !var->checked &&
                   !InAssertionStatement(i) && i > 0 &&
                   code_[i - 1].text == "*" &&
                   (i < 2 || (code_[i - 2].kind == Tok::kPunct &&
                              code_[i - 2].text != ")" &&
                              code_[i - 2].text != "]") ||
                    code_[i - 2].text == "return")) {
          Report(tok.line, "unchecked-status",
                 "`*" + tok.text + "` dereferences the Result before " +
                     "any `.ok()` check");
          var->checked = true;
        }
      }
    }
  }

  const SourceFile& file_;
  const std::set<std::string>& fallible_;
  std::vector<Finding>* out_;
  std::vector<Token> code_;  // Comment-free token stream.

  std::map<std::string, GuardedDecl> guarded_;
  std::vector<std::pair<std::size_t, std::size_t>> parallel_bodies_;
  std::vector<Scope> scopes_;
  int brace_depth_ = 0;
  int paren_depth_ = 0;
  bool in_init_list_ = false;
  std::vector<int> paren_stack_;
};

// ------------------------------------------------------------- baseline --

// Baseline entries: `<path> <rule>` per line, `#` comments. A matching
// finding is kept but marked baselined (reported, not fatal).
std::vector<std::pair<std::string, std::string>> LoadBaseline(
    const fs::path& path) {
  std::vector<std::pair<std::string, std::string>> entries;
  std::ifstream in(path);
  if (!in) return entries;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string file;
    std::string rule;
    if (ss >> file >> rule) entries.emplace_back(file, rule);
  }
  return entries;
}

void ApplyBaseline(
    const std::vector<std::pair<std::string, std::string>>& baseline,
    std::vector<Finding>* findings) {
  for (Finding& f : *findings) {
    for (const auto& [file, rule] : baseline) {
      if (f.rule == rule &&
          (f.file == file ||
           (f.file.size() > file.size() &&
            f.file.compare(f.file.size() - file.size(), file.size(), file) ==
                0 &&
            f.file[f.file.size() - file.size() - 1] == '/'))) {
        f.baselined = true;
        break;
      }
    }
  }
}

// ----------------------------------------------------------------- sarif --

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct RuleInfo {
  const char* id;
  const char* description;
};

constexpr RuleInfo kRules[] = {
    {"layer-violation",
     "Include edge not allowed by the declared module DAG"},
    {"include-cycle", "Cycle in the project include graph"},
    {"use-after-move", "Local variable read after std::move"},
    {"unchecked-status",
     "Status/Result consumed before its .ok() check"},
    {"lock-temporary",
     "Immediately-destroyed lock temporary guards nothing"},
    {"guarded-by",
     "GUARDED_BY state written in a ParallelFor lambda without its guard"},
    {"lock-order-cycle",
     "Lock-acquisition order violates LOCK_RANK ranks or forms a cycle"},
    {"blocking-under-lock",
     "Blocking call reached (possibly transitively) while holding a lock"},
    {"condvar-predicate",
     "Condition-variable wait without predicate or re-check loop"},
    {"promise-exactly-once",
     "A loop path drops a promise-carrying value or fulfils it twice"},
    {"view-return",
     "Borrowed-view return type without a LIFETIME_BOUND annotation"},
    {"view-escape",
     "Borrowed view stored into a member, static or worker lambda"},
    {"view-generation",
     "Borrowed view used after its owner crossed a generation boundary "
     "(swap/reset/Load*/reassignment)"},
    {"view-invalidation",
     "Borrowed view used after a mutating container method on its owner"},
};

int RuleIndexOf(const std::string& rule) {
  int index = 0;
  for (const RuleInfo& r : kRules) {
    if (rule == r.id) return index;
    ++index;
  }
  return -1;
}

// Stable across line shifts: content hash of file + rule + message, the
// token window SARIF consumers use to match results between runs.
std::string FindingFingerprint(const Finding& f) {
  std::uint64_t h = Fnv1a(f.file);
  h = Fnv1aMix(h, f.rule);
  h = Fnv1aMix(h, f.message);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string SarifReport(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\"version\":\"2.1.0\",\"$schema\":"
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{"
         "\"tool\":{\"driver\":{\"name\":\"snor_analyze\","
         "\"informationUri\":\"https://example.invalid/snor\","
         "\"version\":\"2.0.0\",\"rules\":[";
  bool first = true;
  for (const RuleInfo& rule : kRules) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":\"" << rule.id << "\",\"shortDescription\":{\"text\":\""
        << JsonEscape(rule.description) << "\"}}";
  }
  out << "]}},\"results\":[";
  first = true;
  // Identical findings surfacing through several TUs (same file, rule
  // and message — e.g. a header finding re-linked per includer) carry
  // the same fingerprint; emit only the first so editors show one.
  std::set<std::pair<std::string, std::string>> seen;
  for (const Finding& f : findings) {
    const std::string fingerprint = FindingFingerprint(f);
    if (!seen.insert({f.rule, fingerprint}).second) continue;
    if (!first) out << ",";
    first = false;
    out << "{\"ruleId\":\"" << f.rule << "\"";
    const int rule_index = RuleIndexOf(f.rule);
    if (rule_index >= 0) out << ",\"ruleIndex\":" << rule_index;
    out << ",\"level\":\"" << (f.baselined ? "note" : "error")
        << "\",\"message\":{\"text\":\"" << JsonEscape(f.message)
        << "\"},\"partialFingerprints\":{\"snorContentHash/v1\":\""
        << fingerprint << "\"},\"locations\":[{"
        << "\"physicalLocation\":{\"artifactLocation\":{\"uri\":\""
        << JsonEscape(f.file) << "\"},\"region\":{\"startLine\":" << f.line
        << "}}}]";
    if (f.baselined) {
      out << ",\"suppressions\":[{\"kind\":\"external\",\"justification\":"
             "\"tools/analyze/baseline.txt\"}]";
    }
    out << "}";
  }
  out << "]}]}";
  return out.str();
}

// ---------------------------------------------------------------- driver --

bool IsSourcePath(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool PathContains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

std::vector<std::string> CollectTreeFiles(const fs::path& root) {
  static const char* kRoots[] = {"src", "bench", "examples", "tests",
                                 "tools"};
  std::vector<std::string> files;
  for (const char* sub : kRoots) {
    const fs::path dir = root / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !IsSourcePath(entry.path())) continue;
      const std::string p = entry.path().generic_string();
      // Skips are matched against the root-relative path only, so a
      // checkout that itself lives under a directory named "build"
      // (e.g. a ctest scratch tree) is still analyzable.
      std::error_code ec;
      const std::string rel =
          fs::relative(entry.path(), root, ec).generic_string();
      const std::string& match = ec ? p : rel;
      if (PathContains(match, "testdata")) continue;  // Fixtures violate on purpose.
      if (PathContains(match, "build")) continue;
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

struct AnalyzeOptions {
  fs::path cache_dir;  // Empty = caching disabled.
  std::uint64_t cache_salt = 0;
  std::uint64_t cache_max_bytes = 0;  // 0 = unbounded (no eviction).
};

struct AnalyzeResult {
  std::vector<Finding> findings;
  std::size_t files = 0;
  std::size_t resummarized = 0;  // TUs tokenized this run.
  std::size_t cached = 0;        // TUs served entirely from the cache.
};

// The incremental two-pass pipeline:
//   A. read + hash every file; load its summary from the cache or build
//      it fresh (tokenize + pass 1);
//   B. derive the program-wide fallible registry and the intra-findings
//      fingerprint (registry + layer DAG) from the summaries;
//   C. replay cached intra findings where the fingerprint matches,
//      re-run the intra analyses (and refresh the cache) elsewhere;
//   D. link summaries (pass 2) and run include-cycle + the four
//      interprocedural concurrency checks — always, they are cheap.
bool AnalyzePaths(const std::vector<std::string>& paths,
                  const LayerConfig& config, const AnalyzeOptions& options,
                  AnalyzeResult* result) {
  const std::size_t n = paths.size();
  std::vector<TuSummary> tus;
  tus.reserve(n);
  std::vector<std::unique_ptr<SourceFile>> sources(n);
  std::vector<std::string> texts(n);

  for (std::size_t i = 0; i < n; ++i) {
    std::ifstream in(paths[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "snor_analyze: cannot read %s\n",
                   paths[i].c_str());
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    texts[i] = buffer.str();
    const std::uint64_t hash = Fnv1a(texts[i]);
    const std::string disk_path = fs::path(paths[i]).generic_string();
    TuSummary tu;
    if (!LoadCachedSummary(options.cache_dir, options.cache_salt, disk_path,
                           hash, &tu)) {
      auto source = std::make_unique<SourceFile>();
      LoadFromString(texts[i], disk_path, source.get());
      tu = BuildTuSummary(*source);
      tu.content_hash = hash;
      sources[i] = std::move(source);
    }
    tus.push_back(std::move(tu));
  }
  result->files = n;

  const std::set<std::string> fallible = BuildFallibleRegistry(tus);
  std::uint64_t fingerprint = Fnv1a(config.Serialized());
  for (const std::string& name : fallible) {
    fingerprint = Fnv1aMix(fingerprint, name);
  }

  for (std::size_t i = 0; i < n; ++i) {
    TuSummary& tu = tus[i];
    if (sources[i] == nullptr && tu.intra_fingerprint == fingerprint) {
      for (const CachedFinding& cf : tu.intra_findings) {
        result->findings.push_back({tu.path, cf.line, cf.rule, cf.message});
      }
      continue;
    }
    if (sources[i] == nullptr) {
      // Cache hit, but the cross-file inputs of the intra analyses
      // changed: re-tokenize and re-run them.
      sources[i] = std::make_unique<SourceFile>();
      LoadFromString(texts[i], tu.real_path, sources[i].get());
    }
    std::vector<Finding> local;
    CheckLayering(tu, config, &local);
    DataflowAnalyzer(*sources[i], fallible, &local).Run();
    tu.intra_findings.clear();
    for (const Finding& f : local) {
      tu.intra_findings.push_back({f.line, f.rule, f.message});
    }
    tu.intra_fingerprint = fingerprint;
    StoreCachedSummary(options.cache_dir, options.cache_salt, tu);
    for (Finding& f : local) {
      result->findings.push_back(std::move(f));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (sources[i] != nullptr) {
      ++result->resummarized;
    } else {
      ++result->cached;
    }
  }

  // LRU-bound the cache after all stores/loads of this run: eviction
  // only affects the NEXT run's warmth, never this run's findings.
  EnforceCacheBudget(options.cache_dir, options.cache_max_bytes);

  CheckIncludeCycles(tus, &result->findings);
  const CallGraph graph(tus);
  RunConcurrencyChecks(graph, &result->findings);
  RunBorrowChecks(graph, &result->findings);
  std::sort(result->findings.begin(), result->findings.end());
  result->findings.erase(
      std::unique(result->findings.begin(), result->findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return a.file == b.file && a.line == b.line &&
                           a.rule == b.rule && a.message == b.message;
                  }),
      result->findings.end());
  return true;
}

int RunTree(const fs::path& root, const fs::path& config_path,
            const fs::path& baseline_path, bool sarif_stdout,
            const std::string& sarif_out, const AnalyzeOptions& options,
            const std::vector<std::string>& explicit_paths) {
  LayerConfig config;
  std::string error;
  if (!ParseLayersToml(config_path, &config, &error)) {
    std::fprintf(stderr, "snor_analyze: %s\n", error.c_str());
    return 2;
  }
  std::vector<std::string> paths = explicit_paths;
  if (paths.empty()) paths = CollectTreeFiles(root);
  if (paths.empty()) {
    std::fprintf(stderr, "snor_analyze: no source files under %s\n",
                 root.generic_string().c_str());
    return 2;
  }
  AnalyzeResult result;
  if (!AnalyzePaths(paths, config, options, &result)) return 2;
  ApplyBaseline(LoadBaseline(baseline_path), &result.findings);

  std::size_t active = 0;
  std::size_t baselined = 0;
  for (const Finding& f : result.findings) {
    if (f.baselined) {
      ++baselined;
      continue;
    }
    ++active;
    if (!sarif_stdout) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
    }
  }
  const std::string sarif = SarifReport(result.findings);
  if (sarif_stdout) {
    std::printf("%s\n", sarif.c_str());
  }
  if (!sarif_out.empty()) {
    std::ofstream out(sarif_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "snor_analyze: cannot write %s\n",
                   sarif_out.c_str());
      return 2;
    }
    out << sarif << "\n";
  }
  if (!sarif_stdout) {
    std::printf(
        "snor_analyze: %zu file(s) (%zu re-summarized, %zu cached), "
        "%zu finding(s) (%zu baselined)\n",
        result.files, result.resummarized, result.cached,
        active + baselined, baselined);
  }
  return active == 0 ? 0 : 1;
}

// Self-test: every `// EXPECT-ANALYZE: rule[,rule]` must match a finding
// on that line, and no unannotated finding may appear. The self-test
// never uses the summary cache: fixtures must always be analyzed from
// source.
int SelfTest(const fs::path& dir) {
  std::vector<std::string> paths;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && IsSourcePath(entry.path())) {
      paths.push_back(entry.path().generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    std::fprintf(stderr, "snor_analyze --self-test: no fixtures under %s\n",
                 dir.generic_string().c_str());
    return 2;
  }
  LayerConfig config;
  std::string error;
  fs::path config_path = dir / "layers.toml";
  if (!fs::exists(config_path)) {
    config_path = dir.parent_path() / "layers.toml";
  }
  if (!ParseLayersToml(config_path, &config, &error)) {
    std::fprintf(stderr, "snor_analyze: %s\n", error.c_str());
    return 2;
  }

  AnalyzeResult result;
  if (!AnalyzePaths(paths, config, AnalyzeOptions{}, &result)) return 2;

  // Expectations, per real file and line, from comment tokens.
  int failures = 0;
  std::size_t matched = 0;
  std::map<std::string, std::map<int, std::set<std::string>>> expected;
  std::map<std::string, std::string> virtual_to_real;
  for (const std::string& p : paths) {
    SourceFile file;
    if (!LoadFile(p, &file)) return 2;
    virtual_to_real[file.path] = file.real_path;
    for (const Token& tok : file.tokens) {
      if (tok.kind != Tok::kComment) continue;
      const std::size_t pos = tok.text.find(kExpectMarker);
      if (pos == std::string::npos) continue;
      std::stringstream ss(tok.text.substr(pos + kExpectMarker.size()));
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                   rule.end());
        if (!rule.empty()) expected[file.path][tok.line].insert(rule);
      }
    }
  }

  std::map<std::string, std::map<int, std::set<std::string>>> actual;
  for (const Finding& f : result.findings) {
    actual[f.file][f.line].insert(f.rule);
  }

  auto real_name = [&](const std::string& virt) {
    auto it = virtual_to_real.find(virt);
    return it != virtual_to_real.end() ? it->second : virt;
  };

  for (const auto& [file, lines] : expected) {
    for (const auto& [line, rules] : lines) {
      for (const std::string& rule : rules) {
        if (actual.count(file) > 0 && actual[file].count(line) > 0 &&
            actual[file][line].count(rule) > 0) {
          ++matched;
        } else {
          std::fprintf(stderr,
                       "SELF-TEST FAIL %s:%d: expected [%s], not reported\n",
                       real_name(file).c_str(), line, rule.c_str());
          ++failures;
        }
      }
    }
  }
  for (const auto& [file, lines] : actual) {
    for (const auto& [line, rules] : lines) {
      for (const std::string& rule : rules) {
        if (expected.count(file) == 0 || expected[file].count(line) == 0 ||
            expected[file][line].count(rule) == 0) {
          std::fprintf(stderr,
                       "SELF-TEST FAIL %s:%d: unexpected [%s] reported\n",
                       real_name(file).c_str(), line, rule.c_str());
          ++failures;
        }
      }
    }
  }
  std::printf(
      "snor_analyze --self-test: %zu fixture(s), %zu expectation(s) "
      "matched, %d failure(s)\n",
      paths.size(), matched, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace snor_analyze

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::string root = ".";
  std::string self_test_dir;
  std::string config_flag;
  std::string baseline_flag;
  std::string sarif_out;
  bool sarif_stdout = false;
  snor_analyze::AnalyzeOptions options;
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 1;
  std::vector<std::string> explicit_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--self-test" && i + 1 < argc) {
      self_test_dir = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      config_flag = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_flag = argv[++i];
    } else if (arg == "--sarif-out" && i + 1 < argc) {
      sarif_out = argv[++i];
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      options.cache_dir = argv[++i];
    } else if (arg == "--cache-salt" && i + 1 < argc) {
      options.cache_salt = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--cache-max-bytes" && i + 1 < argc) {
      options.cache_max_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--fault-rate" && i + 1 < argc) {
      fault_rate = std::strtod(argv[++i], nullptr);
    } else if (arg == "--fault-seed" && i + 1 < argc) {
      fault_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--format=sarif") {
      sarif_stdout = true;
    } else if (arg == "--format=text") {
      sarif_stdout = false;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: snor_analyze [--root DIR] [--config layers.toml]\n"
          "                    [--baseline FILE] [--format=text|sarif]\n"
          "                    [--sarif-out FILE] [--cache-dir DIR]\n"
          "                    [--cache-salt N] [--cache-max-bytes N]\n"
          "                    [--fault-rate P] [--fault-seed N]\n"
          "                    [files...]\n"
          "       snor_analyze --self-test FIXTURE_DIR\n"
          "Dependency-DAG, dataflow, whole-program concurrency and\n"
          "borrowed-view lifetime analysis over src/, bench/, examples/,\n"
          "tests/ and tools/ (see tools/analyze/layers.toml).\n"
          "--cache-dir enables the incremental summary cache;\n"
          "--cache-max-bytes LRU-bounds it (0 = unbounded); --fault-rate\n"
          "arms io-read and truncated-file faults on cache reads\n"
          "(recovery testing).\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "snor_analyze: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      explicit_paths.push_back(arg);
    }
  }

  if (fault_rate > 0.0) {
    snor::FaultInjector::Global().Arm(snor::FaultPoint::kIoRead, fault_rate,
                                      fault_seed);
    snor::FaultInjector::Global().Arm(snor::FaultPoint::kTruncatedFile,
                                      fault_rate, fault_seed + 1);
  }

  if (!self_test_dir.empty()) {
    return snor_analyze::SelfTest(self_test_dir);
  }
  const fs::path config_path =
      config_flag.empty() ? fs::path(root) / "tools" / "analyze" /
                                "layers.toml"
                          : fs::path(config_flag);
  const fs::path baseline_path =
      baseline_flag.empty() ? fs::path(root) / "tools" / "analyze" /
                                  "baseline.txt"
                            : fs::path(baseline_flag);
  return snor_analyze::RunTree(root, config_path, baseline_path,
                               sarif_stdout, sarif_out, options,
                               explicit_paths);
}
