#include "concurrency_checks.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

namespace snor_analyze {

namespace {

const char kRuleLockOrder[] = "lock-order-cycle";
const char kRuleBlocking[] = "blocking-under-lock";
const char kRuleCondvar[] = "condvar-predicate";
const char kRulePromise[] = "promise-exactly-once";

void Report(const CallGraph& graph, const FunctionRef& site, int line,
            const char* rule, std::string message,
            std::vector<Finding>* out) {
  const TuSummary& tu = graph.tus()[site.tu];
  if (tu.Suppressed(line, rule)) return;
  out->push_back({tu.path, line, rule, std::move(message), false});
}

// ------------------------------------------------------- lock ordering --

struct EdgeInfo {
  MutexId from;
  MutexId to;
  FunctionRef site;
  int line = 0;
  std::string via;  // "" for a direct nested acquire.
};

class LockOrderCheck {
 public:
  explicit LockOrderCheck(const CallGraph& graph) : graph_(graph) {}

  void Run(std::vector<Finding>* out) {
    CollectEdges();
    ReportRankInversions(out);
    ReportCycles(out);
  }

 private:
  void AddEdge(const MutexId& from, const MutexId& to,
               const FunctionRef& site, int line, std::string via) {
    if (from.qualified == to.qualified) return;
    const auto key = std::make_pair(from.qualified, to.qualified);
    if (edges_.count(key) > 0) return;  // First site wins.
    edges_[key] = {from, to, site, line, std::move(via)};
  }

  void CollectEdges() {
    const std::vector<TuSummary>& tus = graph_.tus();
    for (std::size_t t = 0; t < tus.size(); ++t) {
      for (std::size_t f = 0; f < tus[t].functions.size(); ++f) {
        const FunctionRef ref{t, f};
        const FunctionSummary& fn = graph_.Fn(ref);
        // Direct nested acquisitions inside one function.
        for (const AcquireSite& a : fn.acquires) {
          const MutexId inner = graph_.ResolveMutex(ref, a.mutex);
          if (!inner.resolved) continue;
          for (const std::string& h : a.held) {
            const MutexId outer = graph_.ResolveMutex(ref, h);
            if (!outer.resolved) continue;
            AddEdge(outer, inner, ref, a.line, "");
          }
        }
        // Acquisitions reached through calls made with locks held
        // (ambiguity-aware: the intersection across same-named defs).
        for (const CallSite& call : fn.calls) {
          if (call.held.empty()) continue;
          for (const MutexId& inner :
               graph_.CalleeAcquires(call.callee, ref)) {
            for (const std::string& h : call.held) {
              const MutexId outer = graph_.ResolveMutex(ref, h);
              if (!outer.resolved) continue;
              AddEdge(outer, inner, ref, call.line,
                      "via call to '" + call.callee + "'");
            }
          }
        }
      }
    }
  }

  void ReportRankInversions(std::vector<Finding>* out) {
    for (const auto& [key, edge] : edges_) {
      if (edge.from.rank < 0 || edge.to.rank < 0) continue;
      if (edge.to.rank > edge.from.rank) continue;
      std::string message =
          "acquires '" + edge.to.qualified + "' (rank " +
          std::to_string(edge.to.rank) + ") while holding '" +
          edge.from.qualified + "' (rank " +
          std::to_string(edge.from.rank) + ")";
      if (!edge.via.empty()) message += " " + edge.via;
      message += "; ranks must be strictly increasing inner-to-outer";
      Report(graph_, edge.site, edge.line, kRuleLockOrder,
             std::move(message), out);
    }
  }

  // Colored DFS over the acquisition-order graph; a gray-node hit is a
  // cycle. One report per distinct cycle (canonical rotation).
  void ReportCycles(std::vector<Finding>* out) {
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [key, edge] : edges_) {
      adj[key.first].push_back(key.second);
    }
    std::map<std::string, int> color;  // 0 white, 1 gray, 2 black.
    std::vector<std::string> stack;
    std::set<std::string> reported;
    for (const auto& [node, unused] : adj) {
      if (color[node] == 0) Dfs(node, adj, &color, &stack, &reported, out);
    }
  }

  void Dfs(const std::string& node,
           const std::map<std::string, std::vector<std::string>>& adj,
           std::map<std::string, int>* color,
           std::vector<std::string>* stack, std::set<std::string>* reported,
           std::vector<Finding>* out) {
    (*color)[node] = 1;
    stack->push_back(node);
    auto it = adj.find(node);
    if (it != adj.end()) {
      for (const std::string& next : it->second) {
        const int c = (*color)[next];
        if (c == 1) {
          ReportCycle(*stack, next, reported, out);
        } else if (c == 0) {
          Dfs(next, adj, color, stack, reported, out);
        }
      }
    }
    stack->pop_back();
    (*color)[node] = 2;
  }

  void ReportCycle(const std::vector<std::string>& stack,
                   const std::string& back_to,
                   std::set<std::string>* reported,
                   std::vector<Finding>* out) {
    const auto begin = std::find(stack.begin(), stack.end(), back_to);
    if (begin == stack.end()) return;
    std::vector<std::string> cycle(begin, stack.end());
    // Canonical rotation: start at the lexicographically smallest node.
    const auto min_it = std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), min_it, cycle.end());
    std::string canon;
    for (const std::string& n : cycle) canon += n + ";";
    if (!reported->insert(canon).second) return;
    std::string message = "lock acquisition cycle: ";
    for (const std::string& n : cycle) message += "'" + n + "' -> ";
    message += "'" + cycle.front() + "' (deadlock potential)";
    // Anchor the report at the closing edge of the cycle.
    const auto edge =
        edges_.find(std::make_pair(cycle.back(), cycle.front()));
    if (edge == edges_.end()) return;
    Report(graph_, edge->second.site, edge->second.line, kRuleLockOrder,
           std::move(message), out);
  }

  const CallGraph& graph_;
  std::map<std::pair<std::string, std::string>, EdgeInfo> edges_;
};

// ------------------------------------------------- promise interpreter --

enum class PS { kNone, kFulfilled, kForwarded, kMaybe };

PS Join(PS a, PS b) { return a == b ? a : PS::kMaybe; }

// Abstract interpretation of one loop's event stream for one variable.
// States: kNone (promise not yet fulfilled), kFulfilled, kForwarded
// (ownership handed to a container/consumer that will fulfil), kMaybe
// (unknown — an unmodelled call touched the variable). Only definite
// violations report: a terminal edge reached in kNone (dropped
// promise), or a qualifying fulfil in kFulfilled/kForwarded (double
// set_value, which throws std::future_error at runtime).
class PromiseInterp {
 public:
  PromiseInterp(const CallGraph& graph, const std::vector<PEvent>& events,
                std::string var)
      : graph_(graph), events_(events), var_(std::move(var)) {}

  struct Violation {
    int line = 0;
    std::string message;
    bool operator<(const Violation& o) const {
      return line != o.line ? line < o.line : message < o.message;
    }
  };

  std::set<Violation> Run() {
    RunSeq(0, PS::kNone, false, false, false);
    return std::move(violations_);
  }

 private:
  struct R {
    PS s = PS::kNone;
    bool term = false;
  };

  std::pair<R, std::size_t> RunSeq(std::size_t i, PS s, bool stop_branch,
                                   bool stop_loop, bool dead) {
    bool term = false;
    while (i < events_.size()) {
      const PEvent& e = events_[i];
      if (e.kind == PEv::kBranchElse || e.kind == PEv::kBranchClose) {
        if (stop_branch) return {{s, term}, i};
        ++i;
        continue;
      }
      if (e.kind == PEv::kLoopClose) {
        if (stop_loop) return {{s, term}, i};
        ++i;
        continue;
      }
      if (e.kind == PEv::kBranchOpen) {
        auto [then_r, j] = RunSeq(i + 1, s, true, false, dead || term);
        R else_r{s, false};
        if (j < events_.size() && events_[j].kind == PEv::kBranchElse) {
          auto [er, k] = RunSeq(j + 1, s, true, false, dead || term);
          else_r = er;
          j = k;
        }
        i = j < events_.size() ? j + 1 : j;
        if (dead || term) continue;
        if (then_r.term && else_r.term) {
          term = true;
        } else if (then_r.term) {
          s = else_r.s;
        } else if (else_r.term) {
          s = then_r.s;
        } else {
          s = Join(then_r.s, else_r.s);
        }
        continue;
      }
      if (e.kind == PEv::kLoopOpen) {
        // A nested loop may run zero times: join entry with body exit.
        auto [body_r, j] = RunSeq(i + 1, s, false, true, dead || term);
        i = j < events_.size() ? j + 1 : j;
        if (dead || term) continue;
        if (body_r.term) {
          term = true;
        } else {
          s = Join(s, body_r.s);
        }
        continue;
      }
      if (!dead && !term) {
        switch (e.kind) {
          case PEv::kFulfilDirect:
          case PEv::kFulfilCall: {
            if (e.var != var_) break;
            const bool qualifying =
                e.kind == PEv::kFulfilDirect ||
                graph_.Fulfils(e.callee, e.arg_index);
            if (!qualifying) {
              s = PS::kMaybe;
              break;
            }
            if (s == PS::kFulfilled || s == PS::kForwarded) {
              violations_.insert(
                  {e.line, "promise of '" + var_ +
                               "' already fulfilled or forwarded on this "
                               "path; a second set_value throws"});
            }
            s = PS::kFulfilled;
            break;
          }
          case PEv::kForward:
            if (e.var == var_) s = PS::kForwarded;
            break;
          case PEv::kContinue:
            if (s == PS::kNone) {
              violations_.insert(
                  {e.line, "iteration path ends ('continue') without "
                           "fulfilling or forwarding the promise of '" +
                               var_ + "'"});
            }
            term = true;
            break;
          case PEv::kBreakOrReturn:
            term = true;  // Leaves the loop; not a per-item terminal.
            break;
          case PEv::kEnd:
            if (s == PS::kNone) {
              violations_.insert(
                  {e.line, "iteration path reaches the end of the loop "
                           "body without fulfilling or forwarding the "
                           "promise of '" +
                               var_ + "'"});
            }
            term = true;
            break;
          default:
            break;
        }
      }
      ++i;
    }
    return {{s, term}, i};
  }

  const CallGraph& graph_;
  const std::vector<PEvent>& events_;
  const std::string var_;
  std::set<Violation> violations_;
};

}  // namespace

void CheckLockOrder(const CallGraph& graph, std::vector<Finding>* out) {
  LockOrderCheck(graph).Run(out);
}

void CheckBlockingUnderLock(const CallGraph& graph,
                            std::vector<Finding>* out) {
  const std::vector<TuSummary>& tus = graph.tus();
  std::set<std::pair<std::string, int>> seen;  // (file, line) dedupe.
  for (std::size_t t = 0; t < tus.size(); ++t) {
    for (std::size_t f = 0; f < tus[t].functions.size(); ++f) {
      const FunctionRef ref{t, f};
      const FunctionSummary& fn = graph.Fn(ref);
      for (const BlockingSite& b : fn.blocking) {
        for (const std::string& h : b.held) {
          if (h == b.released) continue;  // Atomically released by wait.
          if (!seen.insert({tus[t].path, b.line}).second) break;
          const MutexId id = graph.ResolveMutex(ref, h);
          Report(graph, ref, b.line, kRuleBlocking,
                 b.what + " while holding '" + id.qualified + "' (in '" +
                     fn.name + "')",
                 out);
          break;  // One finding per site.
        }
      }
      for (const CallSite& call : fn.calls) {
        if (call.held.empty()) continue;
        FunctionRef callee;
        if (!graph.CalleeMayBlock(call.callee, ref, &callee)) continue;
        if (!seen.insert({tus[t].path, call.line}).second) continue;
        const MutexId id = graph.ResolveMutex(ref, call.held.front());
        Report(graph, ref, call.line, kRuleBlocking,
               "call to '" + call.callee + "' may block (" +
                   graph.BlockingChain(callee) + ") while holding '" +
                   id.qualified + "' (in '" + fn.name + "')",
               out);
      }
    }
  }
}

void CheckCondvarPredicate(const CallGraph& graph,
                           std::vector<Finding>* out) {
  const std::vector<TuSummary>& tus = graph.tus();
  for (std::size_t t = 0; t < tus.size(); ++t) {
    for (std::size_t f = 0; f < tus[t].functions.size(); ++f) {
      const FunctionRef ref{t, f};
      for (const WaitSite& w : graph.Fn(ref).waits) {
        if (w.has_predicate || w.in_loop) continue;
        Report(graph, ref, w.line, kRuleCondvar,
               "'" + w.cv +
                   "' wait has no predicate and no enclosing re-check "
                   "loop; spurious wakeups will be treated as signals",
               out);
      }
    }
  }
}

void CheckPromiseExactlyOnce(const CallGraph& graph,
                             std::vector<Finding>* out) {
  const std::vector<TuSummary>& tus = graph.tus();
  for (std::size_t t = 0; t < tus.size(); ++t) {
    for (std::size_t f = 0; f < tus[t].functions.size(); ++f) {
      const FunctionRef ref{t, f};
      const FunctionSummary& fn = graph.Fn(ref);
      for (const PromiseLoop& loop : fn.promise_loops) {
        // Only variables with at least one qualifying fulfil are
        // promise-carrying; everything else is ordinary data flow.
        std::set<std::string> vars;
        for (const PEvent& e : loop.events) {
          if (e.kind == PEv::kFulfilDirect) {
            vars.insert(e.var);
          } else if (e.kind == PEv::kFulfilCall &&
                     graph.Fulfils(e.callee, e.arg_index)) {
            vars.insert(e.var);
          }
        }
        for (const std::string& var : vars) {
          for (const PromiseInterp::Violation& v :
               PromiseInterp(graph, loop.events, var).Run()) {
            Report(graph, ref, v.line, kRulePromise,
                   v.message + " (loop at line " +
                       std::to_string(loop.line) + " in '" + fn.name +
                       "')",
                   out);
          }
        }
      }
    }
  }
}

void RunConcurrencyChecks(const CallGraph& graph,
                          std::vector<Finding>* out) {
  CheckLockOrder(graph, out);
  CheckBlockingUnderLock(graph, out);
  CheckCondvarPredicate(graph, out);
  CheckPromiseExactlyOnce(graph, out);
}

}  // namespace snor_analyze
