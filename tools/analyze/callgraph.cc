#include "callgraph.h"

#include <algorithm>
#include <iterator>

namespace snor_analyze {

CallGraph::CallGraph(const std::vector<TuSummary>& tus) : tus_(tus) {
  for (std::size_t t = 0; t < tus_.size(); ++t) {
    for (std::size_t f = 0; f < tus_[t].functions.size(); ++f) {
      const FunctionRef ref{t, f};
      all_.push_back(ref);
      by_name_[tus_[t].functions[f].name].push_back(ref);
    }
  }
  BuildMutexIndex();
  ComputeMayBlock();
  ComputeFulfils();
  ComputeTransitiveAcquires();
  ComputeBorrowFacts();
}

const std::vector<FunctionRef>* CallGraph::DefsByName(
    const std::string& name) const {
  auto it = by_name_.find(name);
  return it != by_name_.end() ? &it->second : nullptr;
}

void CallGraph::BuildMutexIndex() {
  for (const TuSummary& tu : tus_) {
    for (const MutexDecl& m : tu.mutexes) {
      const auto key = std::make_pair(m.cls, m.name);
      auto it = mutex_by_cls_.find(key);
      if (it == mutex_by_cls_.end()) {
        mutex_by_cls_[key] = m.rank;
      } else if (it->second < 0) {
        // Header + source both see the decl; keep the ranked one.
        it->second = m.rank;
      }
      MutexId id;
      id.qualified = m.QualifiedName();
      id.rank = m.rank;
      id.resolved = true;
      auto& candidates = mutex_by_name_[m.name];
      auto existing = candidates.find(id);
      if (existing != candidates.end()) {
        if (existing->rank < 0 && id.rank >= 0) {
          candidates.erase(existing);
          candidates.insert(id);
        }
      } else {
        candidates.insert(id);
      }
    }
  }
}

MutexId CallGraph::ResolveMutex(const FunctionRef& site,
                                const std::string& spelling) const {
  const FunctionSummary& fn = Fn(site);
  auto cls_hit = mutex_by_cls_.find(std::make_pair(fn.cls, spelling));
  if (cls_hit != mutex_by_cls_.end()) {
    MutexId id;
    id.qualified = fn.cls.empty() ? spelling : fn.cls + "::" + spelling;
    id.rank = cls_hit->second;
    id.resolved = true;
    return id;
  }
  auto name_hit = mutex_by_name_.find(spelling);
  if (name_hit != mutex_by_name_.end() && name_hit->second.size() == 1) {
    return *name_hit->second.begin();
  }
  MutexId id;
  id.qualified = spelling;
  return id;  // Unresolved: keeps the spelling, no rank.
}

void CallGraph::ComputeMayBlock() {
  // Seed with direct blocking sites. `[[noreturn]]` functions are
  // exempt throughout: they never return to a caller still holding a
  // lock, so their abort-path IO is not a blocking concern.
  for (const FunctionRef& ref : all_) {
    const FunctionSummary& fn = Fn(ref);
    if (fn.is_noreturn) continue;
    if (!fn.blocking.empty()) {
      blocks_[ref] = fn.blocking.front().what;
    }
  }
  // Propagate through call edges to a fixpoint. Ambiguous links
  // (several same-named definitions) only propagate when every
  // candidate blocks — see the header comment. Monotone: blocks_ only
  // grows, so "all candidates block" flips false->true at most once.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionRef& ref : all_) {
      if (blocks_.count(ref) > 0 || Fn(ref).is_noreturn) continue;
      for (const CallSite& call : Fn(ref).calls) {
        FunctionRef via;
        if (!CalleeMayBlock(call.callee, ref, &via)) continue;
        blocks_[ref] = "call to " + call.callee;
        block_via_[ref] = via;
        changed = true;
        break;
      }
    }
  }
}

bool CallGraph::CalleeMayBlock(const std::string& callee,
                               const FunctionRef& caller,
                               FunctionRef* blocking_def) const {
  const std::vector<FunctionRef>* defs = DefsByName(callee);
  if (defs == nullptr) return false;
  bool any = false;
  for (const FunctionRef& def : *defs) {
    if (def == caller) continue;
    if (blocks_.count(def) == 0) return false;
    if (!any) *blocking_def = def;
    any = true;
  }
  return any;
}

std::set<MutexId> CallGraph::CalleeAcquires(
    const std::string& callee, const FunctionRef& caller) const {
  const std::vector<FunctionRef>* defs = DefsByName(callee);
  if (defs == nullptr) return {};
  std::set<MutexId> common;
  bool any = false;
  for (const FunctionRef& def : *defs) {
    if (def == caller) continue;
    const std::set<MutexId>& theirs = trans_acquires_.at(def);
    if (!any) {
      common = theirs;
      any = true;
      continue;
    }
    std::set<MutexId> kept;
    std::set_intersection(theirs.begin(), theirs.end(), common.begin(),
                          common.end(),
                          std::inserter(kept, kept.begin()));
    common = std::move(kept);
    if (common.empty()) break;
  }
  return common;
}

bool CallGraph::MayBlock(const FunctionRef& ref) const {
  return blocks_.count(ref) > 0;
}

std::string CallGraph::BlockingChain(const FunctionRef& ref) const {
  if (blocks_.count(ref) == 0) return std::string();
  std::string chain = Fn(ref).name;
  std::set<FunctionRef> visited;
  FunctionRef cur = ref;
  while (visited.insert(cur).second) {
    auto via = block_via_.find(cur);
    if (via == block_via_.end()) {
      chain += " -> " + blocks_.at(cur);
      break;
    }
    cur = via->second;
    chain += " -> " + Fn(cur).name;
  }
  return chain;
}

void CallGraph::ComputeFulfils() {
  for (const FunctionRef& ref : all_) {
    const FunctionSummary& fn = Fn(ref);
    for (int p : fn.fulfils_params) {
      fulfils_.insert({fn.name, p});
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionRef& ref : all_) {
      const FunctionSummary& fn = Fn(ref);
      for (const FunctionSummary::ParamPass& pass : fn.passes) {
        if (fulfils_.count({pass.callee, pass.arg_index}) == 0) continue;
        if (fulfils_.insert({fn.name, pass.param}).second) changed = true;
      }
    }
  }
}

bool CallGraph::Fulfils(const std::string& callee_name,
                        int arg_index) const {
  return fulfils_.count({callee_name, arg_index}) > 0;
}

void CallGraph::ComputeTransitiveAcquires() {
  for (const FunctionRef& ref : all_) {
    std::set<MutexId>& acquired = trans_acquires_[ref];
    for (const AcquireSite& a : Fn(ref).acquires) {
      const MutexId id = ResolveMutex(ref, a.mutex);
      if (id.resolved) acquired.insert(id);
    }
  }
  // Ambiguous links contribute only the intersection of the
  // candidates' acquire sets (see header comment). Monotone: each
  // candidate's set only grows, so the intersection only grows.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionRef& ref : all_) {
      for (const CallSite& call : Fn(ref).calls) {
        const std::set<MutexId> theirs = CalleeAcquires(call.callee, ref);
        std::set<MutexId>& mine = trans_acquires_[ref];
        for (const MutexId& id : theirs) {
          if (mine.insert(id).second) changed = true;
        }
      }
    }
  }
}

void CallGraph::ComputeBorrowFacts() {
  for (const TuSummary& tu : tus_) {
    owner_classes_.insert(tu.owner_classes.begin(), tu.owner_classes.end());
    view_members_.insert(tu.view_members.begin(), tu.view_members.end());
  }
  // Direct generation kills, then closed through the generic param-pass
  // edges — same fixpoint shape as ComputeFulfils: if g kills its arg k
  // and f passes param p to g's slot k, then f kills p.
  for (const FunctionRef& ref : all_) {
    const FunctionSummary& fn = Fn(ref);
    for (int p : fn.kill_params) {
      kills_.insert({fn.name, p});
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionRef& ref : all_) {
      const FunctionSummary& fn = Fn(ref);
      for (const FunctionSummary::ParamPass& pass : fn.passes) {
        if (kills_.count({pass.callee, pass.arg_index}) == 0) continue;
        if (kills_.insert({fn.name, pass.param}).second) changed = true;
      }
    }
  }
}

bool CallGraph::ReturnsView(const std::string& name) const {
  static const std::set<std::string> kBuiltins = {
      "data", "c_str", "begin",  "end", "cbegin",
      "cend", "rbegin", "rend",  "find"};
  if (kBuiltins.count(name) > 0) return true;
  const std::vector<FunctionRef>* defs = DefsByName(name);
  if (defs == nullptr || defs->empty()) return false;
  // Unanimity across same-named definitions, like CalleeMayBlock: one
  // value-returning namesake vetoes view-ness for all call sites.
  for (const FunctionRef& def : *defs) {
    if (Fn(def).view_return == ViewReturn::kNone) return false;
  }
  return true;
}

bool CallGraph::KillsParam(const std::string& name, int arg_index) const {
  return kills_.count({name, arg_index}) > 0;
}

const std::set<MutexId>& CallGraph::TransitiveAcquires(
    const FunctionRef& ref) const {
  return trans_acquires_.at(ref);
}

}  // namespace snor_analyze
