#ifndef SNOR_TOOLS_ANALYZE_LEXER_H_
#define SNOR_TOOLS_ANALYZE_LEXER_H_

// Shared C++ tokenizer for snor_analyze (see snor_analyze.cc for the
// rule catalog). Split out of the driver so the pass-1 summary builder
// (summary.cc), the pass-2 linker (callgraph.cc) and the intra-procedural
// analyses all lex a translation unit exactly the same way.
//
// The lexer understands comments, raw strings, char/string literals
// (including user-defined literal suffixes), digit separators (1'000),
// and preprocessor directives — directives are consumed whole, honouring
// backslash continuations (even with trailing blanks or \r before the
// newline) and block comments inside the directive body, so macro bodies
// never leak tokens into the analyzed stream.

#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace snor_analyze {

// Markers are assembled at runtime so the analyzer's own source never
// contains the literal annotation text (it scans tools/ too).
extern const std::string kGuardedByMarker;   // "GUARDED" "_BY("
extern const std::string kLockRankMarker;    // "LOCK" "_RANK("
extern const std::string kLifetimeBoundMarker;  // "LIFETIME" "_BOUND"
extern const std::string kOwnsViewsMarker;      // "OWNS" "_VIEWS"
extern const std::string kExpectMarker;      // "EXPECT" "-ANALYZE:"
extern const std::string kAnalyzeAsMarker;   // "ANALYZE" "-AS:"
extern const std::string kNolintNextMarker;  // "NOLINT" "NEXTLINE"
extern const std::string kNolintMarker;      // "NOLINT"

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  bool baselined = false;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
};

enum class Tok { kIdent, kNumber, kString, kChar, kPunct, kComment };

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  int line = 1;
};

bool IsIdentStart(char c);
bool IsIdentChar(char c);

struct IncludeDirective {
  std::string path;  // The quoted include path, verbatim.
  int line = 1;
};

/// One analyzed translation unit (or header).
struct SourceFile {
  std::string path;       // Virtual path used by path-scoped analyses.
  std::string real_path;  // Path on disk.
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  // line -> suppressed rules; empty set = all rules suppressed.
  std::map<int, std::set<std::string>> nolint;

  bool IsHeader() const {
    return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
  }

  bool Suppressed(int line, const std::string& rule) const {
    auto it = nolint.find(line);
    if (it == nolint.end()) return false;
    return it->second.empty() || it->second.count(rule) > 0;
  }
};

/// Tokenizes C++ source. Preprocessor directives are consumed whole
/// (including backslash continuations) and never emit tokens; #include
/// "..." directives are recorded separately. Comments ARE emitted as
/// tokens so annotation/suppression parsing never confuses a comment
/// with a string literal.
class Lexer {
 public:
  explicit Lexer(std::string text);

  void Run(SourceFile* out);

 private:
  char Peek(std::size_t ahead) const;
  bool PrevIsIdentChar() const;
  void Emit(SourceFile* out, Tok kind, std::string text, int line);
  void ConsumeLiteralSuffix();
  void LexDirective(SourceFile* out);
  void LexLineComment(SourceFile* out);
  void LexBlockComment(SourceFile* out);
  void LexRawString(SourceFile* out);
  void LexString(SourceFile* out);
  void LexChar(SourceFile* out);
  void LexIdent(SourceFile* out);
  void LexNumber(SourceFile* out);
  void LexPunct(SourceFile* out);

  std::string text_;
  std::size_t i_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

// Parses NOLINT / NOLINTNEXTLINE directives out of comment tokens.
void CollectNolint(SourceFile* file);

// Reads and tokenizes `disk_path`, honouring an ANALYZE-AS virtual path
// in an early comment.
[[nodiscard]] bool LoadFile(const std::filesystem::path& disk_path,
                            SourceFile* out);

// Same, from an already-read buffer (the incremental driver reads file
// bytes once to hash them, then tokenizes only on a cache miss).
void LoadFromString(std::string text, const std::string& disk_path,
                    SourceFile* out);

// FNV-1a over `data` — content hashes for the summary cache.
std::uint64_t Fnv1a(const std::string& data);
std::uint64_t Fnv1aMix(std::uint64_t seed, const std::string& data);

}  // namespace snor_analyze

#endif  // SNOR_TOOLS_ANALYZE_LEXER_H_
